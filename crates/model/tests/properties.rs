//! Property-based tests on the core data structures.

use proptest::prelude::*;
use rememberr_model::{
    Annotation, Category, Context, ContextSet, Date, Effect, EffectSet, MachineErratum, Trigger,
    TriggerSet, UniqueKey,
};

/// Strategy: an arbitrary trigger set from member indices.
fn trigger_set() -> impl Strategy<Value = TriggerSet> {
    prop::collection::vec(0..Trigger::ALL.len(), 0..8)
        .prop_map(|idx| idx.into_iter().map(|i| Trigger::ALL[i]).collect())
}

fn context_set() -> impl Strategy<Value = ContextSet> {
    prop::collection::vec(0..Context::ALL.len(), 0..5)
        .prop_map(|idx| idx.into_iter().map(|i| Context::ALL[i]).collect())
}

fn effect_set() -> impl Strategy<Value = EffectSet> {
    prop::collection::vec(0..Effect::ALL.len(), 0..6)
        .prop_map(|idx| idx.into_iter().map(|i| Effect::ALL[i]).collect())
}

proptest! {
    #[test]
    fn set_algebra_laws(a in trigger_set(), b in trigger_set(), c in trigger_set()) {
        // Commutativity and associativity of union/intersection.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.intersection(&b).intersection(&c), a.intersection(&b.intersection(&c)));
        // Absorption and difference identities.
        prop_assert_eq!(a.union(&a.intersection(&b)), a);
        prop_assert_eq!(a.difference(&b).intersection(&b).len(), 0);
        // Subset relations.
        prop_assert!(a.intersection(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
        // Cardinality: |A| + |B| = |A ∪ B| + |A ∩ B|.
        prop_assert_eq!(a.len() + b.len(), a.union(&b).len() + a.intersection(&b).len());
    }

    #[test]
    fn bits_roundtrip(a in trigger_set()) {
        prop_assert_eq!(TriggerSet::from_bits(a.to_bits()), a);
        // Iteration order is ascending in catalog index.
        let order: Vec<usize> = a.iter().map(|t| t.index()).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(order, sorted);
    }

    #[test]
    fn conjunctive_semantics_monotone(need in trigger_set(), applied in trigger_set(), extra in trigger_set()) {
        // Adding stimuli can only help a conjunctive requirement.
        if need.satisfied_by_all(&applied) {
            prop_assert!(need.satisfied_by_all(&applied.union(&extra)));
        }
        // The requirement itself always suffices.
        prop_assert!(need.satisfied_by_all(&need));
    }

    #[test]
    fn disjunctive_semantics_monotone(have in effect_set(), watch in effect_set(), extra in effect_set()) {
        if have.satisfied_by_any(&watch) {
            prop_assert!(have.satisfied_by_any(&watch.union(&extra)));
        }
        // Watching everything always suffices.
        prop_assert!(have.satisfied_by_any(&EffectSet::full()));
    }

    #[test]
    fn date_days_roundtrip(days in -200_000i64..200_000) {
        let date = Date::from_days_since_epoch(days);
        prop_assert_eq!(date.days_since_epoch(), days);
        prop_assert_eq!(date.add_days(17).add_days(-17), date);
    }

    #[test]
    fn date_string_roundtrip(days in 0i64..40_000) {
        let date = Date::from_days_since_epoch(days);
        let parsed: Date = date.to_string().parse().unwrap();
        prop_assert_eq!(parsed, date);
    }

    #[test]
    fn date_ordering_matches_day_numbers(a in -60_000i64..60_000, b in -60_000i64..60_000) {
        let da = Date::from_days_since_epoch(a);
        let db = Date::from_days_since_epoch(b);
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
        prop_assert_eq!(da - db, a - b);
    }

    #[test]
    fn machine_erratum_roundtrip(
        triggers in trigger_set(),
        contexts in context_set(),
        effects in effect_set(),
        key in 1u32..100_000,
        complex in any::<bool>(),
        title in "[A-Za-z][A-Za-z0-9 ]{0,40}",
    ) {
        let mut annotation = Annotation::new();
        annotation.triggers = triggers;
        annotation.contexts = contexts;
        annotation.effects = effects;
        annotation.complex_conditions = complex;
        let record = MachineErratum {
            key: UniqueKey(key),
            title: title.trim().to_string(),
            annotation,
            comments: "none".to_string(),
            root_cause: None,
            workaround: "None identified.".to_string(),
            status: "No fix planned.".to_string(),
        };
        let parsed: MachineErratum = record.render().parse().unwrap();
        prop_assert_eq!(parsed, record);
    }

    #[test]
    fn category_dense_index_is_a_bijection(i in 0..Category::COUNT) {
        let cat = Category::from_dense_index(i);
        prop_assert_eq!(cat.dense_index(), i);
        let parsed: Category = cat.code().parse().unwrap();
        prop_assert_eq!(parsed, cat);
    }
}
