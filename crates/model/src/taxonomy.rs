//! The hierarchical errata classification scheme (Tables IV, V and VI).
//!
//! The scheme has three levels:
//!
//! * the **concrete** level is free text taken from the erratum (stored in
//!   [`crate::annotation::Annotation`]);
//! * the **abstract** level is one of the 60 categories defined here
//!   (34 triggers, 10 contexts, 16 effects);
//! * the **class** level groups abstract categories into 15 classes
//!   (8 trigger classes, 3 context classes, 4 effect classes).
//!
//! Category codes follow the paper's notation: a prefix selecting the kind
//! (`Trg`/`Ctx`/`Eff`), a class suffix (`MBR`, `POW`, ...) and an abstract
//! suffix (`cbr`, `pwc`, ...), e.g. `Trg_EXT_rst` is the trigger "a (cold or
//! warm) reset" in the class "related to external inputs".

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Defines a class enum + category enum pair with code/description tables.
macro_rules! taxonomy {
    (
        kind: $kind_doc:literal, prefix: $prefix:literal,
        class $class_name:ident, category $cat_name:ident;
        $(
            $class_variant:ident ($class_code:literal, $class_desc:literal) {
                $( $variant:ident ($code:literal, $desc:literal) ),+ $(,)?
            }
        )+
    ) => {
        #[doc = concat!("Class-level ", $kind_doc, " category (highest abstraction level).")]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub enum $class_name {
            $(
                #[doc = $class_desc]
                $class_variant,
            )+
        }

        impl $class_name {
            /// All classes, in table order.
            pub const ALL: &'static [$class_name] = &[
                $( $class_name::$class_variant, )+
            ];

            /// The paper's class descriptor, e.g. `Trg_EXT`.
            pub fn code(&self) -> &'static str {
                match self {
                    $( $class_name::$class_variant => concat!($prefix, "_", $class_code), )+
                }
            }

            /// One-sentence description from the paper's table.
            pub fn description(&self) -> &'static str {
                match self {
                    $( $class_name::$class_variant => $class_desc, )+
                }
            }

            /// Abstract categories belonging to this class, in table order.
            pub fn categories(&self) -> &'static [$cat_name] {
                match self {
                    $(
                        $class_name::$class_variant => &[
                            $( $cat_name::$variant, )+
                        ],
                    )+
                }
            }

            /// Position of this class in [`Self::ALL`].
            pub fn index(&self) -> usize {
                *self as usize
            }
        }

        impl fmt::Display for $class_name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.code())
            }
        }

        impl FromStr for $class_name {
            type Err = ModelError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                Self::ALL
                    .iter()
                    .copied()
                    .find(|c| c.code() == s)
                    .ok_or_else(|| ModelError::UnknownCategory(s.to_string()))
            }
        }

        #[doc = concat!("Abstract-level ", $kind_doc, " category (middle abstraction level).")]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub enum $cat_name {
            $(
                $(
                    #[doc = $desc]
                    $variant,
                )+
            )+
        }

        impl $cat_name {
            /// All abstract categories, in table order.
            pub const ALL: &'static [$cat_name] = &[
                $( $( $cat_name::$variant, )+ )+
            ];

            /// The paper's abstract descriptor, e.g. `Trg_EXT_rst`.
            pub fn code(&self) -> &'static str {
                match self {
                    $( $( $cat_name::$variant => concat!($prefix, "_", $class_code, "_", $code), )+ )+
                }
            }

            /// Trailing three-letter suffix of the code, e.g. `rst`.
            pub fn suffix(&self) -> &'static str {
                match self {
                    $( $( $cat_name::$variant => $code, )+ )+
                }
            }

            /// One-sentence description from the paper's table.
            pub fn description(&self) -> &'static str {
                match self {
                    $( $( $cat_name::$variant => $desc, )+ )+
                }
            }

            /// The class this abstract category belongs to.
            pub fn class(&self) -> $class_name {
                match self {
                    $( $( $cat_name::$variant => $class_name::$class_variant, )+ )+
                }
            }

            /// Position of this category in [`Self::ALL`].
            pub fn index(&self) -> usize {
                *self as usize
            }
        }

        impl fmt::Display for $cat_name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.code())
            }
        }

        impl FromStr for $cat_name {
            type Err = ModelError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                Self::ALL
                    .iter()
                    .copied()
                    .find(|c| c.code() == s)
                    .ok_or_else(|| ModelError::UnknownCategory(s.to_string()))
            }
        }
    };
}

taxonomy! {
    kind: "trigger", prefix: "Trg",
    class TriggerClass, category Trigger;
    Mbr("MBR", "a data operation on a boundary") {
        CacheLineBoundary("cbr", "a data operation on a cache line boundary"),
        PageBoundary("pgb", "a data operation on a page boundary"),
        MemoryMapBoundary("mbr", "a data operation on a memory map boundary such as canonical"),
    }
    Mop("MOP", "a memory operation") {
        MemoryMapped("mmp", "an interaction with a memory-mapped element"),
        Atomic("atp", "an atomic/transactional memory operation"),
        Fence("fen", "a memory fence or a serializing instruction"),
        SegmentMode("seg", "a condition on segment modes"),
        PageTableWalk("ptw", "a core page table walk"),
        NestedTranslation("nst", "translation on nested page tables"),
        Flush("flc", "flushing some cache line or TLB"),
        Speculative("spe", "a speculative memory operation"),
    }
    Flt("FLT", "related to exceptions and faults") {
        CounterOverflow("ovf", "a counter overflow"),
        TimerEvent("tmr", "a timer event"),
        MachineCheck("mca", "a machine check exception"),
        IllegalInstruction("ill", "an illegal instruction"),
    }
    Prv("PRV", "related to privilege transitions") {
        ResumeFromSmm("ret", "a resume from System Management or OS mode"),
        VmTransition("vmt", "a transition between hypervisor and guest"),
    }
    Cfg("CFG", "related to dynamic configuration") {
        Paging("pag", "a paging mechanism interaction"),
        VmConfig("vmc", "a virtual machine configuration interaction"),
        ConfigRegister("wrg", "a configuration register interaction"),
    }
    Pow("POW", "related to power states") {
        PowerStateChange("pwc", "a transition between power states"),
        Throttling("tht", "a change in thermal or power supply conditions, or throttling"),
    }
    Ext("EXT", "related to external inputs") {
        Reset("rst", "a (cold or warm) reset"),
        Pcie("pci", "an interaction with PCIe"),
        Usb("usb", "an interaction with USB"),
        Dram("ram", "a specific DRAM configuration"),
        Iommu("iom", "an access through the IOMMU"),
        SystemBus("bus", "system bus (HyperTransport, QPI, etc.)"),
    }
    Fea("FEA", "related to features") {
        FloatingPoint("fpu", "floating-point instructions"),
        Debug("dbg", "debug features such as breakpoints"),
        Cpuid("cid", "design identification (CPUID reports)"),
        Monitoring("mon", "monitoring (MONITOR and MWAIT)"),
        Tracing("trc", "tracing features"),
        CustomFeature("cus", "other specific features (SSE, MMX, etc.)"),
    }
}

taxonomy! {
    kind: "context", prefix: "Ctx",
    class ContextClass, category Context;
    Prv("PRV", "related to privileges") {
        Boot("boo", "booting or being in the BIOS"),
        VmGuest("vmg", "being a virtual machine guest"),
        RealMode("rea", "operating in real mode"),
        Hypervisor("vmh", "being a hypervisor"),
        Smm("smm", "being in SMM"),
    }
    Fea("FEA", "related to features") {
        SecurityFeature("sec", "security feature enabled (SGX, SVM, etc.)"),
        SingleCore("sgc", "running in a single-core configuration"),
    }
    Phy("PHY", "non-digital conditions") {
        Package("pkg", "package-specific"),
        Temperature("tmp", "temperature-specific"),
        Voltage("vol", "voltage-specific"),
    }
}

taxonomy! {
    kind: "observable effect", prefix: "Eff",
    class EffectClass, category Effect;
    Hng("HNG", "related to hangs") {
        Unpredictable("unp", "an unpredictable behavior"),
        Hang("hng", "a hang of the processor"),
        Crash("crh", "a crash of the processor"),
        BootFailure("boo", "a boot failure"),
    }
    Flt("FLT", "related to faults") {
        MachineCheck("mca", "a machine check exception"),
        Uncorrectable("unc", "an uncorrectable error"),
        SpuriousFault("fsp", "one or multiple spurious faults"),
        MissingFault("fms", "one or multiple missing faults"),
        WrongFaultId("fid", "a wrong fault identifier or order"),
    }
    Crp("CRP", "related to corruptions") {
        PerfCounter("prf", "a wrong performance counter value"),
        MsrValue("reg", "a wrong MSR value"),
    }
    Ext("EXT", "related to physical outputs") {
        Pcie("pci", "issues observable on the PCIe side"),
        Usb("usb", "issues observable on the USB side"),
        Multimedia("mmd", "multimedia issues (e.g., audio, graphics)"),
        Dram("ram", "abnormal interaction with DRAM"),
        Power("pow", "abnormal power consumption"),
    }
}

/// Any abstract category, across the three kinds.
///
/// The paper's classification effort counts decisions over all 60 categories
/// (`1128 x 60 = 67,680` decisions per human before filtering); this type is
/// the unit of those decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// A necessary (conjunctive) trigger category.
    Trigger(Trigger),
    /// A sufficient (disjunctive) context category.
    Context(Context),
    /// A sufficient (disjunctive) observable-effect category.
    Effect(Effect),
}

impl Category {
    /// Total number of abstract categories (the paper's "60 categories").
    pub const COUNT: usize = Trigger::ALL.len() + Context::ALL.len() + Effect::ALL.len();

    /// Iterates over all 60 abstract categories: triggers, then contexts,
    /// then effects, each in table order.
    pub fn all() -> impl Iterator<Item = Category> {
        Trigger::ALL
            .iter()
            .map(|&t| Category::Trigger(t))
            .chain(Context::ALL.iter().map(|&c| Category::Context(c)))
            .chain(Effect::ALL.iter().map(|&e| Category::Effect(e)))
    }

    /// The paper's abstract descriptor, e.g. `Eff_CRP_reg`.
    pub fn code(&self) -> &'static str {
        match self {
            Category::Trigger(t) => t.code(),
            Category::Context(c) => c.code(),
            Category::Effect(e) => e.code(),
        }
    }

    /// One-sentence description from the paper's tables.
    pub fn description(&self) -> &'static str {
        match self {
            Category::Trigger(t) => t.description(),
            Category::Context(c) => c.description(),
            Category::Effect(e) => e.description(),
        }
    }

    /// Dense index in `0..Category::COUNT`, following [`Category::all`] order.
    pub fn dense_index(&self) -> usize {
        match self {
            Category::Trigger(t) => t.index(),
            Category::Context(c) => Trigger::ALL.len() + c.index(),
            Category::Effect(e) => Trigger::ALL.len() + Context::ALL.len() + e.index(),
        }
    }

    /// Inverse of [`Category::dense_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= Category::COUNT`.
    pub fn from_dense_index(index: usize) -> Category {
        let nt = Trigger::ALL.len();
        let nc = Context::ALL.len();
        if index < nt {
            Category::Trigger(Trigger::ALL[index])
        } else if index < nt + nc {
            Category::Context(Context::ALL[index - nt])
        } else {
            Category::Effect(Effect::ALL[index - nt - nc])
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for Category {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Ok(t) = s.parse::<Trigger>() {
            return Ok(Category::Trigger(t));
        }
        if let Ok(c) = s.parse::<Context>() {
            return Ok(Category::Context(c));
        }
        if let Ok(e) = s.parse::<Effect>() {
            return Ok(Category::Effect(e));
        }
        Err(ModelError::UnknownCategory(s.to_string()))
    }
}

impl From<Trigger> for Category {
    fn from(t: Trigger) -> Self {
        Category::Trigger(t)
    }
}

impl From<Context> for Category {
    fn from(c: Context) -> Self {
        Category::Context(c)
    }
}

impl From<Effect> for Category {
    fn from(e: Effect) -> Self {
        Category::Effect(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_paper_defines_exactly_sixty_categories() {
        assert_eq!(Trigger::ALL.len(), 34);
        assert_eq!(Context::ALL.len(), 10);
        assert_eq!(Effect::ALL.len(), 16);
        assert_eq!(Category::COUNT, 60);
        assert_eq!(Category::all().count(), 60);
    }

    #[test]
    fn class_counts_match_tables() {
        assert_eq!(TriggerClass::ALL.len(), 8);
        assert_eq!(ContextClass::ALL.len(), 3);
        assert_eq!(EffectClass::ALL.len(), 4);
    }

    #[test]
    fn class_categories_partition_the_categories() {
        let from_classes: usize = TriggerClass::ALL.iter().map(|c| c.categories().len()).sum();
        assert_eq!(from_classes, Trigger::ALL.len());
        for class in TriggerClass::ALL {
            for cat in class.categories() {
                assert_eq!(cat.class(), *class);
            }
        }
    }

    #[test]
    fn codes_follow_paper_notation() {
        assert_eq!(Trigger::Reset.code(), "Trg_EXT_rst");
        assert_eq!(Trigger::ConfigRegister.code(), "Trg_CFG_wrg");
        assert_eq!(Context::VmGuest.code(), "Ctx_PRV_vmg");
        assert_eq!(Effect::MsrValue.code(), "Eff_CRP_reg");
        assert_eq!(TriggerClass::Ext.code(), "Trg_EXT");
        assert_eq!(EffectClass::Crp.code(), "Eff_CRP");
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = Category::all().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 60);
    }

    #[test]
    fn parse_roundtrip_all() {
        for cat in Category::all() {
            let parsed: Category = cat.code().parse().unwrap();
            assert_eq!(parsed, cat);
        }
        assert!("Trg_XYZ_abc".parse::<Category>().is_err());
    }

    #[test]
    fn dense_index_roundtrip() {
        for (i, cat) in Category::all().enumerate() {
            assert_eq!(cat.dense_index(), i);
            assert_eq!(Category::from_dense_index(i), cat);
        }
    }

    #[test]
    fn descriptions_are_self_explanatory_one_liners() {
        for cat in Category::all() {
            let d = cat.description();
            assert!(!d.is_empty());
            assert!(!d.contains('\n'));
        }
    }

    #[test]
    fn class_parse_roundtrip() {
        for class in TriggerClass::ALL {
            assert_eq!(class.code().parse::<TriggerClass>().unwrap(), *class);
        }
        for class in ContextClass::ALL {
            assert_eq!(class.code().parse::<ContextClass>().unwrap(), *class);
        }
        for class in EffectClass::ALL {
            assert_eq!(class.code().parse::<EffectClass>().unwrap(), *class);
        }
    }

    #[test]
    fn serde_uses_stable_names() {
        let json = serde_json::to_string(&Trigger::PowerStateChange).unwrap();
        assert_eq!(json, "\"PowerStateChange\"");
        let back: Trigger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Trigger::PowerStateChange);
    }
}
