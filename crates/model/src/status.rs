//! Erratum status and workaround categories (Figures 6 and 7).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Whether the vendor fixed — or plans to fix — the root cause of a bug.
///
/// Fixes are distinct from workarounds: a fix removes the bug from the
/// design (possibly requiring a re-spin), while a workaround dynamically
/// prevents the bug from interfering with proper functionality. The paper
/// finds that the vast majority of bugs are never fixed (Observation O6).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum FixStatus {
    /// "No fix planned" — the bug remains for the lifetime of the parts.
    #[default]
    NoFixPlanned,
    /// A fix is planned for a future stepping of the same design.
    FixPlanned,
    /// The bug was fixed in a later stepping (see summary table of changes).
    Fixed,
    /// The "erratum" was actually wrong documentation; the docs were fixed.
    DocumentationChange,
}

impl FixStatus {
    /// All statuses.
    pub const ALL: [FixStatus; 4] = [
        FixStatus::NoFixPlanned,
        FixStatus::FixPlanned,
        FixStatus::Fixed,
        FixStatus::DocumentationChange,
    ];

    /// The phrase vendor documents print in the status field.
    pub fn document_phrase(&self) -> &'static str {
        match self {
            FixStatus::NoFixPlanned => "No fix planned.",
            FixStatus::FixPlanned => "A fix is planned for a future stepping.",
            FixStatus::Fixed => {
                "For the steppings affected, refer to the Summary Table of Changes."
            }
            FixStatus::DocumentationChange => "Documentation changed to reflect intended behavior.",
        }
    }

    /// Classifies a status field's text.
    ///
    /// Returns [`FixStatus::NoFixPlanned`] for unrecognized text, matching
    /// the conservative default the study uses.
    pub fn classify(text: &str) -> FixStatus {
        let lower = text.to_ascii_lowercase();
        if lower.contains("documentation") {
            FixStatus::DocumentationChange
        } else if lower.contains("summary table") || lower.contains("steppings affected") {
            FixStatus::Fixed
        } else if lower.contains("fix is planned") || lower.contains("future stepping") {
            FixStatus::FixPlanned
        } else {
            FixStatus::NoFixPlanned
        }
    }

    /// True if the root cause was, or will be, removed from the design.
    pub fn is_fixed_or_planned(&self) -> bool {
        matches!(self, FixStatus::Fixed | FixStatus::FixPlanned)
    }
}

impl fmt::Display for FixStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FixStatus::NoFixPlanned => "no fix planned",
            FixStatus::FixPlanned => "fix planned",
            FixStatus::Fixed => "fixed",
            FixStatus::DocumentationChange => "documentation change",
        })
    }
}

/// Where a workaround must be applied, i.e. which actor should (not) perform
/// a specific action to ensure proper functionality (Section IV-B3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum WorkaroundCategory {
    /// Mitigable in the BIOS — arguably the least critical class.
    Bios,
    /// Requires conditions in system or application software.
    Software,
    /// Requires conditions in peripherals.
    Peripherals,
    /// A workaround exists but the document gives no specifics
    /// ("Contact your representative for information on a BIOS update.").
    Absent,
    /// No workaround identified at all — 28.9% (AMD) and 35.9% (Intel) of
    /// unique errata (Observation O5).
    #[default]
    None,
    /// The document itself was corrected (<0.5% of errata).
    DocumentationFix,
}

impl WorkaroundCategory {
    /// All categories, in Figure 6 order.
    pub const ALL: [WorkaroundCategory; 6] = [
        WorkaroundCategory::Bios,
        WorkaroundCategory::Software,
        WorkaroundCategory::Peripherals,
        WorkaroundCategory::Absent,
        WorkaroundCategory::None,
        WorkaroundCategory::DocumentationFix,
    ];

    /// A representative phrase a vendor document would print.
    pub fn document_phrase(&self) -> &'static str {
        match self {
            WorkaroundCategory::Bios => {
                "It is possible for the BIOS to contain a workaround for this erratum."
            }
            WorkaroundCategory::Software => {
                "System software may contain the workaround for this erratum."
            }
            WorkaroundCategory::Peripherals => {
                "The attached device should avoid the condition described above."
            }
            WorkaroundCategory::Absent => {
                "Contact your representative for information on a BIOS update."
            }
            WorkaroundCategory::None => "None identified.",
            WorkaroundCategory::DocumentationFix => {
                "The documentation will be changed to reflect the intended behavior."
            }
        }
    }

    /// Classifies a workaround field's text.
    ///
    /// Whenever possible the text is put in a specific category even when
    /// exact information is missing; truly uninformative "contact the
    /// vendor" phrasing becomes [`WorkaroundCategory::Absent`].
    pub fn classify(text: &str) -> WorkaroundCategory {
        let lower = text.to_ascii_lowercase();
        if lower.contains("none identified") || lower.trim() == "none" || lower.trim().is_empty() {
            WorkaroundCategory::None
        } else if lower.contains("documentation") {
            WorkaroundCategory::DocumentationFix
        } else if lower.contains("bios") && !lower.contains("contact") {
            WorkaroundCategory::Bios
        } else if lower.contains("device") || lower.contains("peripheral") {
            WorkaroundCategory::Peripherals
        } else if lower.contains("software") || lower.contains("operating system") {
            WorkaroundCategory::Software
        } else {
            // "Contact the vendor" phrasing and anything unrecognized.
            WorkaroundCategory::Absent
        }
    }

    /// True if the erratum has *some* workaround, however vague.
    pub fn has_workaround(&self) -> bool {
        !matches!(self, WorkaroundCategory::None)
    }
}

impl fmt::Display for WorkaroundCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WorkaroundCategory::Bios => "BIOS",
            WorkaroundCategory::Software => "software",
            WorkaroundCategory::Peripherals => "peripherals",
            WorkaroundCategory::Absent => "absent",
            WorkaroundCategory::None => "none",
            WorkaroundCategory::DocumentationFix => "documentation fix",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classify_recognizes_document_phrases() {
        for status in FixStatus::ALL {
            assert_eq!(FixStatus::classify(status.document_phrase()), status);
        }
    }

    #[test]
    fn status_classify_real_examples() {
        // Table I (Intel ADL001) and Table II (AMD 1361) status lines.
        assert_eq!(
            FixStatus::classify(
                "For the steppings affected, refer to the Summary Table of Changes."
            ),
            FixStatus::Fixed
        );
        assert_eq!(
            FixStatus::classify("No fix planned."),
            FixStatus::NoFixPlanned
        );
    }

    #[test]
    fn workaround_classify_recognizes_document_phrases() {
        for cat in WorkaroundCategory::ALL {
            assert_eq!(WorkaroundCategory::classify(cat.document_phrase()), cat);
        }
    }

    #[test]
    fn workaround_classify_real_examples() {
        assert_eq!(
            WorkaroundCategory::classify("None identified. Software should use the FDP value."),
            WorkaroundCategory::None
        );
        assert_eq!(
            WorkaroundCategory::classify(
                "System software may contain the workaround for this erratum."
            ),
            WorkaroundCategory::Software
        );
    }

    #[test]
    fn vague_contact_is_absent() {
        assert_eq!(
            WorkaroundCategory::classify("Contact AMD for information on a BIOS update."),
            WorkaroundCategory::Absent
        );
    }

    #[test]
    fn has_workaround() {
        assert!(!WorkaroundCategory::None.has_workaround());
        assert!(WorkaroundCategory::Bios.has_workaround());
        assert!(WorkaroundCategory::Absent.has_workaround());
    }

    #[test]
    fn fixed_or_planned() {
        assert!(FixStatus::Fixed.is_fixed_or_planned());
        assert!(FixStatus::FixPlanned.is_fixed_or_planned());
        assert!(!FixStatus::NoFixPlanned.is_fixed_or_planned());
        assert!(!FixStatus::DocumentationChange.is_fixed_or_planned());
    }
}
