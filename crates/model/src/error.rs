//! Error type for the model crate.

use std::fmt;

/// Errors produced when constructing or parsing model values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A calendar date with out-of-range components.
    InvalidDate {
        /// Year component of the rejected date.
        year: i32,
        /// Month component of the rejected date.
        month: u8,
        /// Day component of the rejected date.
        day: u8,
    },
    /// A string could not be parsed as a date.
    DateParse(String),
    /// A string is not a known taxonomy category code.
    UnknownCategory(String),
    /// A string is not a known design identifier.
    UnknownDesign(String),
    /// A string is not a known MSR name.
    UnknownMsr(String),
    /// A machine-readable erratum record was malformed.
    FormatParse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An erratum field failed validation.
    InvalidField {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidDate { year, month, day } => {
                write!(f, "invalid date {year:04}-{month:02}-{day:02}")
            }
            ModelError::DateParse(s) => write!(f, "cannot parse date from {s:?}"),
            ModelError::UnknownCategory(s) => write!(f, "unknown taxonomy category {s:?}"),
            ModelError::UnknownDesign(s) => write!(f, "unknown design identifier {s:?}"),
            ModelError::UnknownMsr(s) => write!(f, "unknown MSR name {s:?}"),
            ModelError::FormatParse { line, reason } => {
                write!(f, "format parse error at line {line}: {reason}")
            }
            ModelError::InvalidField { field, reason } => {
                write!(f, "invalid field {field}: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let samples: Vec<ModelError> = vec![
            ModelError::InvalidDate {
                year: 2020,
                month: 13,
                day: 1,
            },
            ModelError::DateParse("x".into()),
            ModelError::UnknownCategory("Trg_FOO".into()),
            ModelError::UnknownDesign("core-99".into()),
            ModelError::UnknownMsr("MSR_X".into()),
            ModelError::FormatParse {
                line: 3,
                reason: "missing colon".into(),
            },
            ModelError::InvalidField {
                field: "title",
                reason: "empty".into(),
            },
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("cannot"));
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<ModelError>();
    }
}
