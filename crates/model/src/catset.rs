//! Compact sets of abstract categories.
//!
//! The key observation of the paper is that **triggers are conjunctive**
//! (all triggers of an erratum must be applied to provoke the bug) while
//! **contexts and observations are disjunctive** (any one applicable context
//! or observable deviation suffices). Both semantics are carried by the same
//! bitset representation; the semantic distinction lives in the methods
//! ([`CategorySet::satisfied_by_all`] vs [`CategorySet::satisfied_by_any`])
//! and in the aliases [`TriggerSet`], [`ContextSet`] and [`EffectSet`].

use std::fmt;
use std::marker::PhantomData;

use serde::de::DeserializeOwned;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::taxonomy::{Context, Effect, Trigger};

/// A finite catalog of categories that can be packed into a 64-bit set.
///
/// This trait is sealed: it is implemented exactly for the three abstract
/// category enums of the taxonomy.
pub trait Catalog: Copy + Eq + fmt::Debug + private::Sealed + 'static {
    /// Number of categories in the catalog (must be <= 64).
    const COUNT: usize;
    /// Dense index of this category in `0..Self::COUNT`.
    fn catalog_index(self) -> usize;
    /// Inverse of [`Catalog::catalog_index`].
    fn from_catalog_index(index: usize) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for crate::taxonomy::Trigger {}
    impl Sealed for crate::taxonomy::Context {}
    impl Sealed for crate::taxonomy::Effect {}
}

macro_rules! impl_catalog {
    ($ty:ty) => {
        impl Catalog for $ty {
            const COUNT: usize = <$ty>::ALL.len();

            fn catalog_index(self) -> usize {
                self.index()
            }

            fn from_catalog_index(index: usize) -> Self {
                <$ty>::ALL[index]
            }
        }
    };
}

impl_catalog!(Trigger);
impl_catalog!(Context);
impl_catalog!(Effect);

/// A set of abstract categories of one kind, packed into a `u64`.
///
/// # Examples
///
/// ```
/// use rememberr_model::{Trigger, TriggerSet};
///
/// let mut set = TriggerSet::new();
/// set.insert(Trigger::Reset);
/// set.insert(Trigger::Pcie);
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(Trigger::Reset));
/// let codes: Vec<&str> = set.iter().map(|t| t.code()).collect();
/// assert_eq!(codes, ["Trg_EXT_rst", "Trg_EXT_pci"]);
/// ```
pub struct CategorySet<T> {
    bits: u64,
    _marker: PhantomData<T>,
}

/// Conjunctive set of necessary triggers: a bug manifests only when **all**
/// members are applied.
pub type TriggerSet = CategorySet<Trigger>;

/// Disjunctive set of applicable contexts: being in **any** member context
/// suffices to observe the bug.
pub type ContextSet = CategorySet<Context>;

/// Disjunctive set of observable effects: observing **any** member deviation
/// suffices to detect the bug.
pub type EffectSet = CategorySet<Effect>;

impl<T: Catalog> CategorySet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        const { assert!(T::COUNT <= 64) };
        Self {
            bits: 0,
            _marker: PhantomData,
        }
    }

    /// Creates a set holding every category of the catalog.
    pub fn full() -> Self {
        let mut s = Self::new();
        for i in 0..T::COUNT {
            s.bits |= 1 << i;
        }
        s
    }

    /// Adds a category; returns `true` if it was newly inserted.
    pub fn insert(&mut self, category: T) -> bool {
        let mask = 1u64 << category.catalog_index();
        let fresh = self.bits & mask == 0;
        self.bits |= mask;
        fresh
    }

    /// Removes a category; returns `true` if it was present.
    pub fn remove(&mut self, category: T) -> bool {
        let mask = 1u64 << category.catalog_index();
        let present = self.bits & mask != 0;
        self.bits &= !mask;
        present
    }

    /// True if the category is a member.
    pub fn contains(&self, category: T) -> bool {
        self.bits & (1 << category.catalog_index()) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        Self {
            bits: self.bits | other.bits,
            _marker: PhantomData,
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Self) -> Self {
        Self {
            bits: self.bits & other.bits,
            _marker: PhantomData,
        }
    }

    /// Members of `self` not in `other`.
    pub fn difference(&self, other: &Self) -> Self {
        Self {
            bits: self.bits & !other.bits,
            _marker: PhantomData,
        }
    }

    /// True if every member of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.bits & !other.bits == 0
    }

    /// True if the sets share at least one member.
    pub fn intersects(&self, other: &Self) -> bool {
        self.bits & other.bits != 0
    }

    /// **Conjunctive semantics** (triggers): true if the stimulus set
    /// `applied` covers every necessary member of `self`.
    ///
    /// An empty `self` is trivially satisfied — an erratum without clear
    /// triggers can fire under any stimulus.
    pub fn satisfied_by_all(&self, applied: &Self) -> bool {
        self.is_subset(applied)
    }

    /// **Disjunctive semantics** (contexts, effects): true if `available`
    /// provides at least one member of `self`, or `self` is empty.
    pub fn satisfied_by_any(&self, available: &Self) -> bool {
        self.is_empty() || self.intersects(available)
    }

    /// Iterates members in catalog (table) order.
    pub fn iter(&self) -> Iter<T> {
        Iter {
            bits: self.bits,
            _marker: PhantomData,
        }
    }

    /// Raw bit representation (stable: bit `i` is catalog index `i`).
    pub fn to_bits(&self) -> u64 {
        self.bits
    }

    /// Rebuilds a set from [`CategorySet::to_bits`].
    ///
    /// Bits beyond the catalog size are discarded.
    pub fn from_bits(bits: u64) -> Self {
        let mask = if T::COUNT == 64 {
            u64::MAX
        } else {
            (1u64 << T::COUNT) - 1
        };
        Self {
            bits: bits & mask,
            _marker: PhantomData,
        }
    }
}

/// Iterator over the members of a [`CategorySet`], in catalog order.
#[derive(Debug, Clone)]
pub struct Iter<T> {
    bits: u64,
    _marker: PhantomData<T>,
}

impl<T: Catalog> Iterator for Iter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.bits == 0 {
            return None;
        }
        let idx = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(T::from_catalog_index(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl<T: Catalog> ExactSizeIterator for Iter<T> {}

impl<T: Catalog> IntoIterator for &CategorySet<T> {
    type Item = T;
    type IntoIter = Iter<T>;

    fn into_iter(self) -> Iter<T> {
        self.iter()
    }
}

impl<T: Catalog> FromIterator<T> for CategorySet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = Self::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

impl<T: Catalog> Extend<T> for CategorySet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

// Manual impls: derive would put unnecessary bounds on T.
impl<T> Clone for CategorySet<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for CategorySet<T> {}

impl<T> PartialEq for CategorySet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.bits == other.bits
    }
}

impl<T> Eq for CategorySet<T> {}

impl<T> PartialOrd for CategorySet<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for CategorySet<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bits.cmp(&other.bits)
    }
}

impl<T> std::hash::Hash for CategorySet<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bits.hash(state);
    }
}

impl<T: Catalog> Default for CategorySet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Catalog + fmt::Display> fmt::Debug for CategorySet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut set = f.debug_set();
        for member in self.iter() {
            set.entry(&format_args!("{member}"));
        }
        set.finish()
    }
}

impl<T: Catalog + fmt::Display> fmt::Display for CategorySet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        f.write_str("{")?;
        for member in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{member}")?;
        }
        f.write_str("}")
    }
}

impl<T: Catalog + Serialize> Serialize for CategorySet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|member| member.to_value()).collect())
    }
}

impl<T: Catalog + DeserializeOwned> Deserialize for CategorySet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let members = Vec::<T>::from_value(value)?;
        Ok(members.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::TriggerClass;

    #[test]
    fn insert_remove_contains() {
        let mut s = TriggerSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Trigger::Reset));
        assert!(!s.insert(Trigger::Reset));
        assert!(s.contains(Trigger::Reset));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Trigger::Reset));
        assert!(!s.remove(Trigger::Reset));
        assert!(s.is_empty());
    }

    #[test]
    fn full_set_has_catalog_size() {
        assert_eq!(TriggerSet::full().len(), Trigger::ALL.len());
        assert_eq!(ContextSet::full().len(), Context::ALL.len());
        assert_eq!(EffectSet::full().len(), Effect::ALL.len());
    }

    #[test]
    fn iteration_is_in_table_order() {
        let set: TriggerSet = [Trigger::Pcie, Trigger::CacheLineBoundary, Trigger::Reset]
            .into_iter()
            .collect();
        let order: Vec<Trigger> = set.iter().collect();
        assert_eq!(
            order,
            vec![Trigger::CacheLineBoundary, Trigger::Reset, Trigger::Pcie]
        );
    }

    #[test]
    fn conjunctive_trigger_semantics() {
        let needed: TriggerSet = [Trigger::Reset, Trigger::Pcie].into_iter().collect();
        let only_reset: TriggerSet = [Trigger::Reset].into_iter().collect();
        let both_plus: TriggerSet = [Trigger::Reset, Trigger::Pcie, Trigger::Dram]
            .into_iter()
            .collect();
        assert!(!needed.satisfied_by_all(&only_reset));
        assert!(needed.satisfied_by_all(&both_plus));
        // No clear trigger: anything satisfies.
        assert!(TriggerSet::new().satisfied_by_all(&TriggerSet::new()));
    }

    #[test]
    fn disjunctive_effect_semantics() {
        let observable: EffectSet = [Effect::Hang, Effect::MsrValue].into_iter().collect();
        let watching_msrs: EffectSet = [Effect::MsrValue].into_iter().collect();
        let watching_usb: EffectSet = [Effect::Usb].into_iter().collect();
        assert!(observable.satisfied_by_any(&watching_msrs));
        assert!(!observable.satisfied_by_any(&watching_usb));
    }

    #[test]
    fn set_algebra() {
        let a: TriggerSet = [Trigger::Reset, Trigger::Pcie].into_iter().collect();
        let b: TriggerSet = [Trigger::Pcie, Trigger::Dram].into_iter().collect();
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 1);
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersects(&b));
    }

    #[test]
    fn bits_roundtrip_and_mask() {
        let a: ContextSet = [Context::VmGuest, Context::Smm].into_iter().collect();
        assert_eq!(ContextSet::from_bits(a.to_bits()), a);
        // Garbage high bits are discarded.
        let noisy = ContextSet::from_bits(u64::MAX);
        assert_eq!(noisy.len(), Context::ALL.len());
    }

    #[test]
    fn display_and_debug() {
        let set: TriggerSet = [Trigger::Reset].into_iter().collect();
        assert_eq!(set.to_string(), "{Trg_EXT_rst}");
        assert_eq!(format!("{set:?}"), "{Trg_EXT_rst}");
        assert_eq!(TriggerSet::new().to_string(), "{}");
    }

    #[test]
    fn serde_roundtrip_as_code_list() {
        let set: EffectSet = [Effect::Hang, Effect::Pcie].into_iter().collect();
        let json = serde_json::to_string(&set).unwrap();
        assert_eq!(json, "[\"Hang\",\"Pcie\"]");
        let back: EffectSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn classes_of_a_trigger_set() {
        let set: TriggerSet = [Trigger::Reset, Trigger::Pcie, Trigger::Debug]
            .into_iter()
            .collect();
        let classes: std::collections::BTreeSet<TriggerClass> =
            set.iter().map(|t| t.class()).collect();
        assert_eq!(classes.len(), 2); // EXT (rst, pci) and FEA (dbg)
    }
}
