//! Lenient facet-value parsing shared by every user-facing query surface
//! (the CLI's `query` options and the serve daemon's URL parameters).
//!
//! Two shapes exist: code-named categories (`Trg_EXT_rst`) parse through
//! their `FromStr` impls, and display-named categories ("no fix planned")
//! parse here, case-insensitively, with `-`/`_` accepted for spaces so
//! they survive both shell quoting and URL encoding.

use crate::design::Vendor;
use crate::status::{FixStatus, WorkaroundCategory};

/// Parses a vendor from its lowercase name (`intel` / `amd`).
///
/// # Errors
///
/// Returns a message listing the accepted names.
pub fn parse_vendor(text: &str) -> Result<Vendor, String> {
    match text.to_ascii_lowercase().as_str() {
        "intel" => Ok(Vendor::Intel),
        "amd" => Ok(Vendor::Amd),
        other => Err(format!("unknown vendor {other:?} (use intel or amd)")),
    }
}

/// Case-insensitive category parse against the canonical display names,
/// with `-`/`_` accepted for spaces (`no-fix-planned` == "no fix planned").
///
/// # Errors
///
/// Returns a message listing every valid value in its dashed form.
pub fn parse_display_category<T: Copy + std::fmt::Display>(
    all: &[T],
    what: &str,
    text: &str,
) -> Result<T, String> {
    let wanted = text.to_ascii_lowercase().replace(['-', '_'], " ");
    all.iter()
        .copied()
        .find(|c| c.to_string().to_ascii_lowercase() == wanted)
        .ok_or_else(|| {
            let known: Vec<String> = all
                .iter()
                .map(|c| c.to_string().to_ascii_lowercase().replace(' ', "-"))
                .collect();
            format!("unknown {what} {text:?} (use one of: {})", known.join(", "))
        })
}

/// Parses a workaround category from its display name.
///
/// # Errors
///
/// Returns a message listing the valid categories.
pub fn parse_workaround(text: &str) -> Result<WorkaroundCategory, String> {
    parse_display_category(&WorkaroundCategory::ALL, "workaround category", text)
}

/// Parses a fix status from its display name.
///
/// # Errors
///
/// Returns a message listing the valid statuses.
pub fn parse_fix(text: &str) -> Result<FixStatus, String> {
    parse_display_category(&FixStatus::ALL, "fix status", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendors_parse_case_insensitively() {
        assert_eq!(parse_vendor("intel"), Ok(Vendor::Intel));
        assert_eq!(parse_vendor("AMD"), Ok(Vendor::Amd));
        let err = parse_vendor("via").unwrap_err();
        assert!(err.contains("intel"), "{err}");
    }

    #[test]
    fn display_categories_accept_dashes_and_underscores() {
        assert_eq!(parse_fix("no-fix-planned"), Ok(FixStatus::NoFixPlanned));
        assert_eq!(parse_fix("No_Fix_Planned"), Ok(FixStatus::NoFixPlanned));
        assert_eq!(parse_workaround("bios"), Ok(WorkaroundCategory::Bios));
        let err = parse_workaround("magic").unwrap_err();
        assert!(err.contains("workaround category"), "{err}");
        assert!(err.contains("bios"), "lists valid values: {err}");
    }
}
