//! Data model for the RemembERR microprocessor-errata study.
//!
//! This crate defines the vocabulary shared by the whole pipeline:
//!
//! * [`Design`] / [`Vendor`] — the 28 designs whose errata documents the
//!   study examined (Table III of the paper);
//! * [`Erratum`], [`ErrataDocument`], [`Revision`] — the raw material;
//! * the three-level classification scheme of Tables IV-VI:
//!   [`Trigger`]/[`TriggerClass`], [`Context`]/[`ContextClass`],
//!   [`Effect`]/[`EffectClass`], with [`Category::COUNT`] = 60 abstract
//!   categories in 15 classes;
//! * [`Annotation`] — the per-erratum labels, where trigger sets are
//!   **conjunctive** and context/effect sets **disjunctive**;
//! * [`MachineErratum`] — the machine-readable erratum format the paper
//!   proposes (Table VII).
//!
//! # Examples
//!
//! ```
//! use rememberr_model::{Annotation, Context, Design, Effect, Trigger};
//!
//! // Annotate the paper's Table I erratum (Intel ADL001):
//! let annotation = Annotation::builder()
//!     .trigger(Trigger::FloatingPoint, "Execution of FSAVE, FNSAVE, FSTENV, or FNSTENV")
//!     .context(Context::RealMode, "real-address mode or virtual-8086 mode")
//!     .effect(Effect::Unpredictable, "incorrect value for the x87 FDP")
//!     .build();
//!
//! assert_eq!(annotation.complexity(), 1);
//! assert_eq!(Design::Intel12.reference(), "682436-004US");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod annotation;
mod catset;
mod date;
mod design;
mod document;
mod erratum;
mod error;
mod facetparse;
mod format;
mod ids;
mod msr;
mod status;
mod taxonomy;
mod wire;

pub use annotation::{Annotation, AnnotationBuilder};
pub use catset::{Catalog, CategorySet, ContextSet, EffectSet, Iter, TriggerSet};
pub use date::{Date, MONTH_NAMES};
pub use design::{Design, Segment, Vendor};
pub use document::{ErrataDocument, FixedIn, Revision};
pub use erratum::{DateSource, Erratum, ErratumId, Provenance};
pub use error::ModelError;
pub use facetparse::{parse_display_category, parse_fix, parse_vendor, parse_workaround};
pub use format::MachineErratum;
pub use ids::UniqueKey;
pub use msr::{MsrName, MsrRef};
pub use status::{FixStatus, WorkaroundCategory};
pub use taxonomy::{Category, Context, ContextClass, Effect, EffectClass, Trigger, TriggerClass};
pub use wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<Annotation>();
        assert_bounds::<ErrataDocument>();
        assert_bounds::<MachineErratum>();
        assert_bounds::<ModelError>();
    }
}
