//! Model Specific Registers (MSRs) referenced by errata.
//!
//! Figure 19 of the paper ranks the MSRs in which observable effects
//! manifest: machine-check status registers dominate (7.1%-8.5% of unique
//! errata), followed by Instruction Based Sampling registers and performance
//! counters. Errata documents also contain *wrong* MSR numbers (one of the
//! "errata in errata" defect types), so the registry here doubles as a
//! validator used by the extraction pipeline.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::design::Vendor;
use crate::error::ModelError;

/// A named architectural or model-specific register tracked by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // names mirror vendor documentation
pub enum MsrName {
    McStatus,
    McAddr,
    McMisc,
    McgStatus,
    McgCap,
    IbsFetchCtl,
    IbsOpCtl,
    IbsOpData,
    PerfCtr,
    PerfEvtSel,
    FixedCtr,
    Aperf,
    Mperf,
    Tsc,
    ApicBase,
    PStateStatus,
    ThermStatus,
    PkgEnergyStatus,
    SmiCount,
    DebugCtl,
    LastBranchRecord,
    Efer,
    Pat,
    MtrrCap,
    VmCr,
    SpecCtrl,
}

/// Static registry row for an MSR.
struct MsrInfo {
    name: MsrName,
    text: &'static str,
    /// Canonical register number (for banked registers, the base of bank 0).
    address: u32,
    /// `None` = architectural / both vendors.
    vendor: Option<Vendor>,
    /// True if the register is replicated per bank/counter (MCx_*, PerfCtr).
    banked: bool,
}

const MSR_INFOS: [MsrInfo; 26] = [
    MsrInfo {
        name: MsrName::McStatus,
        text: "MCx_STATUS",
        address: 0x0401,
        vendor: None,
        banked: true,
    },
    MsrInfo {
        name: MsrName::McAddr,
        text: "MCx_ADDR",
        address: 0x0402,
        vendor: None,
        banked: true,
    },
    MsrInfo {
        name: MsrName::McMisc,
        text: "MCx_MISC",
        address: 0x0403,
        vendor: None,
        banked: true,
    },
    MsrInfo {
        name: MsrName::McgStatus,
        text: "MCG_STATUS",
        address: 0x017A,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::McgCap,
        text: "MCG_CAP",
        address: 0x0179,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::IbsFetchCtl,
        text: "IBS_FETCH_CTL",
        address: 0xC001_1030,
        vendor: Some(Vendor::Amd),
        banked: false,
    },
    MsrInfo {
        name: MsrName::IbsOpCtl,
        text: "IBS_OP_CTL",
        address: 0xC001_1033,
        vendor: Some(Vendor::Amd),
        banked: false,
    },
    MsrInfo {
        name: MsrName::IbsOpData,
        text: "IBS_OP_DATA",
        address: 0xC001_1035,
        vendor: Some(Vendor::Amd),
        banked: false,
    },
    MsrInfo {
        name: MsrName::PerfCtr,
        text: "PERF_CTR",
        address: 0x00C1,
        vendor: None,
        banked: true,
    },
    MsrInfo {
        name: MsrName::PerfEvtSel,
        text: "PERF_EVT_SEL",
        address: 0x0186,
        vendor: None,
        banked: true,
    },
    MsrInfo {
        name: MsrName::FixedCtr,
        text: "FIXED_CTR",
        address: 0x0309,
        vendor: Some(Vendor::Intel),
        banked: true,
    },
    MsrInfo {
        name: MsrName::Aperf,
        text: "APERF",
        address: 0x00E8,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::Mperf,
        text: "MPERF",
        address: 0x00E7,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::Tsc,
        text: "TSC",
        address: 0x0010,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::ApicBase,
        text: "APIC_BASE",
        address: 0x001B,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::PStateStatus,
        text: "PSTATE_STATUS",
        address: 0xC001_0063,
        vendor: Some(Vendor::Amd),
        banked: false,
    },
    MsrInfo {
        name: MsrName::ThermStatus,
        text: "THERM_STATUS",
        address: 0x019C,
        vendor: Some(Vendor::Intel),
        banked: false,
    },
    MsrInfo {
        name: MsrName::PkgEnergyStatus,
        text: "PKG_ENERGY_STATUS",
        address: 0x0611,
        vendor: Some(Vendor::Intel),
        banked: false,
    },
    MsrInfo {
        name: MsrName::SmiCount,
        text: "SMI_COUNT",
        address: 0x0034,
        vendor: Some(Vendor::Intel),
        banked: false,
    },
    MsrInfo {
        name: MsrName::DebugCtl,
        text: "DEBUG_CTL",
        address: 0x01D9,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::LastBranchRecord,
        text: "LBR_FROM_IP",
        address: 0x0680,
        vendor: Some(Vendor::Intel),
        banked: true,
    },
    MsrInfo {
        name: MsrName::Efer,
        text: "EFER",
        address: 0xC000_0080,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::Pat,
        text: "PAT",
        address: 0x0277,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::MtrrCap,
        text: "MTRR_CAP",
        address: 0x00FE,
        vendor: None,
        banked: false,
    },
    MsrInfo {
        name: MsrName::VmCr,
        text: "VM_CR",
        address: 0xC001_0114,
        vendor: Some(Vendor::Amd),
        banked: false,
    },
    MsrInfo {
        name: MsrName::SpecCtrl,
        text: "SPEC_CTRL",
        address: 0x0048,
        vendor: None,
        banked: false,
    },
];

impl MsrName {
    /// All registry entries, in registry order.
    pub const ALL: [MsrName; 26] = [
        MsrName::McStatus,
        MsrName::McAddr,
        MsrName::McMisc,
        MsrName::McgStatus,
        MsrName::McgCap,
        MsrName::IbsFetchCtl,
        MsrName::IbsOpCtl,
        MsrName::IbsOpData,
        MsrName::PerfCtr,
        MsrName::PerfEvtSel,
        MsrName::FixedCtr,
        MsrName::Aperf,
        MsrName::Mperf,
        MsrName::Tsc,
        MsrName::ApicBase,
        MsrName::PStateStatus,
        MsrName::ThermStatus,
        MsrName::PkgEnergyStatus,
        MsrName::SmiCount,
        MsrName::DebugCtl,
        MsrName::LastBranchRecord,
        MsrName::Efer,
        MsrName::Pat,
        MsrName::MtrrCap,
        MsrName::VmCr,
        MsrName::SpecCtrl,
    ];

    fn info(&self) -> &'static MsrInfo {
        let info = &MSR_INFOS[*self as usize];
        debug_assert_eq!(info.name, *self);
        info
    }

    /// The documentation-style register name, e.g. `MCx_STATUS`.
    pub fn text(&self) -> &'static str {
        self.info().text
    }

    /// The canonical register number (bank 0 for banked registers).
    pub fn canonical_address(&self) -> u32 {
        self.info().address
    }

    /// Vendor the register is specific to; `None` if it exists on both.
    pub fn vendor(&self) -> Option<Vendor> {
        self.info().vendor
    }

    /// True if the register is replicated per bank or counter index.
    pub fn is_banked(&self) -> bool {
        self.info().banked
    }

    /// True if the register is available on the given vendor's parts.
    pub fn available_on(&self, vendor: Vendor) -> bool {
        self.info().vendor.is_none_or(|v| v == vendor)
    }

    /// True if `address` is a plausible number for this register.
    ///
    /// Banked registers occupy a window of 4 x 32 banks above the base;
    /// non-banked registers must match exactly. The extraction pipeline uses
    /// this to flag the "erroneous MSR numbers" defect class.
    pub fn accepts_address(&self, address: u32) -> bool {
        let base = self.canonical_address();
        if self.is_banked() {
            address >= base && address < base + 4 * 32
        } else {
            address == base
        }
    }

    /// Looks up a register by its documentation-style name.
    pub fn lookup(text: &str) -> Option<MsrName> {
        MsrName::ALL.iter().copied().find(|m| m.text() == text)
    }
}

impl fmt::Display for MsrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text())
    }
}

impl FromStr for MsrName {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MsrName::lookup(s).ok_or_else(|| ModelError::UnknownMsr(s.to_string()))
    }
}

/// A concrete MSR reference as printed in an erratum: a name plus the
/// register number the document claims it has.
///
/// The claimed number may be wrong — three errata across three documents
/// carry erroneous MSR numbers (paper, Section IV-A). [`MsrRef::is_consistent`]
/// detects this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsrRef {
    /// Which register the text names.
    pub name: MsrName,
    /// The register number the document prints next to the name.
    pub claimed_address: u32,
}

impl MsrRef {
    /// A reference using the canonical register number.
    pub fn canonical(name: MsrName) -> Self {
        Self {
            name,
            claimed_address: name.canonical_address(),
        }
    }

    /// True if the claimed number is plausible for the named register.
    pub fn is_consistent(&self) -> bool {
        self.name.accepts_address(self.claimed_address)
    }
}

impl fmt::Display for MsrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (MSR {:#06X})", self.name, self.claimed_address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        for (i, name) in MsrName::ALL.iter().enumerate() {
            assert_eq!(*name as usize, i);
            assert_eq!(MSR_INFOS[i].name, *name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut texts: Vec<&str> = MsrName::ALL.iter().map(|m| m.text()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), MsrName::ALL.len());
    }

    #[test]
    fn lookup_roundtrip() {
        for name in MsrName::ALL {
            assert_eq!(MsrName::lookup(name.text()), Some(name));
            assert_eq!(name.text().parse::<MsrName>().unwrap(), name);
        }
        assert!(MsrName::lookup("NOT_AN_MSR").is_none());
    }

    #[test]
    fn vendor_availability() {
        assert!(MsrName::McStatus.available_on(Vendor::Intel));
        assert!(MsrName::McStatus.available_on(Vendor::Amd));
        assert!(MsrName::IbsOpCtl.available_on(Vendor::Amd));
        assert!(!MsrName::IbsOpCtl.available_on(Vendor::Intel));
        assert!(MsrName::ThermStatus.available_on(Vendor::Intel));
        assert!(!MsrName::ThermStatus.available_on(Vendor::Amd));
    }

    #[test]
    fn banked_address_windows() {
        assert!(MsrName::McStatus.accepts_address(0x0401));
        assert!(MsrName::McStatus.accepts_address(0x0401 + 4 * 10)); // bank 10
        assert!(!MsrName::McStatus.accepts_address(0x0300));
        assert!(MsrName::Tsc.accepts_address(0x0010));
        assert!(!MsrName::Tsc.accepts_address(0x0011));
    }

    #[test]
    fn msr_ref_consistency() {
        let good = MsrRef::canonical(MsrName::Aperf);
        assert!(good.is_consistent());
        let bad = MsrRef {
            name: MsrName::Aperf,
            claimed_address: 0xDEAD,
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn display_shows_name_and_number() {
        let r = MsrRef::canonical(MsrName::Tsc);
        assert_eq!(r.to_string(), "TSC (MSR 0x0010)");
    }
}
