//! Structured errata documents: revision history plus erratum list.

use serde::{Deserialize, Serialize};

use crate::date::Date;
use crate::design::Design;
use crate::erratum::{DateSource, Erratum, Provenance};

/// One row of the document's "Summary Table of Changes": an erratum whose
/// root cause was fixed, and the stepping that carries the fix.
///
/// Intel status fields point here ("For the steppings affected, refer to
/// the Summary Table of Changes", Table I of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedIn {
    /// Erratum number within the document.
    pub number: u32,
    /// The stepping carrying the fix, e.g. `C0`.
    pub stepping: String,
}

/// One revision of an errata document, as summarized in the document's
/// revision-history table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Revision {
    /// Revision number (monotonically increasing).
    pub number: u32,
    /// Release or update date of the revision.
    pub date: Date,
    /// Erratum numbers this revision claims to have added.
    ///
    /// The claims can be wrong: the same erratum may be claimed by two
    /// consecutive revisions, and some errata are never claimed at all —
    /// both are documented "errata in errata" defect types.
    pub added: Vec<u32>,
}

/// A structured errata document: the design it covers, its revision history
/// and all errata it lists.
///
/// Both ends of the pipeline use this type: the corpus generator produces it
/// (before rendering to text) and the extraction pipeline reconstructs it
/// (after parsing the text).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrataDocument {
    /// The design the document covers.
    pub design: Design,
    /// Revision history, in revision order.
    pub revisions: Vec<Revision>,
    /// All listed errata, in document (number) order.
    pub errata: Vec<Erratum>,
    /// Summary table of changes: fixed errata and their fixing steppings.
    #[serde(default)]
    pub fix_summary: Vec<FixedIn>,
}

impl ErrataDocument {
    /// Creates an empty document for a design.
    pub fn new(design: Design) -> Self {
        Self {
            design,
            revisions: Vec::new(),
            errata: Vec::new(),
            fix_summary: Vec::new(),
        }
    }

    /// The fixing stepping for an erratum number, if the summary table of
    /// changes lists one.
    pub fn fixed_in(&self, number: u32) -> Option<&str> {
        self.fix_summary
            .iter()
            .find(|f| f.number == number)
            .map(|f| f.stepping.as_str())
    }

    /// Number of errata listed.
    pub fn len(&self) -> usize {
        self.errata.len()
    }

    /// True if no errata are listed.
    pub fn is_empty(&self) -> bool {
        self.errata.is_empty()
    }

    /// The latest revision, if any.
    pub fn latest_revision(&self) -> Option<&Revision> {
        self.revisions.last()
    }

    /// Finds an erratum by number.
    pub fn erratum(&self, number: u32) -> Option<&Erratum> {
        self.errata.iter().find(|e| e.id.number == number)
    }

    /// Approximates the disclosure date of every erratum (Section IV-B1).
    ///
    /// For each erratum the *earliest* revision claiming to have added it
    /// provides the date (this resolves the contradicting-claims defect).
    /// Errata never mentioned in the revision summary are dated by
    /// interpolation: errata are sequentially numbered, so the nearest
    /// *numbered neighbor* with a known revision supplies the date.
    ///
    /// Returns one [`Provenance`] per erratum, parallel to `self.errata`.
    pub fn approximate_disclosure_dates(&self) -> Vec<Provenance> {
        let mut claimed: std::collections::BTreeMap<u32, (u32, Date, DateSource)> =
            std::collections::BTreeMap::new();
        for rev in &self.revisions {
            for &number in &rev.added {
                claimed
                    .entry(number)
                    .and_modify(|entry| {
                        // A later revision claims it again: keep the earlier
                        // date and mark the contradiction.
                        entry.2 = DateSource::EarlierOfContradicting;
                    })
                    .or_insert((rev.number, rev.date, DateSource::RevisionLog));
            }
        }

        self.errata
            .iter()
            .map(|e| {
                if let Some(&(rev, date, source)) = claimed.get(&e.id.number) {
                    Provenance {
                        first_revision: rev,
                        disclosure_date: date,
                        date_source: source,
                    }
                } else {
                    // Neighbor interpolation: nearest claimed number wins,
                    // ties broken toward the earlier (lower) neighbor.
                    let neighbor = claimed
                        .iter()
                        .min_by_key(|(n, _)| (n.abs_diff(e.id.number), **n))
                        .map(|(_, v)| *v);
                    match neighbor {
                        Some((rev, date, _)) => Provenance {
                            first_revision: rev,
                            disclosure_date: date,
                            date_source: DateSource::NeighborInterpolation,
                        },
                        None => Provenance {
                            // Degenerate document without a revision log:
                            // fall back to the design release date.
                            first_revision: 0,
                            disclosure_date: self.design.release_date(),
                            date_source: DateSource::NeighborInterpolation,
                        },
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erratum::ErratumId;

    fn erratum(design: Design, number: u32) -> Erratum {
        Erratum {
            id: ErratumId::new(design, number),
            title: format!("Erratum number {number} title"),
            description: "Some condition causes some behavior.".to_string(),
            implications: "System may hang.".to_string(),
            workaround: "None identified.".to_string(),
            status: "No fix planned.".to_string(),
        }
    }

    fn date(y: i32, m: u8) -> Date {
        Date::new(y, m, 1).unwrap()
    }

    fn sample_doc() -> ErrataDocument {
        let design = Design::Intel6;
        ErrataDocument {
            design,
            revisions: vec![
                Revision {
                    number: 1,
                    date: date(2015, 9),
                    added: vec![1, 2],
                },
                Revision {
                    number: 2,
                    date: date(2016, 2),
                    added: vec![3],
                },
                // Contradicting claim: revision 3 pretends to add 3 again.
                Revision {
                    number: 3,
                    date: date(2016, 8),
                    added: vec![3, 5],
                },
            ],
            errata: (1..=5).map(|n| erratum(design, n)).collect(),
            fix_summary: vec![FixedIn {
                number: 2,
                stepping: "C0".to_string(),
            }],
        }
    }

    #[test]
    fn revision_log_dates() {
        let doc = sample_doc();
        let prov = doc.approximate_disclosure_dates();
        assert_eq!(prov[0].disclosure_date, date(2015, 9));
        assert_eq!(prov[0].date_source, DateSource::RevisionLog);
        assert_eq!(prov[1].first_revision, 1);
    }

    #[test]
    fn contradicting_claims_take_earlier_revision() {
        let doc = sample_doc();
        let prov = doc.approximate_disclosure_dates();
        // Erratum 3 claimed by revisions 2 and 3: earlier wins.
        assert_eq!(prov[2].disclosure_date, date(2016, 2));
        assert_eq!(prov[2].date_source, DateSource::EarlierOfContradicting);
    }

    #[test]
    fn unmentioned_erratum_interpolates_from_neighbor() {
        let doc = sample_doc();
        let prov = doc.approximate_disclosure_dates();
        // Erratum 4 is never claimed; nearest claimed neighbors are 3 and 5.
        // Tie broken toward the lower number (3, added in revision 2).
        assert_eq!(prov[3].date_source, DateSource::NeighborInterpolation);
        assert_eq!(prov[3].disclosure_date, date(2016, 2));
    }

    #[test]
    fn document_without_revisions_falls_back_to_release() {
        let design = Design::Amd19h;
        let doc = ErrataDocument {
            design,
            revisions: vec![],
            errata: vec![erratum(design, 1000)],
            fix_summary: Vec::new(),
        };
        let prov = doc.approximate_disclosure_dates();
        assert_eq!(prov[0].disclosure_date, design.release_date());
    }

    #[test]
    fn accessors() {
        let doc = sample_doc();
        assert_eq!(doc.len(), 5);
        assert!(!doc.is_empty());
        assert_eq!(doc.latest_revision().unwrap().number, 3);
        assert!(doc.erratum(4).is_some());
        assert!(doc.erratum(99).is_none());
        assert!(ErrataDocument::new(Design::Intel10).is_empty());
    }

    #[test]
    fn fixed_in_lookup() {
        let doc = sample_doc();
        assert_eq!(doc.fixed_in(2), Some("C0"));
        assert_eq!(doc.fixed_in(1), None);
    }

    #[test]
    fn serde_roundtrip() {
        let doc = sample_doc();
        let json = serde_json::to_string(&doc).unwrap();
        let back: ErrataDocument = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }
}
