//! The machine-readable erratum format proposed by the paper (Table VII).
//!
//! Current vendor errata spread information redundantly over title,
//! description, implications and workaround fields. Table VII proposes a
//! structured replacement; this module renders and parses it, so RemembERR
//! entries can be exchanged in the proposed format.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::annotation::Annotation;
use crate::error::ModelError;
use crate::ids::UniqueKey;
use crate::taxonomy::{Context, Effect, Trigger};

/// An erratum in the proposed machine-readable format (Table VII).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineErratum {
    /// Unique identifier shared with identical errata in other designs.
    pub key: UniqueKey,
    /// The erratum's title.
    pub title: String,
    /// Abstract and concrete triggers, contexts and effects.
    pub annotation: Annotation,
    /// Free-form qualifications (e.g. "does not apply if ...").
    pub comments: String,
    /// Root-cause explanation, if the vendor provides one (almost never).
    pub root_cause: Option<String>,
    /// Workaround text.
    pub workaround: String,
    /// Status text.
    pub status: String,
}

fn write_level(out: &mut String, heading: &str, abstract_codes: &[&str], concrete: &[String]) {
    out.push_str(heading);
    out.push_str(":\n  Abstract: ");
    out.push_str(&abstract_codes.join(", "));
    out.push_str("\n  Concrete: ");
    out.push_str(&concrete.join("; "));
    out.push('\n');
}

impl MachineErratum {
    /// Renders the Table VII textual form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("ID: {}\n", self.key));
        out.push_str(&format!("Title: {}\n", self.title));
        write_level(
            &mut out,
            "Triggers",
            &self
                .annotation
                .triggers
                .iter()
                .map(|t| t.code())
                .collect::<Vec<_>>(),
            &self.annotation.concrete_triggers,
        );
        write_level(
            &mut out,
            "Contexts",
            &self
                .annotation
                .contexts
                .iter()
                .map(|c| c.code())
                .collect::<Vec<_>>(),
            &self.annotation.concrete_contexts,
        );
        write_level(
            &mut out,
            "Effects",
            &self
                .annotation
                .effects
                .iter()
                .map(|e| e.code())
                .collect::<Vec<_>>(),
            &self.annotation.concrete_effects,
        );
        out.push_str(&format!(
            "MSRs: {}\n",
            self.annotation
                .msrs
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ));
        out.push_str(&format!(
            "Complex conditions: {}\n",
            if self.annotation.complex_conditions {
                "yes"
            } else {
                "no"
            }
        ));
        out.push_str(&format!("Comments: {}\n", self.comments));
        out.push_str(&format!(
            "Root cause: {}\n",
            self.root_cause.as_deref().unwrap_or("[not provided]")
        ));
        out.push_str(&format!("Workaround: {}\n", self.workaround));
        out.push_str(&format!("Status: {}\n", self.status));
        out
    }
}

impl fmt::Display for MachineErratum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Internal line cursor for parsing.
struct Lines<'a> {
    lines: std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>,
}

impl<'a> Lines<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            lines: s.lines().enumerate().peekable(),
        }
    }

    /// Takes the next line and strips `prefix`, failing otherwise.
    fn expect(&mut self, prefix: &str) -> Result<(usize, String), ModelError> {
        match self.lines.next() {
            Some((i, line)) => match line.strip_prefix(prefix) {
                Some(rest) => Ok((i + 1, rest.trim().to_string())),
                None => Err(ModelError::FormatParse {
                    line: i + 1,
                    reason: format!("expected prefix {prefix:?}, got {line:?}"),
                }),
            },
            None => Err(ModelError::FormatParse {
                line: 0,
                reason: format!("unexpected end of record, expected {prefix:?}"),
            }),
        }
    }
}

fn parse_codes<T: FromStr<Err = ModelError>>(
    line_no: usize,
    text: &str,
) -> Result<Vec<T>, ModelError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|code| {
            code.trim()
                .parse::<T>()
                .map_err(|_| ModelError::FormatParse {
                    line: line_no,
                    reason: format!("unknown category code {:?}", code.trim()),
                })
        })
        .collect()
}

/// Parses the `NAME (MSR 0xADDR)` list written by [`MachineErratum::render`].
fn parse_msrs(line_no: usize, text: &str) -> Result<Vec<crate::msr::MsrRef>, ModelError> {
    if text.trim().is_empty() {
        return Ok(Vec::new());
    }
    text.split(';')
        .map(|part| {
            let part = part.trim();
            let bad = || ModelError::FormatParse {
                line: line_no,
                reason: format!("bad MSR reference {part:?}"),
            };
            let (name_text, rest) = part.split_once(" (MSR 0x").ok_or_else(bad)?;
            let hex = rest.strip_suffix(')').ok_or_else(bad)?;
            let name: crate::msr::MsrName = name_text.trim().parse().map_err(|_| bad())?;
            let claimed_address = u32::from_str_radix(hex, 16).map_err(|_| bad())?;
            Ok(crate::msr::MsrRef {
                name,
                claimed_address,
            })
        })
        .collect()
}

fn parse_concretes(text: &str) -> Vec<String> {
    if text.is_empty() {
        Vec::new()
    } else {
        text.split(';').map(|s| s.trim().to_string()).collect()
    }
}

impl FromStr for MachineErratum {
    type Err = ModelError;

    /// Parses the Table VII textual form produced by [`MachineErratum::render`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cur = Lines::new(s);
        let (id_line, id_text) = cur.expect("ID: ")?;
        let key_num: u32 = id_text
            .strip_prefix('K')
            .and_then(|n| n.parse().ok())
            .ok_or(ModelError::FormatParse {
                line: id_line,
                reason: format!("bad unique key {id_text:?}"),
            })?;
        let (_, title) = cur.expect("Title: ")?;

        cur.expect("Triggers:")?;
        let (tl, trg_abs) = cur.expect("  Abstract: ")?;
        let (_, trg_conc) = cur.expect("  Concrete: ")?;
        cur.expect("Contexts:")?;
        let (cl, ctx_abs) = cur.expect("  Abstract: ")?;
        let (_, ctx_conc) = cur.expect("  Concrete: ")?;
        cur.expect("Effects:")?;
        let (el, eff_abs) = cur.expect("  Abstract: ")?;
        let (_, eff_conc) = cur.expect("  Concrete: ")?;

        let (ml, msr_text) = cur.expect("MSRs: ")?;
        let (_, complex_text) = cur.expect("Complex conditions: ")?;
        let (_, comments) = cur.expect("Comments: ")?;
        let (_, root_cause) = cur.expect("Root cause: ")?;
        let (_, workaround) = cur.expect("Workaround: ")?;
        let (_, status) = cur.expect("Status: ")?;

        let mut annotation = Annotation::new();
        for t in parse_codes::<Trigger>(tl, &trg_abs)? {
            annotation.triggers.insert(t);
        }
        for c in parse_codes::<Context>(cl, &ctx_abs)? {
            annotation.contexts.insert(c);
        }
        for e in parse_codes::<Effect>(el, &eff_abs)? {
            annotation.effects.insert(e);
        }
        annotation.concrete_triggers = parse_concretes(&trg_conc);
        annotation.concrete_contexts = parse_concretes(&ctx_conc);
        annotation.concrete_effects = parse_concretes(&eff_conc);
        annotation.msrs = parse_msrs(ml, &msr_text)?;
        annotation.complex_conditions = complex_text == "yes";

        Ok(MachineErratum {
            key: UniqueKey(key_num),
            title,
            annotation,
            comments,
            root_cause: if root_cause == "[not provided]" {
                None
            } else {
                Some(root_cause)
            },
            workaround,
            status,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table VII example: erratum ADL001 in the proposed format.
    fn table_vii_example() -> MachineErratum {
        MachineErratum {
            key: UniqueKey(1),
            title: "x87 FDP Value May be Saved Incorrectly".to_string(),
            annotation: Annotation::builder()
                .trigger(
                    Trigger::FloatingPoint,
                    "Execution of FSAVE, FNSAVE, FSTENV, or FNSTENV",
                )
                .context(
                    Context::RealMode,
                    "Operating in real-address mode or virtual-8086 mode",
                )
                .effect(Effect::Unpredictable, "Incorrect value for the x87 FDP")
                .build(),
            comments: "This erratum does not apply if the last non-control x87 instruction had \
                       an unmasked exception."
                .to_string(),
            root_cause: None,
            workaround: "None identified.".to_string(),
            status: "No fix.".to_string(),
        }
    }

    #[test]
    fn render_matches_table_vii_shape() {
        let rendered = table_vii_example().render();
        assert!(rendered.starts_with("ID: K00001\n"));
        assert!(rendered.contains("  Abstract: Trg_FEA_fpu\n"));
        assert!(rendered.contains("  Abstract: Ctx_PRV_rea\n"));
        assert!(rendered.contains("  Abstract: Eff_HNG_unp\n"));
        assert!(rendered.contains("Root cause: [not provided]\n"));
        assert!(rendered.contains("MSRs: \n"));
        assert!(rendered.contains("Complex conditions: no\n"));
    }

    #[test]
    fn roundtrip_with_msrs_and_complex_flag() {
        use crate::msr::{MsrName, MsrRef};
        let mut e = table_vii_example();
        e.annotation = Annotation::builder()
            .effect(Effect::MsrValue, "wrong MC status")
            .msr(MsrRef::canonical(MsrName::McStatus))
            .msr(MsrRef {
                name: MsrName::Aperf,
                claimed_address: 0xDEAD,
            })
            .complex_conditions()
            .build();
        let parsed: MachineErratum = e.render().parse().unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn parse_roundtrip() {
        let original = table_vii_example();
        let parsed: MachineErratum = original.render().parse().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn roundtrip_with_multiple_categories_and_root_cause() {
        let mut e = table_vii_example();
        e.annotation = Annotation::builder()
            .trigger(Trigger::Reset, "warm reset")
            .trigger(Trigger::Pcie, "PCIe traffic")
            .effect(Effect::Hang, "hang")
            .effect(Effect::Pcie, "link degraded")
            .build();
        e.root_cause = Some("race in link state machine".to_string());
        let parsed: MachineErratum = e.render().parse().unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn roundtrip_with_empty_annotation() {
        let mut e = table_vii_example();
        e.annotation = Annotation::new();
        let parsed: MachineErratum = e.render().parse().unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "garbage".parse::<MachineErratum>().unwrap_err();
        match err {
            ModelError::FormatParse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        let bad_code = table_vii_example()
            .render()
            .replace("Trg_FEA_fpu", "Trg_FEA_xyz");
        assert!(bad_code.parse::<MachineErratum>().is_err());
    }

    #[test]
    fn display_equals_render() {
        let e = table_vii_example();
        assert_eq!(e.to_string(), e.render());
    }
}
