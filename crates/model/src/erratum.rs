//! Errata and their provenance.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::date::Date;
use crate::design::{Design, Vendor};
use crate::error::ModelError;

/// Identifier of an erratum within one errata document.
///
/// Intel numbers errata per document with an alphabetic prefix (`SKL095`);
/// AMD uses plain numbers that are *stable across documents* (`1361`), which
/// is why AMD duplicates can be detected by number alone (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ErratumId {
    /// The design (document) the erratum appears in.
    pub design: Design,
    /// The numeric part of the identifier.
    pub number: u32,
}

impl ErratumId {
    /// Creates an identifier.
    pub fn new(design: Design, number: u32) -> Self {
        Self { design, number }
    }

    /// The identifier as printed in the document, e.g. `SKL095` or `1361`.
    pub fn document_form(&self) -> String {
        match self.design.vendor() {
            Vendor::Intel => format!("{}{:03}", self.design.erratum_prefix(), self.number),
            Vendor::Amd => self.number.to_string(),
        }
    }

    /// Parses a document-form identifier appearing in the given design's
    /// document.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidField`] if the prefix does not match the
    /// design or the numeric part is missing.
    pub fn parse_document_form(design: Design, s: &str) -> Result<Self, ModelError> {
        let prefix = design.erratum_prefix();
        let rest = s.strip_prefix(prefix).ok_or(ModelError::InvalidField {
            field: "erratum id",
            reason: format!("{s:?} does not start with prefix {prefix:?}"),
        })?;
        let number: u32 = rest.parse().map_err(|_| ModelError::InvalidField {
            field: "erratum id",
            reason: format!("{rest:?} is not a number"),
        })?;
        Ok(Self { design, number })
    }
}

impl fmt::Display for ErratumId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.design.reference(), self.document_form())
    }
}

/// One erratum as it appears in a vendor document: the five textual fields.
///
/// This is the *raw* representation produced by the extraction pipeline;
/// typed classification results (annotations, workaround category, fix
/// status) are attached at the database layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Erratum {
    /// Identifier within the document.
    pub id: ErratumId,
    /// The erratum's title.
    pub title: String,
    /// Conditions under which the bug occurs.
    pub description: String,
    /// Brief discussion of the bug's implications once triggered.
    pub implications: String,
    /// Proposed workaround guidance (may be "None identified.").
    pub workaround: String,
    /// Status field text (fix availability).
    pub status: String,
}

impl Erratum {
    /// Validates structural invariants: non-empty title and description.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidField`] naming the first empty mandatory
    /// field. (Missing *optional* fields — implications, workaround, status —
    /// are one of the documented "errata in errata" defects and are allowed.)
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.title.trim().is_empty() {
            return Err(ModelError::InvalidField {
                field: "title",
                reason: "empty".to_string(),
            });
        }
        if self.description.trim().is_empty() {
            return Err(ModelError::InvalidField {
                field: "description",
                reason: "empty".to_string(),
            });
        }
        Ok(())
    }

    /// Concatenation of all prose fields, used by classification rules.
    pub fn full_text(&self) -> String {
        let mut text = String::with_capacity(
            self.title.len()
                + self.description.len()
                + self.implications.len()
                + self.workaround.len()
                + 4,
        );
        text.push_str(&self.title);
        text.push('\n');
        text.push_str(&self.description);
        text.push('\n');
        text.push_str(&self.implications);
        text.push('\n');
        text.push_str(&self.workaround);
        text
    }
}

/// How the disclosure date of an erratum was established (Section IV-B1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum DateSource {
    /// The revision summary names the revision that added the erratum.
    #[default]
    RevisionLog,
    /// The revision summary is silent; the date was approximated from the
    /// sequentially-numbered neighbor erratum.
    NeighborInterpolation,
    /// Two revisions both claim to have added the erratum; the earlier
    /// revision's date was taken.
    EarlierOfContradicting,
}

/// Where and when an erratum surfaced: the document, the revision that first
/// listed it, and the approximated disclosure date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Revision number that first contains the erratum.
    pub first_revision: u32,
    /// Release/update date of that revision — the disclosure-date proxy.
    pub disclosure_date: Date,
    /// How the date was established.
    pub date_source: DateSource,
}

impl Provenance {
    /// Provenance recorded directly from a revision log entry.
    pub fn from_revision_log(first_revision: u32, disclosure_date: Date) -> Self {
        Self {
            first_revision,
            disclosure_date,
            date_source: DateSource::RevisionLog,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Erratum {
        Erratum {
            id: ErratumId::new(Design::Intel12, 1),
            title: "X87 FDP Value May be Saved Incorrectly".to_string(),
            description: "Execution of the FSAVE instruction in real-address mode may save an \
                          incorrect value for the x87 FDP."
                .to_string(),
            implications: "Software that depends on the FDP value may not operate properly."
                .to_string(),
            workaround: "None identified.".to_string(),
            status: "For the steppings affected, refer to the Summary Table of Changes."
                .to_string(),
        }
    }

    #[test]
    fn intel_document_form_has_prefix() {
        let id = ErratumId::new(Design::Intel12, 1);
        assert_eq!(id.document_form(), "ADL001");
        let id = ErratumId::new(Design::Intel6, 95);
        assert_eq!(id.document_form(), "SKL095");
    }

    #[test]
    fn amd_document_form_is_plain_number() {
        let id = ErratumId::new(Design::Amd19h, 1361);
        assert_eq!(id.document_form(), "1361");
    }

    #[test]
    fn parse_document_form_roundtrip() {
        for design in [Design::Intel6, Design::Amd19h, Design::Intel1D] {
            let id = ErratumId::new(design, 42);
            let parsed = ErratumId::parse_document_form(design, &id.document_form()).unwrap();
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn parse_rejects_wrong_prefix() {
        assert!(ErratumId::parse_document_form(Design::Intel6, "ADL001").is_err());
        assert!(ErratumId::parse_document_form(Design::Intel6, "SKLxyz").is_err());
    }

    #[test]
    fn validate_requires_title_and_description() {
        let mut e = sample();
        assert!(e.validate().is_ok());
        e.title.clear();
        assert!(e.validate().is_err());
        let mut e = sample();
        e.description = "   ".to_string();
        assert!(e.validate().is_err());
        // Missing optional fields are tolerated (documented defect class).
        let mut e = sample();
        e.implications.clear();
        e.workaround.clear();
        e.status.clear();
        assert!(e.validate().is_ok());
    }

    #[test]
    fn full_text_contains_all_prose_fields() {
        let e = sample();
        let text = e.full_text();
        assert!(text.contains(&e.title));
        assert!(text.contains(&e.description));
        assert!(text.contains(&e.implications));
        assert!(text.contains(&e.workaround));
        assert!(!text.contains(&e.status));
    }

    #[test]
    fn display_combines_reference_and_form() {
        let id = ErratumId::new(Design::Intel12, 1);
        assert_eq!(id.to_string(), "682436-004US/ADL001");
    }
}
