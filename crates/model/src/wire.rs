//! Stable binary wire encoding for the model's component types.
//!
//! The binary snapshot format (`rememberr-bin/v1`, implemented in
//! `crates/core`) persists database entries as columns of fixed-width
//! values plus ids into a deduplicated string table. The string-free
//! component types encode here, in a *stable field order* that is part of
//! the on-disk format: adding, removing, or reordering a field of any
//! `WireEncode` type is a format change and must bump the snapshot
//! version.
//!
//! Conventions:
//!
//! * all integers are little-endian and fixed-width;
//! * enums encode as a `u8` index into the type's canonical catalog
//!   ([`Design::ALL`], [`MsrName::ALL`], ...); decoding validates the
//!   index so a corrupt byte can never alias to a different variant
//!   silently;
//! * [`CategorySet`] bitsets encode as their raw `u64` bits; decoding
//!   rejects bits beyond the catalog size instead of masking them away,
//!   so corruption surfaces as an error rather than a silently smaller
//!   set;
//! * strings never appear here — the snapshot layer interns them in its
//!   string table and encodes `u32` ids.

use std::fmt;

use crate::catset::{Catalog, CategorySet};
use crate::date::Date;
use crate::design::{Design, Vendor};
use crate::erratum::{DateSource, ErratumId, Provenance};
use crate::ids::UniqueKey;
use crate::msr::{MsrName, MsrRef};
use crate::status::{FixStatus, WorkaroundCategory};

/// Errors produced while decoding wire-encoded values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded when the input ran out.
        what: &'static str,
    },
    /// A tag or raw value does not denote any valid instance.
    InvalidValue {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input while decoding {what}")
            }
            WireError::InvalidValue { what, value } => {
                write!(f, "invalid {what} value {value:#x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian byte sink for wire encoding.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a value through its [`WireEncode`] impl.
    pub fn put<T: WireEncode>(&mut self, value: &T) {
        value.encode_wire(self);
    }
}

/// Cursor over wire-encoded bytes.
#[derive(Debug, Clone, Copy)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] naming `what` if fewer than `n` bytes
    /// remain.
    pub fn take_bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { what });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if the input is exhausted.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take_bytes(1, what)?[0])
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let bytes = self.take_bytes(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let bytes = self.take_bytes(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Consumes a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn take_i32(&mut self, what: &'static str) -> Result<i32, WireError> {
        let bytes = self.take_bytes(4, what)?;
        Ok(i32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Decodes a value through its [`WireDecode`] impl.
    ///
    /// # Errors
    ///
    /// Propagates the value's decode error.
    pub fn take<T: WireDecode>(&mut self) -> Result<T, WireError> {
        T::decode_wire(self)
    }
}

/// Types with a stable binary wire encoding.
pub trait WireEncode {
    /// Appends this value's encoding to `w`.
    fn encode_wire(&self, w: &mut WireWriter);
}

/// Types decodable from their [`WireEncode`] bytes.
pub trait WireDecode: Sized {
    /// Decodes one value from the reader's current position.
    ///
    /// # Errors
    ///
    /// [`WireError`] on exhausted input or an invalid raw value.
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Wires an enum as a `u8` index into its canonical `ALL` catalog.
macro_rules! wire_catalog_enum {
    ($ty:ty, $what:literal) => {
        impl WireEncode for $ty {
            fn encode_wire(&self, w: &mut WireWriter) {
                let index = <$ty>::ALL
                    .iter()
                    .position(|v| v == self)
                    .expect("every variant appears in ALL");
                w.put_u8(index as u8);
            }
        }

        impl WireDecode for $ty {
            fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let tag = r.take_u8($what)?;
                <$ty>::ALL
                    .get(tag as usize)
                    .copied()
                    .ok_or(WireError::InvalidValue {
                        what: $what,
                        value: u64::from(tag),
                    })
            }
        }
    };
}

wire_catalog_enum!(Vendor, "vendor");
wire_catalog_enum!(Design, "design");
wire_catalog_enum!(WorkaroundCategory, "workaround category");
wire_catalog_enum!(FixStatus, "fix status");
wire_catalog_enum!(MsrName, "msr name");

impl WireEncode for DateSource {
    fn encode_wire(&self, w: &mut WireWriter) {
        w.put_u8(match self {
            DateSource::RevisionLog => 0,
            DateSource::NeighborInterpolation => 1,
            DateSource::EarlierOfContradicting => 2,
        });
    }
}

impl WireDecode for DateSource {
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8("date source")? {
            0 => Ok(DateSource::RevisionLog),
            1 => Ok(DateSource::NeighborInterpolation),
            2 => Ok(DateSource::EarlierOfContradicting),
            tag => Err(WireError::InvalidValue {
                what: "date source",
                value: u64::from(tag),
            }),
        }
    }
}

impl WireEncode for Date {
    fn encode_wire(&self, w: &mut WireWriter) {
        w.put_i32(self.year());
        w.put_u8(self.month());
        w.put_u8(self.day());
    }
}

impl WireDecode for Date {
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let year = r.take_i32("date")?;
        let month = r.take_u8("date")?;
        let day = r.take_u8("date")?;
        Date::new(year, month, day).map_err(|_| WireError::InvalidValue {
            what: "date",
            value: (u64::from(month) << 8) | u64::from(day),
        })
    }
}

impl<T: Catalog> WireEncode for CategorySet<T> {
    fn encode_wire(&self, w: &mut WireWriter) {
        w.put_u64(self.to_bits());
    }
}

impl<T: Catalog> WireDecode for CategorySet<T> {
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bits = r.take_u64("category set")?;
        let set = CategorySet::<T>::from_bits(bits);
        // `from_bits` masks silently; in a snapshot, out-of-catalog bits
        // mean corruption and must not vanish.
        if set.to_bits() != bits {
            return Err(WireError::InvalidValue {
                what: "category set",
                value: bits,
            });
        }
        Ok(set)
    }
}

impl WireEncode for MsrRef {
    fn encode_wire(&self, w: &mut WireWriter) {
        w.put(&self.name);
        w.put_u32(self.claimed_address);
    }
}

impl WireDecode for MsrRef {
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MsrRef {
            name: r.take()?,
            claimed_address: r.take_u32("msr claimed address")?,
        })
    }
}

impl WireEncode for ErratumId {
    fn encode_wire(&self, w: &mut WireWriter) {
        w.put(&self.design);
        w.put_u32(self.number);
    }
}

impl WireDecode for ErratumId {
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ErratumId {
            design: r.take()?,
            number: r.take_u32("erratum number")?,
        })
    }
}

impl WireEncode for Provenance {
    fn encode_wire(&self, w: &mut WireWriter) {
        w.put_u32(self.first_revision);
        w.put(&self.disclosure_date);
        w.put(&self.date_source);
    }
}

impl WireDecode for Provenance {
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Provenance {
            first_revision: r.take_u32("first revision")?,
            disclosure_date: r.take()?,
            date_source: r.take()?,
        })
    }
}

impl WireEncode for UniqueKey {
    fn encode_wire(&self, w: &mut WireWriter) {
        w.put_u32(self.value());
    }
}

impl WireDecode for UniqueKey {
    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(UniqueKey(r.take_u32("unique key")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catset::{ContextSet, TriggerSet};
    use crate::taxonomy::Trigger;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = WireWriter::new();
        w.put(&value);
        let mut r = WireReader::new(w.as_bytes());
        let back: T = r.take().expect("roundtrip decodes");
        assert_eq!(back, value);
        assert!(r.is_done(), "decode consumed every encoded byte");
    }

    #[test]
    fn every_catalog_variant_roundtrips() {
        for v in Vendor::ALL {
            roundtrip(v);
        }
        for d in Design::ALL {
            roundtrip(d);
        }
        for w in WorkaroundCategory::ALL {
            roundtrip(w);
        }
        for f in FixStatus::ALL {
            roundtrip(f);
        }
        for m in MsrName::ALL {
            roundtrip(m);
        }
        for s in [
            DateSource::RevisionLog,
            DateSource::NeighborInterpolation,
            DateSource::EarlierOfContradicting,
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn composite_types_roundtrip() {
        roundtrip(Date::new(2016, 2, 29).unwrap());
        roundtrip(MsrRef::canonical(MsrName::McStatus));
        roundtrip(ErratumId::new(Design::Amd17h00, 1095));
        roundtrip(Provenance {
            first_revision: 7,
            disclosure_date: Date::new(2019, 11, 4).unwrap(),
            date_source: DateSource::NeighborInterpolation,
        });
        roundtrip(UniqueKey(u32::MAX));
        let mut triggers = TriggerSet::new();
        triggers.insert(Trigger::Speculative);
        triggers.insert(Trigger::PowerStateChange);
        roundtrip(triggers);
        roundtrip(ContextSet::full());
    }

    #[test]
    fn rejects_invalid_enum_tags() {
        let bytes = [0xEEu8];
        let mut r = WireReader::new(&bytes);
        let err = Design::decode_wire(&mut r).unwrap_err();
        assert_eq!(
            err,
            WireError::InvalidValue {
                what: "design",
                value: 0xEE
            }
        );
    }

    #[test]
    fn rejects_invalid_date() {
        let mut w = WireWriter::new();
        w.put_i32(2016);
        w.put_u8(13);
        w.put_u8(1);
        let mut r = WireReader::new(w.as_bytes());
        assert!(matches!(
            Date::decode_wire(&mut r),
            Err(WireError::InvalidValue { what: "date", .. })
        ));
    }

    #[test]
    fn rejects_out_of_catalog_set_bits() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let mut r = WireReader::new(w.as_bytes());
        assert!(matches!(
            TriggerSet::decode_wire(&mut r),
            Err(WireError::InvalidValue {
                what: "category set",
                ..
            })
        ));
    }

    #[test]
    fn eof_is_reported_with_context() {
        let mut r = WireReader::new(&[1, 2]);
        let err = r.take_u32("erratum number").unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEof {
                what: "erratum number"
            }
        );
    }
}
