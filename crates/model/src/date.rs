//! Calendar dates for errata chronology.
//!
//! Errata documents carry release and revision dates; the paper's timeline
//! analyses (Figures 2, 4 and 5) only need day-resolution civil dates and
//! day arithmetic, so we implement a small proleptic-Gregorian date type
//! instead of pulling in a full time library.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A civil (proleptic Gregorian) calendar date.
///
/// Internally stored as year/month/day and validated on construction.
/// Ordering is chronological.
///
/// # Examples
///
/// ```
/// use rememberr_model::Date;
///
/// # fn main() -> Result<(), rememberr_model::ModelError> {
/// let release = Date::new(2015, 8, 5)?;
/// let update = Date::new(2016, 1, 12)?;
/// assert!(release < update);
/// assert_eq!(update - release, 160);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date from year, month (1-12) and day (1-31).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDate`] if the month or day is out of
    /// range for the given year.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, ModelError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(ModelError::InvalidDate { year, month, day });
        }
        Ok(Self { year, month, day })
    }

    /// Creates a date without validation; used for compile-time tables.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the date is invalid.
    pub(crate) const fn from_ymd_unchecked(year: i32, month: u8, day: u8) -> Self {
        Self { year, month, day }
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1-12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1-31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Number of days since 1970-01-01 (negative before the epoch).
    ///
    /// Uses the civil-from-days algorithm by Howard Hinnant.
    pub fn days_since_epoch(&self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Builds a date from a number of days since 1970-01-01.
    pub fn from_days_since_epoch(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = doy - (153 * mp + 2) / 5 + 1;
        let m = if mp < 10 { mp + 3 } else { mp - 9 };
        Self {
            year: (y + i64::from(m <= 2)) as i32,
            month: m as u8,
            day: d as u8,
        }
    }

    /// Returns this date shifted by a (possibly negative) number of days.
    pub fn add_days(&self, days: i64) -> Self {
        Self::from_days_since_epoch(self.days_since_epoch() + days)
    }

    /// Returns this date shifted forward by whole months, clamping the day.
    pub fn add_months(&self, months: i32) -> Self {
        let total = self.year * 12 + i32::from(self.month) - 1 + months;
        let year = total.div_euclid(12);
        let month = (total.rem_euclid(12) + 1) as u8;
        let day = self.day.min(days_in_month(year, month));
        Self { year, month, day }
    }

    /// Fractional years elapsed since another date (for plotting timelines).
    pub fn years_since(&self, other: Date) -> f64 {
        (self.days_since_epoch() - other.days_since_epoch()) as f64 / 365.2425
    }
}

impl std::ops::Sub for Date {
    type Output = i64;

    /// Difference in days (`self - rhs`).
    fn sub(self, rhs: Self) -> i64 {
        self.days_since_epoch() - rhs.days_since_epoch()
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = ModelError;

    /// Parses `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(3, '-');
        let bad = || ModelError::DateParse(s.to_string());
        let year: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::new(year, month, day)
    }
}

fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// English month names used when rendering document revision tables.
pub const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

impl Date {
    /// Renders the date the way vendor documents print it, e.g. `August 2015`.
    pub fn to_document_style(&self) -> String {
        format!("{} {}", MONTH_NAMES[usize::from(self.month) - 1], self.year)
    }

    /// Parses a document-style date such as `August 2015` (day defaults to 15,
    /// the mid-month convention the extraction pipeline uses for
    /// month-resolution dates).
    pub fn parse_document_style(s: &str) -> Result<Self, ModelError> {
        let mut it = s.split_whitespace();
        let bad = || ModelError::DateParse(s.to_string());
        let month_name = it.next().ok_or_else(bad)?;
        let year: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month = MONTH_NAMES
            .iter()
            .position(|m| m.eq_ignore_ascii_case(month_name))
            .ok_or_else(bad)? as u8
            + 1;
        Date::new(year, month, 15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_epoch() {
        let d = Date::new(1970, 1, 1).unwrap();
        assert_eq!(d.days_since_epoch(), 0);
        assert_eq!(Date::from_days_since_epoch(0), d);
    }

    #[test]
    fn known_offsets() {
        assert_eq!(Date::new(1970, 1, 2).unwrap().days_since_epoch(), 1);
        assert_eq!(Date::new(1969, 12, 31).unwrap().days_since_epoch(), -1);
        assert_eq!(Date::new(2000, 3, 1).unwrap().days_since_epoch(), 11_017);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(2013));
        assert!(Date::new(2012, 2, 29).is_ok());
        assert!(Date::new(2013, 2, 29).is_err());
    }

    #[test]
    fn rejects_invalid() {
        assert!(Date::new(2020, 0, 1).is_err());
        assert!(Date::new(2020, 13, 1).is_err());
        assert!(Date::new(2020, 4, 31).is_err());
        assert!(Date::new(2020, 1, 0).is_err());
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(2010, 5, 20).unwrap();
        let b = Date::new(2010, 6, 1).unwrap();
        let c = Date::new(2011, 1, 1).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn subtraction_gives_day_difference() {
        let a = Date::new(2013, 1, 1).unwrap();
        let b = Date::new(2013, 12, 31).unwrap();
        assert_eq!(b - a, 364);
    }

    #[test]
    fn add_months_clamps_day() {
        let d = Date::new(2013, 1, 31).unwrap();
        let e = d.add_months(1);
        assert_eq!((e.year(), e.month(), e.day()), (2013, 2, 28));
        let f = d.add_months(13);
        assert_eq!((f.year(), f.month(), f.day()), (2014, 2, 28));
        let g = d.add_months(-2);
        assert_eq!((g.year(), g.month(), g.day()), (2012, 11, 30));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let d = Date::new(2022, 7, 4).unwrap();
        assert_eq!(d.to_string(), "2022-07-04");
        assert_eq!("2022-07-04".parse::<Date>().unwrap(), d);
        assert!("2022-07".parse::<Date>().is_err());
        assert!("garbage".parse::<Date>().is_err());
    }

    #[test]
    fn document_style_roundtrip() {
        let d = Date::new(2015, 8, 15).unwrap();
        assert_eq!(d.to_document_style(), "August 2015");
        assert_eq!(Date::parse_document_style("August 2015").unwrap(), d);
        assert_eq!(Date::parse_document_style("august 2015").unwrap(), d);
        assert!(Date::parse_document_style("Augternary 2015").is_err());
    }

    #[test]
    fn years_since_is_fractional() {
        let a = Date::new(2010, 1, 1).unwrap();
        let b = Date::new(2011, 1, 1).unwrap();
        let y = b.years_since(a);
        assert!((y - 1.0).abs() < 0.01, "{y}");
    }
}
