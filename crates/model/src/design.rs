//! Microprocessor designs and the errata documents that describe them.
//!
//! This mirrors Table III of the paper: 16 Intel Core errata documents
//! (generations 1-12, with separate Desktop/Mobile documents up to
//! generation 5) and 12 AMD documents (one per family / model range).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::date::Date;
use crate::error::ModelError;

/// A microprocessor vendor.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Vendor {
    /// Intel Corporation (Core series).
    #[default]
    Intel,
    /// Advanced Micro Devices.
    Amd,
}

impl Vendor {
    /// Both vendors, in document order.
    pub const ALL: [Vendor; 2] = [Vendor::Intel, Vendor::Amd];
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Vendor::Intel => "Intel",
            Vendor::Amd => "AMD",
        })
    }
}

/// Market segment of an Intel errata document.
///
/// Intel published separate Mobile and Desktop documents until generation 5
/// and a single document per generation afterwards; AMD documents are always
/// [`Segment::Unified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Desktop parts.
    Desktop,
    /// Mobile parts.
    Mobile,
    /// A single document covering all parts.
    Unified,
}

/// One of the 28 designs whose errata document the study examined (Table III).
///
/// Every variant corresponds to exactly one errata document. The declaration
/// order — Intel documents first, in generation order, then AMD documents in
/// family order — is the canonical axis order used by the heredity matrix
/// (Figure 3) and all per-design analyses.
///
/// # Examples
///
/// ```
/// use rememberr_model::{Design, Vendor};
///
/// let d = Design::Intel6;
/// assert_eq!(d.vendor(), Vendor::Intel);
/// assert_eq!(d.reference(), "332689-028US");
/// assert_eq!(d.label(), "Core 6");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are systematic; see type-level docs
pub enum Design {
    Intel1D,
    Intel1M,
    Intel2D,
    Intel2M,
    Intel3D,
    Intel3M,
    Intel4D,
    Intel4M,
    Intel5D,
    Intel5M,
    Intel6,
    Intel7_8,
    Intel8_9,
    Intel10,
    Intel11,
    Intel12,
    Amd10h,
    Amd11h,
    Amd12h,
    Amd14h,
    Amd15h00,
    Amd15h10,
    Amd15h30,
    Amd15h70,
    Amd16h,
    Amd17h00,
    Amd17h30,
    Amd19h,
}

/// Static description of a design, backing the accessor methods.
struct DesignInfo {
    design: Design,
    vendor: Vendor,
    segment: Segment,
    /// Intel: lowest and highest Core generation covered by the document.
    /// AMD: the family number twice.
    span: (u8, u8),
    /// AMD model range (lo, hi); `(0, 0xFF)` for Intel.
    models: (u8, u8),
    reference: &'static str,
    label: &'static str,
    /// Approximate commercial release date of the design.
    release: Date,
}

const fn d(y: i32, m: u8, day: u8) -> Date {
    Date::from_ymd_unchecked(y, m, day)
}

/// Table III, plus approximate release dates for the timeline model.
const DESIGN_INFOS: [DesignInfo; 28] = [
    DesignInfo {
        design: Design::Intel1D,
        vendor: Vendor::Intel,
        segment: Segment::Desktop,
        span: (1, 1),
        models: (0, 0xFF),
        reference: "320836-037US",
        label: "Core 1 (D)",
        release: d(2008, 11, 17),
    },
    DesignInfo {
        design: Design::Intel1M,
        vendor: Vendor::Intel,
        segment: Segment::Mobile,
        span: (1, 1),
        models: (0, 0xFF),
        reference: "322814-024US",
        label: "Core 1 (M)",
        release: d(2009, 9, 8),
    },
    DesignInfo {
        design: Design::Intel2D,
        vendor: Vendor::Intel,
        segment: Segment::Desktop,
        span: (2, 2),
        models: (0, 0xFF),
        reference: "324643-037US",
        label: "Core 2 (D)",
        release: d(2011, 1, 9),
    },
    DesignInfo {
        design: Design::Intel2M,
        vendor: Vendor::Intel,
        segment: Segment::Mobile,
        span: (2, 2),
        models: (0, 0xFF),
        reference: "324827-034US",
        label: "Core 2 (M)",
        release: d(2011, 2, 20),
    },
    DesignInfo {
        design: Design::Intel3D,
        vendor: Vendor::Intel,
        segment: Segment::Desktop,
        span: (3, 3),
        models: (0, 0xFF),
        reference: "326766-022US",
        label: "Core 3 (D)",
        release: d(2012, 4, 29),
    },
    DesignInfo {
        design: Design::Intel3M,
        vendor: Vendor::Intel,
        segment: Segment::Mobile,
        span: (3, 3),
        models: (0, 0xFF),
        reference: "326770-022US",
        label: "Core 3 (M)",
        release: d(2012, 6, 3),
    },
    DesignInfo {
        design: Design::Intel4D,
        vendor: Vendor::Intel,
        segment: Segment::Desktop,
        span: (4, 4),
        models: (0, 0xFF),
        reference: "328899-039US",
        label: "Core 4 (D)",
        release: d(2013, 6, 2),
    },
    DesignInfo {
        design: Design::Intel4M,
        vendor: Vendor::Intel,
        segment: Segment::Mobile,
        span: (4, 4),
        models: (0, 0xFF),
        reference: "328903-038US",
        label: "Core 4 (M)",
        release: d(2013, 6, 2),
    },
    DesignInfo {
        design: Design::Intel5D,
        vendor: Vendor::Intel,
        segment: Segment::Desktop,
        span: (5, 5),
        models: (0, 0xFF),
        reference: "332381-023US",
        label: "Core 5 (D)",
        release: d(2015, 6, 1),
    },
    DesignInfo {
        design: Design::Intel5M,
        vendor: Vendor::Intel,
        segment: Segment::Mobile,
        span: (5, 5),
        models: (0, 0xFF),
        reference: "330836-031US",
        label: "Core 5 (M)",
        release: d(2015, 1, 5),
    },
    DesignInfo {
        design: Design::Intel6,
        vendor: Vendor::Intel,
        segment: Segment::Unified,
        span: (6, 6),
        models: (0, 0xFF),
        reference: "332689-028US",
        label: "Core 6",
        release: d(2015, 8, 5),
    },
    DesignInfo {
        design: Design::Intel7_8,
        vendor: Vendor::Intel,
        segment: Segment::Unified,
        span: (7, 8),
        models: (0, 0xFF),
        reference: "334663-013US",
        label: "Core 7/8",
        release: d(2017, 1, 3),
    },
    DesignInfo {
        design: Design::Intel8_9,
        vendor: Vendor::Intel,
        segment: Segment::Unified,
        span: (8, 9),
        models: (0, 0xFF),
        reference: "337346-002US",
        label: "Core 8/9",
        release: d(2018, 10, 8),
    },
    DesignInfo {
        design: Design::Intel10,
        vendor: Vendor::Intel,
        segment: Segment::Unified,
        span: (10, 10),
        models: (0, 0xFF),
        reference: "615213-010US",
        label: "Core 10",
        release: d(2019, 9, 1),
    },
    DesignInfo {
        design: Design::Intel11,
        vendor: Vendor::Intel,
        segment: Segment::Unified,
        span: (11, 11),
        models: (0, 0xFF),
        reference: "634808-008US",
        label: "Core 11",
        release: d(2020, 9, 17),
    },
    DesignInfo {
        design: Design::Intel12,
        vendor: Vendor::Intel,
        segment: Segment::Unified,
        span: (12, 12),
        models: (0, 0xFF),
        reference: "682436-004US",
        label: "Core 12",
        release: d(2021, 11, 4),
    },
    DesignInfo {
        design: Design::Amd10h,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x10, 0x10),
        models: (0x00, 0x0F),
        reference: "41322-3.84",
        label: "Fam. 10h 00-0F",
        release: d(2007, 11, 19),
    },
    DesignInfo {
        design: Design::Amd11h,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x11, 0x11),
        models: (0x00, 0x0F),
        reference: "41788-3.00",
        label: "Fam. 11h 00-0F",
        release: d(2008, 6, 4),
    },
    DesignInfo {
        design: Design::Amd12h,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x12, 0x12),
        models: (0x00, 0x0F),
        reference: "44739-3.10",
        label: "Fam. 12h 00-0F",
        release: d(2011, 6, 14),
    },
    DesignInfo {
        design: Design::Amd14h,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x14, 0x14),
        models: (0x00, 0x0F),
        reference: "47534-3.18",
        label: "Fam. 14h 00-0F",
        release: d(2011, 1, 4),
    },
    DesignInfo {
        design: Design::Amd15h00,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x15, 0x15),
        models: (0x00, 0x0F),
        reference: "48063-3.24",
        label: "Fam. 15h 00-0F",
        release: d(2011, 10, 12),
    },
    DesignInfo {
        design: Design::Amd15h10,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x15, 0x15),
        models: (0x10, 0x1F),
        reference: "48931-3.08",
        label: "Fam. 15h 10-1F",
        release: d(2012, 10, 2),
    },
    DesignInfo {
        design: Design::Amd15h30,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x15, 0x15),
        models: (0x30, 0x3F),
        reference: "51603-1.06",
        label: "Fam. 15h 30-3F",
        release: d(2014, 1, 14),
    },
    DesignInfo {
        design: Design::Amd15h70,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x15, 0x15),
        models: (0x70, 0x7F),
        reference: "55370-3.00",
        label: "Fam. 15h 70-7F",
        release: d(2016, 6, 1),
    },
    DesignInfo {
        design: Design::Amd16h,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x16, 0x16),
        models: (0x00, 0x0F),
        reference: "51810-3.06",
        label: "Fam. 16h 00-0F",
        release: d(2013, 5, 23),
    },
    DesignInfo {
        design: Design::Amd17h00,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x17, 0x17),
        models: (0x00, 0x0F),
        reference: "55449-1.12",
        label: "Fam. 17h 00-0F",
        release: d(2017, 3, 2),
    },
    DesignInfo {
        design: Design::Amd17h30,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x17, 0x17),
        models: (0x30, 0x3F),
        reference: "56323-0.78",
        label: "Fam. 17h 30-3F",
        release: d(2019, 8, 7),
    },
    DesignInfo {
        design: Design::Amd19h,
        vendor: Vendor::Amd,
        segment: Segment::Unified,
        span: (0x19, 0x19),
        models: (0x00, 0x0F),
        reference: "56683-1.04",
        label: "Fam. 19h 00-0F",
        release: d(2020, 11, 5),
    },
];

impl Design {
    /// All 28 designs in canonical (Table III) order.
    pub const ALL: [Design; 28] = [
        Design::Intel1D,
        Design::Intel1M,
        Design::Intel2D,
        Design::Intel2M,
        Design::Intel3D,
        Design::Intel3M,
        Design::Intel4D,
        Design::Intel4M,
        Design::Intel5D,
        Design::Intel5M,
        Design::Intel6,
        Design::Intel7_8,
        Design::Intel8_9,
        Design::Intel10,
        Design::Intel11,
        Design::Intel12,
        Design::Amd10h,
        Design::Amd11h,
        Design::Amd12h,
        Design::Amd14h,
        Design::Amd15h00,
        Design::Amd15h10,
        Design::Amd15h30,
        Design::Amd15h70,
        Design::Amd16h,
        Design::Amd17h00,
        Design::Amd17h30,
        Design::Amd19h,
    ];

    /// The 16 Intel designs, in generation order.
    pub fn intel() -> impl Iterator<Item = Design> {
        Design::ALL
            .iter()
            .copied()
            .filter(|d| d.vendor() == Vendor::Intel)
    }

    /// The 12 AMD designs, in family order.
    pub fn amd() -> impl Iterator<Item = Design> {
        Design::ALL
            .iter()
            .copied()
            .filter(|d| d.vendor() == Vendor::Amd)
    }

    fn info(&self) -> &'static DesignInfo {
        let info = &DESIGN_INFOS[self.index()];
        debug_assert_eq!(info.design, *self);
        info
    }

    /// Position of this design on the canonical axis (0..28).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Vendor of the design.
    pub fn vendor(&self) -> Vendor {
        self.info().vendor
    }

    /// Market segment of the errata document.
    pub fn segment(&self) -> Segment {
        self.info().segment
    }

    /// Vendor document reference, e.g. `332689-028US` or `56683-1.04`.
    pub fn reference(&self) -> &'static str {
        self.info().reference
    }

    /// Short human-readable label, e.g. `Core 6` or `Fam. 15h 30-3F`.
    pub fn label(&self) -> &'static str {
        self.info().label
    }

    /// Approximate commercial release date of the design.
    pub fn release_date(&self) -> Date {
        self.info().release
    }

    /// Inclusive range of Intel Core generations covered by this document
    /// (`None` for AMD designs). `Intel7_8` covers `(7, 8)`.
    pub fn intel_generation_span(&self) -> Option<(u8, u8)> {
        match self.vendor() {
            Vendor::Intel => Some(self.info().span),
            Vendor::Amd => None,
        }
    }

    /// AMD family number (`None` for Intel designs).
    pub fn amd_family(&self) -> Option<u8> {
        match self.vendor() {
            Vendor::Amd => Some(self.info().span.0),
            Vendor::Intel => None,
        }
    }

    /// AMD model range covered by the document (`None` for Intel designs).
    pub fn amd_model_range(&self) -> Option<(u8, u8)> {
        match self.vendor() {
            Vendor::Amd => Some(self.info().models),
            Vendor::Intel => None,
        }
    }

    /// True if this document covers the given Intel Core generation.
    pub fn covers_intel_generation(&self, generation: u8) -> bool {
        self.intel_generation_span()
            .is_some_and(|(lo, hi)| (lo..=hi).contains(&generation))
    }

    /// Steppings of the design, in production order. The last stepping is
    /// the one fixes land in ("Summary Table of Changes" rows).
    pub fn steppings(&self) -> &'static [&'static str] {
        match self.vendor() {
            Vendor::Intel => &["A0", "B0", "C0", "D0"],
            Vendor::Amd => &["A0", "B1", "B2"],
        }
    }

    /// Erratum identifier prefix used by this document's numbering scheme.
    ///
    /// Intel errata carry per-document alphabetic prefixes (e.g. `ADL` for
    /// Alder Lake); AMD errata are plain numbers, so the prefix is empty.
    pub fn erratum_prefix(&self) -> &'static str {
        match self {
            Design::Intel1D => "AAJ",
            Design::Intel1M => "AAT",
            Design::Intel2D => "BJ",
            Design::Intel2M => "BK",
            Design::Intel3D => "BV",
            Design::Intel3M => "BU",
            Design::Intel4D => "HSD",
            Design::Intel4M => "HSM",
            Design::Intel5D => "BDD",
            Design::Intel5M => "BDM",
            Design::Intel6 => "SKL",
            Design::Intel7_8 => "KBL",
            Design::Intel8_9 => "CFL",
            Design::Intel10 => "CML",
            Design::Intel11 => "RKL",
            Design::Intel12 => "ADL",
            _ => "",
        }
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Design {
    type Err = ModelError;

    /// Parses either a label (`Core 6`) or a document reference
    /// (`332689-028US`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Design::ALL
            .iter()
            .copied()
            .find(|design| design.label() == s || design.reference() == s)
            .ok_or_else(|| ModelError::UnknownDesign(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_eight_designs_sixteen_intel_twelve_amd() {
        assert_eq!(Design::ALL.len(), 28);
        assert_eq!(Design::intel().count(), 16);
        assert_eq!(Design::amd().count(), 12);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, design) in Design::ALL.iter().enumerate() {
            assert_eq!(design.index(), i);
        }
    }

    #[test]
    fn references_are_unique() {
        let mut refs: Vec<&str> = Design::ALL.iter().map(|d| d.reference()).collect();
        refs.sort_unstable();
        refs.dedup();
        assert_eq!(refs.len(), 28);
    }

    #[test]
    fn segments_match_publication_policy() {
        // Separate Desktop/Mobile documents until generation 5, unified after.
        for design in Design::intel() {
            let (lo, _) = design.intel_generation_span().unwrap();
            if lo <= 5 {
                assert_ne!(design.segment(), Segment::Unified, "{design}");
            } else {
                assert_eq!(design.segment(), Segment::Unified, "{design}");
            }
        }
        for design in Design::amd() {
            assert_eq!(design.segment(), Segment::Unified);
        }
    }

    #[test]
    fn generation_span_covers() {
        assert!(Design::Intel7_8.covers_intel_generation(7));
        assert!(Design::Intel7_8.covers_intel_generation(8));
        assert!(!Design::Intel7_8.covers_intel_generation(9));
        assert!(!Design::Amd19h.covers_intel_generation(19));
    }

    #[test]
    fn amd_metadata() {
        assert_eq!(Design::Amd15h30.amd_family(), Some(0x15));
        assert_eq!(Design::Amd15h30.amd_model_range(), Some((0x30, 0x3F)));
        assert_eq!(Design::Intel6.amd_family(), None);
    }

    #[test]
    fn release_dates_are_nondecreasing_within_intel_unified_era() {
        let unified: Vec<Design> = Design::intel()
            .filter(|d| d.segment() == Segment::Unified)
            .collect();
        for pair in unified.windows(2) {
            assert!(pair[0].release_date() < pair[1].release_date());
        }
    }

    #[test]
    fn parse_by_label_and_reference() {
        assert_eq!("Core 6".parse::<Design>().unwrap(), Design::Intel6);
        assert_eq!("56683-1.04".parse::<Design>().unwrap(), Design::Amd19h);
        assert!("Core 99".parse::<Design>().is_err());
    }

    #[test]
    fn intel_prefixes_unique_and_nonempty() {
        let mut prefixes: Vec<&str> = Design::intel().map(|d| d.erratum_prefix()).collect();
        assert!(prefixes.iter().all(|p| !p.is_empty()));
        prefixes.sort_unstable();
        prefixes.dedup();
        assert_eq!(prefixes.len(), 16);
        assert!(Design::amd().all(|d| d.erratum_prefix().is_empty()));
    }

    #[test]
    fn steppings_are_nonempty_and_unique() {
        for design in Design::ALL {
            let steppings = design.steppings();
            assert!(!steppings.is_empty());
            let mut sorted = steppings.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), steppings.len());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Design::Intel8_9).unwrap();
        let back: Design = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Design::Intel8_9);
    }
}
