//! Identifier newtypes shared across the pipeline.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Unique identifier of a *bug*, shared by all identical errata across
/// documents (the "keying mechanism" of Section IV-A).
///
/// Two errata with the same `UniqueKey` describe the same underlying design
/// flaw; deduplicated ("unique errata") analyses work per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UniqueKey(pub u32);

impl UniqueKey {
    /// Numeric value of the key.
    pub fn value(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for UniqueKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{:05}", self.0)
    }
}

impl From<u32> for UniqueKey {
    fn from(v: u32) -> Self {
        UniqueKey(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_zero_padded() {
        assert_eq!(UniqueKey(42).to_string(), "K00042");
        assert_eq!(UniqueKey(123_456).to_string(), "K123456");
    }

    #[test]
    fn conversions() {
        let k: UniqueKey = 7u32.into();
        assert_eq!(k.value(), 7);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(UniqueKey(2) < UniqueKey(10));
    }
}
