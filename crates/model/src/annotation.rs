//! Per-erratum annotations: triggers, contexts, effects on all three levels.

use serde::{Deserialize, Serialize};

use crate::catset::{ContextSet, EffectSet, TriggerSet};
use crate::msr::MsrRef;
use crate::taxonomy::{ContextClass, EffectClass, TriggerClass};

/// The RemembERR annotation of one erratum.
///
/// Abstract-level categories are stored in the three bitsets; the concrete
/// level keeps the text snippets the categories were derived from. The
/// *class* level is derived on demand ([`Annotation::trigger_classes`]).
///
/// Semantics (the paper's key observation): `triggers` are **conjunctive** —
/// all must be applied — while `contexts` and `effects` are **disjunctive** —
/// any one suffices.
///
/// # Examples
///
/// ```
/// use rememberr_model::{Annotation, Trigger, Context, Effect};
///
/// let ann = Annotation::builder()
///     .trigger(Trigger::FloatingPoint, "Execution of FSAVE or FNSAVE")
///     .context(Context::RealMode, "operating in real-address mode")
///     .effect(Effect::Unpredictable, "incorrect value for the x87 FDP")
///     .build();
/// assert_eq!(ann.triggers.len(), 1);
/// assert_eq!(ann.complexity(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Annotation {
    /// Necessary (conjunctive) abstract triggers.
    pub triggers: TriggerSet,
    /// Applicable (disjunctive) abstract contexts.
    pub contexts: ContextSet,
    /// Observable (disjunctive) abstract effects.
    pub effects: EffectSet,
    /// Concrete-level trigger descriptions, parallel to `triggers` members.
    pub concrete_triggers: Vec<String>,
    /// Concrete-level context descriptions.
    pub concrete_contexts: Vec<String>,
    /// Concrete-level effect descriptions.
    pub concrete_effects: Vec<String>,
    /// MSRs in which the bug's effects are observable (Figure 19).
    pub msrs: Vec<MsrRef>,
    /// True if the erratum only says a "complex set of conditions" is
    /// required (8.7% of Intel, 20.8% of AMD unique errata) — such triggers
    /// are ignored by the trigger-count analyses as too imprecise.
    pub complex_conditions: bool,
}

impl Annotation {
    /// An empty annotation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building an annotation.
    pub fn builder() -> AnnotationBuilder {
        AnnotationBuilder::new()
    }

    /// Bug-complexity estimate: the number of necessary triggers.
    ///
    /// The paper uses "the more necessary conditions are involved, the more
    /// complex the bug is to trigger" (Section V-A2); Figure 11 is the
    /// histogram of this quantity.
    pub fn complexity(&self) -> usize {
        self.triggers.len()
    }

    /// True if no clear trigger was identified (14.4% of errata are excluded
    /// from Figure 11 on this basis).
    pub fn has_no_clear_trigger(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Trigger classes represented in this annotation, in table order.
    pub fn trigger_classes(&self) -> Vec<TriggerClass> {
        let mut classes: Vec<TriggerClass> = self.triggers.iter().map(|t| t.class()).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// Context classes represented in this annotation, in table order.
    pub fn context_classes(&self) -> Vec<ContextClass> {
        let mut classes: Vec<ContextClass> = self.contexts.iter().map(|c| c.class()).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// Effect classes represented in this annotation, in table order.
    pub fn effect_classes(&self) -> Vec<EffectClass> {
        let mut classes: Vec<EffectClass> = self.effects.iter().map(|e| e.class()).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// True under the paper's detectability model: the bug is detectable by
    /// a campaign that applies **all** of `applied_triggers` while in **any**
    /// annotated context, watching `watched_effects`.
    pub fn detectable_by(
        &self,
        applied_triggers: &TriggerSet,
        watched_effects: &EffectSet,
    ) -> bool {
        self.triggers.satisfied_by_all(applied_triggers)
            && self.effects.satisfied_by_any(watched_effects)
    }
}

/// Builder for [`Annotation`] keeping abstract categories and their concrete
/// snippets in sync.
#[derive(Debug, Clone, Default)]
pub struct AnnotationBuilder {
    annotation: Annotation,
}

impl AnnotationBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trigger with its concrete-level snippet.
    pub fn trigger(mut self, trigger: crate::taxonomy::Trigger, concrete: &str) -> Self {
        self.annotation.triggers.insert(trigger);
        self.annotation.concrete_triggers.push(concrete.to_string());
        self
    }

    /// Adds a context with its concrete-level snippet.
    pub fn context(mut self, context: crate::taxonomy::Context, concrete: &str) -> Self {
        self.annotation.contexts.insert(context);
        self.annotation.concrete_contexts.push(concrete.to_string());
        self
    }

    /// Adds an effect with its concrete-level snippet.
    pub fn effect(mut self, effect: crate::taxonomy::Effect, concrete: &str) -> Self {
        self.annotation.effects.insert(effect);
        self.annotation.concrete_effects.push(concrete.to_string());
        self
    }

    /// Records an MSR in which the effect is observable.
    pub fn msr(mut self, msr: MsrRef) -> Self {
        self.annotation.msrs.push(msr);
        self
    }

    /// Marks the erratum as only specifying a "complex set of conditions".
    pub fn complex_conditions(mut self) -> Self {
        self.annotation.complex_conditions = true;
        self
    }

    /// Finishes building.
    pub fn build(self) -> Annotation {
        self.annotation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::MsrName;
    use crate::taxonomy::{Context, Effect, Trigger};

    fn fdp_annotation() -> Annotation {
        // Table VII: the paper's machine-readable rendering of erratum ADL001.
        Annotation::builder()
            .trigger(
                Trigger::FloatingPoint,
                "Execution of FSAVE, FNSAVE, FSTENV, or FNSTENV",
            )
            .context(
                Context::RealMode,
                "Operating in real-address mode or virtual-8086 mode",
            )
            .effect(Effect::Unpredictable, "Incorrect value for the x87 FDP")
            .build()
    }

    #[test]
    fn builder_keeps_levels_in_sync() {
        let ann = fdp_annotation();
        assert_eq!(ann.triggers.len(), ann.concrete_triggers.len());
        assert_eq!(ann.contexts.len(), ann.concrete_contexts.len());
        assert_eq!(ann.effects.len(), ann.concrete_effects.len());
    }

    #[test]
    fn complexity_counts_triggers() {
        let ann = Annotation::builder()
            .trigger(Trigger::Reset, "warm reset")
            .trigger(Trigger::Pcie, "ongoing PCIe traffic")
            .build();
        assert_eq!(ann.complexity(), 2);
        assert!(!ann.has_no_clear_trigger());
        assert!(Annotation::new().has_no_clear_trigger());
    }

    #[test]
    fn class_level_is_derived() {
        let ann = Annotation::builder()
            .trigger(Trigger::Reset, "a")
            .trigger(Trigger::Pcie, "b")
            .trigger(Trigger::Debug, "c")
            .build();
        assert_eq!(
            ann.trigger_classes(),
            vec![TriggerClass::Ext, TriggerClass::Fea]
        );
    }

    #[test]
    fn detectability_model() {
        let ann = Annotation::builder()
            .trigger(Trigger::Reset, "reset")
            .trigger(Trigger::Pcie, "PCIe")
            .effect(Effect::Hang, "hang")
            .effect(Effect::MsrValue, "bad MSR")
            .build();
        let all_triggers: TriggerSet = [Trigger::Reset, Trigger::Pcie].into_iter().collect();
        let partial: TriggerSet = [Trigger::Reset].into_iter().collect();
        let watch_msrs: EffectSet = [Effect::MsrValue].into_iter().collect();
        let watch_usb: EffectSet = [Effect::Usb].into_iter().collect();

        assert!(ann.detectable_by(&all_triggers, &watch_msrs));
        // Triggers are conjunctive: a missing trigger means no detection.
        assert!(!ann.detectable_by(&partial, &watch_msrs));
        // Effects are disjunctive: watching the wrong place means no detection.
        assert!(!ann.detectable_by(&all_triggers, &watch_usb));
    }

    #[test]
    fn msrs_and_complex_flag() {
        let ann = Annotation::builder()
            .effect(Effect::MsrValue, "wrong MC status")
            .msr(MsrRef::canonical(MsrName::McStatus))
            .complex_conditions()
            .build();
        assert_eq!(ann.msrs.len(), 1);
        assert!(ann.complex_conditions);
    }

    #[test]
    fn serde_roundtrip() {
        let ann = fdp_annotation();
        let json = serde_json::to_string(&ann).unwrap();
        let back: Annotation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ann);
    }
}
