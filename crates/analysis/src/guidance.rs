//! Section VI: applications to design testing.
//!
//! The key observation that triggers are conjunctive while contexts and
//! observations are disjunctive turns the annotated database into an
//! executable test-campaign model: a campaign step *applies* a set of
//! stimuli (must cover all of a bug's triggers), *runs* in a set of
//! contexts (one applicable context suffices) and *watches* a set of
//! observation points (one observable effect suffices).

use rememberr::Database;
use rememberr_model::{Context, ContextSet, Effect, EffectSet, MsrName, Trigger, TriggerSet};

use crate::chart::BarChart;

/// One planned campaign step.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStep {
    /// Stimuli to apply together (conjunctive coverage).
    pub triggers: TriggerSet,
    /// Execution contexts to run the step in.
    pub contexts: ContextSet,
    /// Effects to watch (observation points).
    pub watch: EffectSet,
    /// MSRs worth polling during the step.
    pub msrs: Vec<MsrName>,
    /// Known bugs this step would detect that earlier steps missed.
    pub newly_detected: usize,
}

/// A greedy campaign plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Steps in execution order.
    pub steps: Vec<CampaignStep>,
    /// Known bugs detected by the full plan.
    pub covered: usize,
    /// Known bugs considered (unique, with at least one effect).
    pub total: usize,
}

impl CampaignPlan {
    /// Fraction of known bugs the plan covers.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }

    /// Renders the plan as text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "== Test campaign plan ({} steps, {}/{} known bugs, {:.1}%) ==\n",
            self.steps.len(),
            self.covered,
            self.total,
            100.0 * self.coverage()
        );
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "step {:>2}: apply {}  in {}  watch {}  (+{} bugs)\n",
                i + 1,
                step.triggers,
                if step.contexts.is_empty() {
                    "any context".to_string()
                } else {
                    step.contexts.to_string()
                },
                step.watch,
                step.newly_detected
            ));
            if !step.msrs.is_empty() {
                let names: Vec<&str> = step.msrs.iter().map(|m| m.text()).collect();
                out.push_str(&format!("         poll MSRs: {}\n", names.join(", ")));
            }
        }
        out
    }
}

/// A bug's detectability-relevant view.
struct BugView {
    triggers: TriggerSet,
    contexts: ContextSet,
    effects: EffectSet,
    msrs: Vec<MsrName>,
}

fn bug_views(db: &Database) -> Vec<BugView> {
    db.unique_entries()
        .into_iter()
        .filter_map(|e| {
            let ann = e.annotation.as_ref()?;
            if ann.effects.is_empty() {
                return None;
            }
            Some(BugView {
                triggers: ann.triggers,
                contexts: ann.contexts,
                effects: ann.effects,
                msrs: ann.msrs.iter().map(|r| r.name).collect(),
            })
        })
        .collect()
}

fn detectable(
    bug: &BugView,
    step_triggers: &TriggerSet,
    contexts: &ContextSet,
    watch: &EffectSet,
) -> bool {
    bug.triggers.satisfied_by_all(step_triggers)
        && bug.contexts.satisfied_by_any(contexts)
        && bug.effects.satisfied_by_any(watch)
}

/// Plans a greedy campaign: each step grows a trigger combination that
/// maximizes newly detectable bugs, then picks the most informative
/// contexts, observation points and MSRs for those bugs.
///
/// `triggers_per_step` bounds the stimuli applied together;
/// `effects_watched` bounds the observation footprint (the paper's
/// observation-space challenge: watching everything is too expensive).
pub fn plan_campaign(
    db: &Database,
    steps: usize,
    triggers_per_step: usize,
    effects_watched: usize,
) -> CampaignPlan {
    let bugs = bug_views(db);
    let total = bugs.len();
    let mut undetected: Vec<bool> = vec![true; bugs.len()];
    let mut plan_steps = Vec::new();

    for _ in 0..steps {
        // Grow the trigger set greedily against remaining bugs, assuming a
        // full watch/context budget during selection.
        let mut step_triggers = TriggerSet::new();
        let full_watch = EffectSet::full();
        let full_ctx = ContextSet::full();
        for _ in 0..triggers_per_step {
            let mut best: Option<(Trigger, usize)> = None;
            for &candidate in Trigger::ALL {
                if step_triggers.contains(candidate) {
                    continue;
                }
                let mut grown = step_triggers;
                grown.insert(candidate);
                let gain = bugs
                    .iter()
                    .zip(&undetected)
                    .filter(|(b, u)| **u && detectable(b, &grown, &full_ctx, &full_watch))
                    .count();
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((candidate, gain));
                }
            }
            if let Some((t, _)) = best {
                step_triggers.insert(t);
            }
        }

        // Bugs this trigger set can reach (before observation budget).
        let reachable: Vec<usize> = bugs
            .iter()
            .enumerate()
            .filter(|(i, b)| undetected[*i] && b.triggers.satisfied_by_all(&step_triggers))
            .map(|(i, _)| i)
            .collect();

        // Contexts: every context any reachable bug requires (cheap to
        // enumerate; running a step in a few extra modes is inexpensive).
        let mut contexts = ContextSet::new();
        for &i in &reachable {
            contexts = contexts.union(&bugs[i].contexts);
        }
        let _ = Context::ALL; // contexts kept as the exact union

        // Observation points: greedy top effects over reachable bugs.
        let mut watch = EffectSet::new();
        for _ in 0..effects_watched {
            let mut best: Option<(Effect, usize)> = None;
            for &candidate in Effect::ALL {
                if watch.contains(candidate) {
                    continue;
                }
                let mut grown = watch;
                grown.insert(candidate);
                let gain = reachable
                    .iter()
                    .filter(|&&i| detectable(&bugs[i], &step_triggers, &contexts, &grown))
                    .count();
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((candidate, gain));
                }
            }
            if let Some((e, _)) = best {
                watch.insert(e);
            }
        }

        // MSRs: the most frequent witnesses among newly detected bugs.
        let mut newly = Vec::new();
        for &i in &reachable {
            if detectable(&bugs[i], &step_triggers, &contexts, &watch) {
                newly.push(i);
            }
        }
        let mut msr_counts: Vec<(MsrName, usize)> = Vec::new();
        for &i in &newly {
            for &m in &bugs[i].msrs {
                match msr_counts.iter_mut().find(|(n, _)| *n == m) {
                    Some((_, c)) => *c += 1,
                    None => msr_counts.push((m, 1)),
                }
            }
        }
        msr_counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        msr_counts.truncate(3);

        for &i in &newly {
            undetected[i] = false;
        }
        plan_steps.push(CampaignStep {
            triggers: step_triggers,
            contexts,
            watch,
            msrs: msr_counts.into_iter().map(|(m, _)| m).collect(),
            newly_detected: newly.len(),
        });
    }

    let covered = undetected.iter().filter(|u| !**u).count();
    CampaignPlan {
        steps: plan_steps,
        covered,
        total,
    }
}

/// Ranks observation points for a campaign that applies exactly the given
/// stimuli: how many known bugs each effect would reveal.
pub fn recommend_observation_points(db: &Database, applied: &TriggerSet) -> BarChart {
    let bugs = bug_views(db);
    let mut chart = BarChart::new(format!("Observation points for stimuli {applied}"), " bugs");
    for &effect in Effect::ALL {
        let watch: EffectSet = [effect].into_iter().collect();
        let n = bugs
            .iter()
            .filter(|b| b.triggers.satisfied_by_all(applied) && b.effects.satisfied_by_any(&watch))
            .count();
        if n > 0 {
            chart.push(effect.code(), n as f64);
        }
    }
    chart.sort_desc();
    chart
}

/// Ranks trigger classes by bug involvement: the modules a formal-methods
/// campaign should *not* black-box (the paper's scoping guidance — power
/// management has been "vastly excluded" from verified design parts).
pub fn blackbox_guidance(db: &Database) -> BarChart {
    let bugs = bug_views(db);
    let mut chart = BarChart::new(
        "Design scopes ranked by bug involvement (do not black-box the top)",
        " bugs",
    );
    for class in rememberr_model::TriggerClass::ALL {
        let n = bugs
            .iter()
            .filter(|b| b.triggers.iter().any(|t| t.class() == *class))
            .count();
        chart.push(class.code(), n as f64);
    }
    chart.sort_desc();
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn annotated_db() -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.3));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    }

    #[test]
    fn plan_covers_more_with_more_steps() {
        let db = annotated_db();
        let small = plan_campaign(&db, 2, 3, 3);
        let large = plan_campaign(&db, 8, 3, 3);
        assert!(large.covered >= small.covered);
        assert!(large.coverage() > 0.2, "{}", large.coverage());
        assert_eq!(small.steps.len(), 2);
    }

    #[test]
    fn steps_report_monotone_progress() {
        let db = annotated_db();
        let plan = plan_campaign(&db, 6, 3, 4);
        let sum: usize = plan.steps.iter().map(|s| s.newly_detected).sum();
        assert_eq!(sum, plan.covered);
        // Greedy: the first step detects at least as much as any later one.
        let first = plan.steps[0].newly_detected;
        for step in &plan.steps[1..] {
            assert!(step.newly_detected <= first);
        }
    }

    #[test]
    fn first_step_exploits_hot_triggers() {
        let db = annotated_db();
        let plan = plan_campaign(&db, 1, 3, 4);
        let s = &plan.steps[0];
        // The hottest triggers (MSR configuration, power) should appear.
        assert!(
            s.triggers.contains(Trigger::ConfigRegister)
                || s.triggers.contains(Trigger::Throttling)
                || s.triggers.contains(Trigger::PowerStateChange),
            "{}",
            s.triggers
        );
        assert!(s.newly_detected > 0);
    }

    #[test]
    fn observation_points_are_ranked() {
        let db = annotated_db();
        let applied: TriggerSet = [Trigger::ConfigRegister, Trigger::Throttling]
            .into_iter()
            .collect();
        let chart = recommend_observation_points(&db, &applied);
        assert!(!chart.rows.is_empty());
        for pair in chart.rows.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn blackbox_guidance_ranks_power_and_config_high() {
        let db = annotated_db();
        let chart = blackbox_guidance(&db);
        let top3: Vec<&str> = chart.rows[..3].iter().map(|(l, _)| l.as_str()).collect();
        assert!(
            top3.contains(&"Trg_POW") || top3.contains(&"Trg_CFG"),
            "{top3:?}"
        );
    }

    #[test]
    fn plan_renders() {
        let db = annotated_db();
        let plan = plan_campaign(&db, 2, 2, 2);
        let text = plan.render_text();
        assert!(text.contains("step  1"));
        assert!(text.contains("known bugs"));
    }
}
