//! Figure 19: the MSRs in which observable effects manifest.

use rememberr::{Database, Query};
use rememberr_model::{MsrName, Vendor};

use crate::chart::BarChart;
use crate::util::unique_of;

/// Figure 19 result.
#[derive(Debug, Clone, PartialEq)]
pub struct MsrWitnessAnalysis {
    /// One chart per vendor: % of unique errata witnessed by each MSR.
    pub charts: Vec<(Vendor, BarChart)>,
    /// Fraction of unique errata witnessed by machine-check status
    /// registers (MCx_STATUS / MCx_ADDR), per vendor (paper: 7.1%-8.5%,
    /// Observation O13).
    pub machine_check_witness: Vec<(Vendor, f64)>,
}

/// Figure 19: most frequent MSRs containing observable effects.
pub fn fig19_msr_witnesses(db: &Database, top: usize) -> MsrWitnessAnalysis {
    let mut charts = Vec::new();
    let mut machine_check_witness = Vec::new();
    let index = db.query_index();
    for &vendor in &Vendor::ALL {
        // Per-name counts are a 2×26 facet batch on the shared index; the
        // machine-check disjunction below (MCx_STATUS *or* MCx_ADDR per
        // entry) is not expressible as one `Query`, so it stays a scan of
        // the representative view.
        let uniques = unique_of(db, vendor);
        let total = uniques.len().max(1);
        let vendor_uniques = Query::new().vendor(vendor).unique_only();
        let mut chart = BarChart::new(
            format!("Fig. 19 — MSRs witnessing observable effects ({vendor})"),
            "%",
        );
        for name in MsrName::ALL {
            let n = vendor_uniques.clone().msr(name).count_indexed(index, db);
            if n > 0 {
                chart.push(name.text(), 100.0 * n as f64 / total as f64);
            }
        }
        chart.sort_desc();
        chart.truncate(top);

        let mc = uniques
            .iter()
            .filter(|e| {
                e.annotation_or_empty()
                    .msrs
                    .iter()
                    .any(|r| matches!(r.name, MsrName::McStatus | MsrName::McAddr))
            })
            .count();
        machine_check_witness.push((vendor, mc as f64 / total as f64));
        charts.push((vendor, chart));
    }
    MsrWitnessAnalysis {
        charts,
        machine_check_witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn annotated_db() -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.5));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    }

    #[test]
    fn mc_status_tops_both_vendors() {
        let analysis = fig19_msr_witnesses(&annotated_db(), 5);
        for (vendor, chart) in &analysis.charts {
            assert!(!chart.rows.is_empty(), "{vendor}");
            assert_eq!(chart.rows[0].0, "MCx_STATUS", "{vendor}: {:?}", chart.rows);
        }
    }

    #[test]
    fn machine_check_witness_rate_in_paper_band() {
        let analysis = fig19_msr_witnesses(&annotated_db(), 5);
        for (vendor, rate) in &analysis.machine_check_witness {
            assert!((0.05..0.12).contains(rate), "{vendor}: {rate}");
        }
    }

    #[test]
    fn ibs_registers_only_appear_for_amd() {
        let analysis = fig19_msr_witnesses(&annotated_db(), 26);
        let intel_chart = &analysis.charts[0].1;
        assert!(intel_chart.rows.iter().all(|(l, _)| !l.starts_with("IBS_")));
        let amd_chart = &analysis.charts[1].1;
        assert!(amd_chart.rows.iter().any(|(l, _)| l.starts_with("IBS_")));
    }
}
