//! Small shared helpers for the analyses.

use rememberr::{Database, DbEntry};
use rememberr_model::{Date, UniqueKey, Vendor};

/// A calendar date as a fractional year (x axis of the time figures).
pub fn year_of(date: Date) -> f64 {
    1970.0 + date.days_since_epoch() as f64 / 365.2425
}

/// Builds a cumulative step series from event dates: one `(year, count)`
/// point per event, counts starting at 1.
pub fn cumulative_series(mut dates: Vec<Date>) -> Vec<(f64, f64)> {
    dates.sort_unstable();
    dates
        .into_iter()
        .enumerate()
        .map(|(i, d)| (year_of(d), (i + 1) as f64))
        .collect()
}

/// Unique-bug representatives of a vendor.
pub fn unique_of(db: &Database, vendor: Vendor) -> Vec<&DbEntry> {
    db.unique_entries()
        .into_iter()
        .filter(|e| e.vendor() == vendor)
        .collect()
}

/// Distinct cluster keys listed by a design's document.
pub fn keys_in_document(db: &Database, design: rememberr_model::Design) -> Vec<UniqueKey> {
    let mut keys: Vec<UniqueKey> = db.entries_for(design).filter_map(|e| e.key).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn year_of_epoch_and_midyear() {
        assert!((year_of(Date::new(1970, 1, 1).unwrap()) - 1970.0).abs() < 1e-9);
        let y = year_of(Date::new(2015, 7, 2).unwrap());
        assert!((y - 2015.5).abs() < 0.01, "{y}");
    }

    #[test]
    fn cumulative_series_sorts_and_counts() {
        let series = cumulative_series(vec![
            Date::new(2012, 5, 1).unwrap(),
            Date::new(2010, 1, 1).unwrap(),
            Date::new(2011, 3, 1).unwrap(),
        ]);
        assert_eq!(series.len(), 3);
        assert!(series[0].0 < series[1].0 && series[1].0 < series[2].0);
        assert_eq!(series[2].1, 3.0);
    }
}
