//! RemembERR study analyses.
//!
//! Every figure and table of the paper's evaluation, recomputed from the
//! database, plus the Section VI guidance engine:
//!
//! | paper item | function |
//! |---|---|
//! | Table III / IV-A stats | [`corpus_stats`] |
//! | "errata in errata"      | [`render_defect_report`] |
//! | Figure 2  | [`fig02_disclosure_timeline`] |
//! | Figure 3  | [`fig03_heredity`] |
//! | Figure 4  | [`fig04_shared_set_timeline`] |
//! | Figure 5  | [`fig05_latency`] |
//! | Figure 6  | [`fig06_workarounds`] |
//! | Figure 7  | [`fig07_fixes`] |
//! | Figure 8  | [`fig08_classification_steps`] |
//! | Figure 9  | [`fig09_agreement`] |
//! | Figure 10 | [`fig10_trigger_frequency`] |
//! | Figure 11 | [`fig11_trigger_counts`] |
//! | Figure 12 | [`fig12_trigger_correlation`] |
//! | Figure 13 | [`fig13_class_evolution`] |
//! | Figure 14 | [`fig14_class_share`] |
//! | Figure 15 | [`fig15_external_breakdown`] |
//! | Figure 16 | [`fig16_feature_breakdown`] |
//! | Figure 17 | [`fig17_context_frequency`] |
//! | Figure 18 | [`fig18_effect_frequency`] |
//! | Figure 19 | [`fig19_msr_witnesses`] |
//! | O1-O13    | [`observations`] |
//! | Section IV-B2 "Rediscovery" | [`rediscovery_by_pair`] |
//! | Section VI | [`plan_campaign`], [`recommend_observation_points`], [`blackbox_guidance`] |
//! | extensions | [`dedup_threshold_sweep`], [`observation_budget_sweep`], [`trigger_budget_sweep`], [`export_csvs`] |
//!
//! [`FullReport::build`] computes everything in one pass.
//!
//! # Examples
//!
//! ```
//! use rememberr::Database;
//! use rememberr_analysis::fig11_trigger_counts;
//! use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
//! use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
//!
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
//! let mut db = Database::from_documents(&corpus.structured);
//! classify_database(
//!     &mut db,
//!     &Rules::standard(),
//!     HumanOracle::Simulated(&corpus.truth),
//!     &FourEyesConfig::default(),
//! );
//! let fig11 = fig11_trigger_counts(&db);
//! assert!(fig11.multi_trigger > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assist;
mod categories;
mod chart;
mod corpus_stats;
mod correlation;
mod effort;
mod export;
mod guidance;
mod heredity;
mod msrfig;
mod observations;
mod rediscovery;
mod report;
mod sweeps;
mod timeline;
mod util;
mod workfix;

pub use assist::{assist_highlights, assist_highlights_analyzed, AssistSummary};
pub use categories::{
    class_breakdown, fig10_trigger_frequency, fig11_trigger_counts, fig13_class_evolution,
    fig14_class_share, fig15_external_breakdown, fig16_feature_breakdown, fig17_context_frequency,
    fig18_effect_frequency, TriggerCountAnalysis,
};
pub use chart::{BarChart, MatrixChart, SeriesChart};
pub use corpus_stats::{corpus_stats, render_defect_report, CorpusStats};
pub use correlation::{fig12_trigger_correlation, top_trigger_pairs};
pub use effort::{fig08_classification_steps, fig09_agreement};
pub use export::export_csvs;
pub use guidance::{
    blackbox_guidance, plan_campaign, recommend_observation_points, CampaignPlan, CampaignStep,
};
pub use heredity::{fig03_heredity, HeredityAnalysis};
pub use msrfig::{fig19_msr_witnesses, MsrWitnessAnalysis};
pub use observations::{observations, render_observations, Observation};
pub use rediscovery::{
    rediscovery_by_pair, rediscovery_chart, rediscovery_stats, RediscoveryStats,
};
pub use report::FullReport;
pub use sweeps::{dedup_threshold_sweep, observation_budget_sweep, trigger_budget_sweep};
pub use timeline::{
    fig02_disclosure_timeline, fig04_shared_set_timeline, fig05_latency, LatencyAnalysis,
    SharedSetTimeline, GEN6_TO_10_DOCS,
};
pub use util::{cumulative_series, keys_in_document, unique_of, year_of};
pub use workfix::{fig06_workarounds, fig07_fixes, FixAnalysis, WorkaroundAnalysis};
