//! Figure 12: pairwise cross-correlation between abstract triggers.
//!
//! Cell `(a, b)` counts the unique errata requiring *at least* both
//! triggers `a` and `b` — the empirical basis for combining stimuli in a
//! testing campaign (Observation O8: some triggers correlate strongly,
//! most do not).

use rememberr::Database;
use rememberr_model::Trigger;

use crate::chart::MatrixChart;

/// Figure 12: the 34x34 trigger co-occurrence matrix over unique errata.
pub fn fig12_trigger_correlation(db: &Database) -> MatrixChart {
    let labels: Vec<String> = Trigger::ALL.iter().map(|t| t.code().to_string()).collect();
    let mut matrix = MatrixChart::zeros(
        "Fig. 12 — Pairwise cross-correlation between abstract triggers",
        labels.clone(),
        labels,
    );
    for entry in db.unique_entries() {
        let triggers = entry.annotation_or_empty().triggers;
        let members: Vec<Trigger> = triggers.iter().collect();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                *matrix.get_mut(a.index(), b.index()) += 1.0;
                *matrix.get_mut(b.index(), a.index()) += 1.0;
            }
        }
    }
    matrix
}

/// The strongest off-diagonal pairs of the correlation matrix, as
/// `(trigger, trigger, count)`, deduplicated (each unordered pair once).
pub fn top_trigger_pairs(matrix: &MatrixChart, n: usize) -> Vec<(Trigger, Trigger, f64)> {
    let mut pairs = Vec::new();
    for i in 0..Trigger::ALL.len() {
        for j in (i + 1)..Trigger::ALL.len() {
            let v = matrix.get(i, j);
            if v > 0.0 {
                pairs.push((Trigger::ALL[i], Trigger::ALL[j], v));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    pairs.truncate(n);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn annotated_db() -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.5));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let m = fig12_trigger_correlation(&annotated_db());
        for i in 0..Trigger::ALL.len() {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..Trigger::ALL.len() {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn known_affinities_are_salient() {
        let m = fig12_trigger_correlation(&annotated_db());
        let cell = |a: Trigger, b: Trigger| m.get(a.index(), b.index());
        // Debug x VM transition outranks debug x floating point.
        assert!(
            cell(Trigger::Debug, Trigger::VmTransition)
                > cell(Trigger::Debug, Trigger::FloatingPoint)
        );
        // MSR configuration x throttling is among the hottest pairs.
        let top = top_trigger_pairs(&m, 6);
        assert!(
            top.iter().any(|(a, b, _)| {
                (*a == Trigger::ConfigRegister && *b == Trigger::Throttling)
                    || (*a == Trigger::Throttling && *b == Trigger::ConfigRegister)
            }),
            "top pairs: {top:?}"
        );
    }

    #[test]
    fn top_pairs_are_sorted_and_unique() {
        let m = fig12_trigger_correlation(&annotated_db());
        let top = top_trigger_pairs(&m, 10);
        for pair in top.windows(2) {
            assert!(pair[0].2 >= pair[1].2);
        }
        let mut seen = std::collections::BTreeSet::new();
        for (a, b, _) in &top {
            assert!(seen.insert((a.index().min(b.index()), a.index().max(b.index()))));
        }
    }

    #[test]
    fn most_triggers_do_not_interact() {
        // Observation O8: the matrix is sparse.
        let m = fig12_trigger_correlation(&annotated_db());
        let n = Trigger::ALL.len();
        let nonzero = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j && m.get(i, j) > 0.0)
            .count();
        let density = nonzero as f64 / (n * (n - 1)) as f64;
        assert!(density < 0.8, "density {density}");
    }
}
