//! CSV export of the full report: one file per figure, for external
//! plotting (the original artifact produced matplotlib PDFs; this writes
//! the underlying series instead).

use std::fs;
use std::io;
use std::path::Path;

use crate::report::FullReport;

/// Writes one CSV per figure into `dir` (created if absent) and returns the
/// file names written.
///
/// # Errors
///
/// Returns the first I/O error encountered.
pub fn export_csvs(report: &FullReport, dir: &Path) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut write = |name: &str, contents: String| -> io::Result<()> {
        fs::write(dir.join(name), contents)?;
        written.push(name.to_string());
        Ok(())
    };

    for (vendor, chart) in &report.fig02 {
        write(
            &format!("fig02_timeline_{}.csv", vendor.to_string().to_lowercase()),
            chart.to_csv(),
        )?;
    }
    write("fig03_heredity.csv", report.fig03.matrix.to_csv())?;
    write("fig04_shared_set.csv", report.fig04.chart.to_csv())?;
    write("fig05_latency.csv", report.fig05.chart.to_csv())?;
    for (vendor, chart) in &report.fig06.charts {
        write(
            &format!(
                "fig06_workarounds_{}.csv",
                vendor.to_string().to_lowercase()
            ),
            chart.to_csv(),
        )?;
    }
    write("fig07_fixes.csv", report.fig07.matrix.to_csv())?;
    if let Some(f8) = &report.fig08 {
        write("fig08_steps.csv", f8.to_csv())?;
    }
    if let Some(f9) = &report.fig09 {
        write("fig09_agreement.csv", f9.to_csv())?;
    }
    for (vendor, chart) in &report.fig10 {
        write(
            &format!("fig10_triggers_{}.csv", vendor.to_string().to_lowercase()),
            chart.to_csv(),
        )?;
    }
    write("fig11_trigger_counts.csv", report.fig11.chart.to_csv())?;
    write("fig12_correlation.csv", report.fig12.to_csv())?;
    write("fig13_class_evolution.csv", report.fig13.to_csv())?;
    write("fig14_class_share.csv", report.fig14.to_csv())?;
    write("fig15_ext_breakdown.csv", report.fig15.to_csv())?;
    write("fig16_fea_breakdown.csv", report.fig16.to_csv())?;
    for (vendor, chart) in &report.fig17 {
        write(
            &format!("fig17_contexts_{}.csv", vendor.to_string().to_lowercase()),
            chart.to_csv(),
        )?;
    }
    for (vendor, chart) in &report.fig18 {
        write(
            &format!("fig18_effects_{}.csv", vendor.to_string().to_lowercase()),
            chart.to_csv(),
        )?;
    }
    for (vendor, chart) in &report.fig19.charts {
        write(
            &format!("fig19_msrs_{}.csv", vendor.to_string().to_lowercase()),
            chart.to_csv(),
        )?;
    }

    // Observations as a CSV table.
    let mut obs = String::from("id,holds,statement,evidence\n");
    for o in &report.observations {
        obs.push_str(&format!(
            "O{},{},\"{}\",\"{}\"\n",
            o.id,
            o.holds,
            o.statement.replace('"', "\"\""),
            o.evidence.replace('"', "\"\"")
        ));
    }
    write("observations.csv", obs)?;

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr::Database;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    #[test]
    fn export_writes_every_figure() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let mut db = Database::from_documents(&corpus.structured);
        let run = classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        let report = FullReport::build(&db, run.four_eyes.as_ref(), None);

        let dir =
            std::env::temp_dir().join(format!("rememberr-export-test-{}", std::process::id()));
        let written = export_csvs(&report, &dir).expect("export succeeds");
        assert!(written.len() >= 20, "only {} files", written.len());
        for name in &written {
            let path = dir.join(name);
            let contents = fs::read_to_string(&path).expect("file exists");
            assert!(contents.lines().count() >= 1, "{name} is empty");
        }
        // Every paper figure number appears among the file names.
        for fig in 2..=19 {
            assert!(
                written.iter().any(|n| n.contains(&format!("fig{fig:02}"))),
                "figure {fig} missing from export"
            );
        }
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
