//! The paper's thirteen observations (O1-O13), as measured predicates.
//!
//! Each observation is re-derived from the database; `holds` says whether
//! the reproduced corpus supports it, and `evidence` carries the measured
//! numbers for EXPERIMENTS.md.

use rememberr::Database;
use rememberr_model::{Design, TriggerClass};

use crate::categories::{
    fig10_trigger_frequency, fig13_class_evolution, fig14_class_share, fig17_context_frequency,
    fig18_effect_frequency,
};
use crate::correlation::{fig12_trigger_correlation, top_trigger_pairs};
use crate::heredity::fig03_heredity;
use crate::msrfig::fig19_msr_witnesses;
use crate::timeline::fig04_shared_set_timeline;
use crate::util::year_of;
use crate::workfix::{fig06_workarounds, fig07_fixes};

/// One measured observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Observation number (1-13).
    pub id: u8,
    /// The paper's statement.
    pub statement: &'static str,
    /// Whether the reproduced data supports the statement.
    pub holds: bool,
    /// Measured numbers backing the verdict.
    pub evidence: String,
}

/// Computes all thirteen observations over an annotated database.
pub fn observations(db: &Database) -> Vec<Observation> {
    vec![
        o1(db),
        o2(db),
        o3(db),
        o4(db),
        o5(db),
        o6(db),
        o7(db),
        o8(db),
        o9(db),
        o10(db),
        o11(db),
        o12(db),
        o13(db),
    ]
}

fn o1(db: &Database) -> Observation {
    // Entries per Intel document; the latest documents must not collapse.
    let counts: Vec<usize> = Design::intel().map(|d| db.entries_for(d).count()).collect();
    let mut sorted = counts.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2] as f64;
    let worst_recent = counts[counts.len() - 4..]
        .iter()
        .copied()
        .min()
        .unwrap_or(0) as f64;
    Observation {
        id: 1,
        statement: "The number of reported errata does not significantly decrease over time \
                    with new designs.",
        holds: worst_recent >= 0.15 * median,
        evidence: format!("entries per Intel document: {counts:?} (median {median})"),
    }
}

fn o2(db: &Database) -> Observation {
    // Concavity: first half of each document's life discloses at least as
    // fast as the second half, for most documents.
    let mut concave = 0usize;
    let mut total = 0usize;
    for design in Design::ALL {
        let mut years: Vec<f64> = db
            .entries_for(design)
            .map(|e| year_of(e.provenance.disclosure_date))
            .collect();
        if years.len() < 8 {
            continue;
        }
        years.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (first, last) = (years[0], *years.last().expect("non-empty"));
        if last - first < 0.5 {
            continue;
        }
        let mid = (first + last) / 2.0;
        let first_half = years.iter().filter(|y| **y <= mid).count();
        total += 1;
        if first_half * 2 >= years.len() {
            concave += 1;
        }
    }
    Observation {
        id: 2,
        statement: "The increase in errata for a given design is usually concave.",
        holds: total > 0 && concave as f64 >= 0.7 * total as f64,
        evidence: format!("{concave}/{total} documents front-load their disclosures"),
    }
}

fn o3(db: &Database) -> Observation {
    let heredity = fig03_heredity(db);
    let longest = heredity.longest_span.map(|(_, s)| s).unwrap_or(0);
    Observation {
        id: 3,
        statement: "Bugs are often shared between generations of microprocessors. Shared bugs \
                    may stay for up to 11 generations.",
        holds: heredity.core1_to_core10 >= 1 && longest >= 12,
        evidence: format!(
            "{} bugs span Core 1 to Core 10; longest document span {} positions",
            heredity.core1_to_core10, longest
        ),
    }
}

fn o4(db: &Database) -> Observation {
    let shared = fig04_shared_set_timeline(db);
    // Skip the first document (nothing precedes it).
    let later = &shared.known_before_release[1..];
    let avg: f64 = later.iter().map(|(_, f)| f).sum::<f64>() / later.len().max(1) as f64;
    Observation {
        id: 4,
        statement: "Most of the design flaws that are shared between generations were already \
                    known before releasing the subsequent generation.",
        holds: avg > 0.5,
        evidence: format!(
            "{} shared bugs; avg fraction known before subsequent releases: {avg:.2}",
            shared.shared_bugs
        ),
    }
}

fn o5(db: &Database) -> Observation {
    let wk = fig06_workarounds(db);
    let evidence = wk
        .no_workaround
        .iter()
        .map(|(v, f)| format!("{v}: {:.1}%", 100.0 * f))
        .collect::<Vec<_>>()
        .join(", ");
    Observation {
        id: 5,
        statement: "A substantial number of errata do not have any suggested workaround.",
        holds: wk.no_workaround.iter().all(|(_, f)| *f > 0.2),
        evidence: format!("no-workaround rates: {evidence}"),
    }
}

fn o6(db: &Database) -> Observation {
    let fixes = fig07_fixes(db);
    Observation {
        id: 6,
        statement: "Bugs are rarely fixed.",
        holds: fixes.fixed_fraction < 0.3,
        evidence: format!(
            "{:.1}% of unique bugs fixed or fix-planned",
            100.0 * fixes.fixed_fraction
        ),
    }
}

fn o7(db: &Database) -> Observation {
    let charts = fig10_trigger_frequency(db, 3);
    let mut holds = true;
    let mut evidence = String::new();
    for (vendor, chart) in &charts {
        let top: Vec<&str> = chart.rows.iter().map(|(l, _)| l.as_str()).collect();
        holds &= top.contains(&"Trg_CFG_wrg")
            && (top.contains(&"Trg_POW_tht") || top.contains(&"Trg_POW_pwc"));
        evidence.push_str(&format!("{vendor} top3: {top:?}; "));
    }
    Observation {
        id: 7,
        statement: "Most errata require specific MSR interaction or configuration combined \
                    with throttling, power state transitions, or peripheral inputs.",
        holds,
        evidence,
    }
}

fn o8(db: &Database) -> Observation {
    let matrix = fig12_trigger_correlation(db);
    let top = top_trigger_pairs(&matrix, 5);
    let n = rememberr_model::Trigger::ALL.len();
    let nonzero = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .filter(|&(i, j)| matrix.get(i, j) > 0.0)
        .count();
    let density = nonzero as f64 / (n * (n - 1) / 2) as f64;
    let strongest = top.first().map(|(_, _, v)| *v).unwrap_or(0.0);
    Observation {
        id: 8,
        statement: "Some abstract triggers tend to correlate strongly, while most do not.",
        holds: strongest >= 5.0 && density < 0.8,
        evidence: format!(
            "strongest pair {:?} ({} errata); pair density {density:.2}",
            top.first().map(|(a, b, _)| (a.code(), b.code())),
            strongest
        ),
    }
}

fn o9(db: &Database) -> Observation {
    let matrix = fig13_class_evolution(db);
    let docs: Vec<Design> = Design::intel().collect();
    let mut all_needed_until_gen10 = true;
    let mut mbr_absent_late = true;
    for (col, design) in docs.iter().enumerate() {
        for class in TriggerClass::ALL {
            let v = matrix.get(class.index(), col);
            let late = matches!(design, Design::Intel11 | Design::Intel12);
            if late && *class == TriggerClass::Mbr {
                mbr_absent_late &= v == 0.0;
            } else if !late && v == 0.0 {
                all_needed_until_gen10 = false;
            }
        }
    }
    Observation {
        id: 9,
        statement: "It is necessary to apply all trigger classes to trigger all known bugs \
                    (except in the latest two generations).",
        holds: all_needed_until_gen10 && mbr_absent_late,
        evidence: format!(
            "all classes present through Core 10: {all_needed_until_gen10}; \
             MBR absent in Core 11/12: {mbr_absent_late}"
        ),
    }
}

fn o10(db: &Database) -> Observation {
    let matrix = fig14_class_share(db);
    let mut max_diff_core: f64 = 0.0;
    for class in TriggerClass::ALL {
        if matches!(class, TriggerClass::Ext | TriggerClass::Fea) {
            continue;
        }
        let diff = (matrix.get(class.index(), 0) - matrix.get(class.index(), 1)).abs();
        max_diff_core = max_diff_core.max(diff);
    }
    let ext_fea_diff =
        (matrix.get(TriggerClass::Fea.index(), 0) - matrix.get(TriggerClass::Fea.index(), 1)).abs()
            + (matrix.get(TriggerClass::Ext.index(), 0) - matrix.get(TriggerClass::Ext.index(), 1))
                .abs();
    Observation {
        id: 10,
        statement: "The representation of trigger classes over the errata corpora is very \
                    similar for Intel and AMD (external stimuli and features differ).",
        holds: max_diff_core < 8.0,
        evidence: format!(
            "max share difference outside EXT/FEA: {max_diff_core:.1}pp; \
             EXT+FEA combined difference: {ext_fea_diff:.1}pp"
        ),
    }
}

fn o11(db: &Database) -> Observation {
    let charts = fig17_context_frequency(db, 1);
    let holds = charts
        .iter()
        .all(|(_, c)| c.rows.first().is_some_and(|(l, _)| l == "Ctx_PRV_vmg"));
    Observation {
        id: 11,
        statement: "Most errors occur in the context of hardware support for virtual machine \
                    guests.",
        holds,
        evidence: charts
            .iter()
            .map(|(v, c)| format!("{v} top context: {:?}", c.rows.first()))
            .collect::<Vec<_>>()
            .join("; "),
    }
}

fn o12(db: &Database) -> Observation {
    let charts = fig18_effect_frequency(db, 3);
    let mut holds = true;
    let mut evidence = String::new();
    for (vendor, chart) in &charts {
        let top: Vec<&str> = chart.rows.iter().map(|(l, _)| l.as_str()).collect();
        holds &= top.contains(&"Eff_CRP_reg") && top.contains(&"Eff_HNG_hng");
        evidence.push_str(&format!("{vendor} top3: {top:?}; "));
    }
    Observation {
        id: 12,
        statement: "Corrupted registers and hangs are the most common observable effect on \
                    Intel and AMD designs.",
        holds,
        evidence,
    }
}

fn o13(db: &Database) -> Observation {
    let analysis = fig19_msr_witnesses(db, 1);
    let holds = analysis
        .charts
        .iter()
        .all(|(_, c)| c.rows.first().is_some_and(|(l, _)| l == "MCx_STATUS"));
    let rates = analysis
        .machine_check_witness
        .iter()
        .map(|(v, r)| format!("{v}: {:.1}%", 100.0 * r))
        .collect::<Vec<_>>()
        .join(", ");
    Observation {
        id: 13,
        statement: "Among MSRs, Machine Check Status Registers most often indicate a bug's \
                    occurrence.",
        holds,
        evidence: format!("machine-check witness rates: {rates}"),
    }
}

/// Renders the observation table as text.
pub fn render_observations(observations: &[Observation]) -> String {
    let mut out = String::from("== Observations O1-O13 ==\n");
    for o in observations {
        out.push_str(&format!(
            "O{:<2} [{}] {}\n      evidence: {}\n",
            o.id,
            if o.holds { "HOLDS" } else { "FAILS" },
            o.statement,
            o.evidence
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::SyntheticCorpus;

    fn annotated_paper_db() -> Database {
        let corpus = SyntheticCorpus::paper();
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    }

    #[test]
    fn all_thirteen_observations_hold_on_the_paper_corpus() {
        let db = annotated_paper_db();
        let obs = observations(&db);
        assert_eq!(obs.len(), 13);
        for o in &obs {
            assert!(
                o.holds,
                "O{} fails: {}\n  {}",
                o.id, o.statement, o.evidence
            );
        }
    }

    #[test]
    fn render_includes_every_observation() {
        let db = annotated_paper_db();
        let obs = observations(&db);
        let text = render_observations(&obs);
        for i in 1..=13 {
            assert!(text.contains(&format!("O{i} ")) || text.contains(&format!("O{i}  ")));
        }
    }
}
