//! Figures 10, 11, 13-18: category frequencies, trigger counts, evolution
//! and vendor comparison.
//!
//! All analyses here require an annotated database
//! (see [`rememberr_classify::classify_database`]) and work on unique
//! errata, as the paper's Section V-B does.

use rememberr::{Database, Query};
use rememberr_model::{Context, Design, Effect, Trigger, TriggerClass, Vendor};

use crate::chart::{BarChart, MatrixChart};
use crate::util::unique_of;

/// Figure 10: most frequent abstract triggers per vendor, as a percentage
/// of the vendor's unique errata.
///
/// A 2×34 batch of facet counts, served by the database's shared
/// [`rememberr::QueryIndex`] instead of rescanning the unique view per
/// category.
pub fn fig10_trigger_frequency(db: &Database, top: usize) -> Vec<(Vendor, BarChart)> {
    let index = db.query_index();
    Vendor::ALL
        .iter()
        .map(|&vendor| {
            let vendor_uniques = Query::new().vendor(vendor).unique_only();
            let total = vendor_uniques.count_indexed(index, db);
            let mut chart =
                BarChart::new(format!("Fig. 10 — Most frequent triggers ({vendor})"), "%");
            for &trigger in Trigger::ALL {
                let n = vendor_uniques
                    .clone()
                    .trigger(trigger)
                    .count_indexed(index, db);
                chart.push(trigger.code(), 100.0 * n as f64 / total.max(1) as f64);
            }
            chart.sort_desc();
            chart.truncate(top);
            (vendor, chart)
        })
        .collect()
}

/// Figure 17: most frequent contexts per vendor (% of unique errata).
pub fn fig17_context_frequency(db: &Database, top: usize) -> Vec<(Vendor, BarChart)> {
    let index = db.query_index();
    Vendor::ALL
        .iter()
        .map(|&vendor| {
            let vendor_uniques = Query::new().vendor(vendor).unique_only();
            let total = vendor_uniques.count_indexed(index, db);
            let mut chart =
                BarChart::new(format!("Fig. 17 — Most frequent contexts ({vendor})"), "%");
            for &context in Context::ALL {
                let n = vendor_uniques
                    .clone()
                    .context(context)
                    .count_indexed(index, db);
                chart.push(context.code(), 100.0 * n as f64 / total.max(1) as f64);
            }
            chart.sort_desc();
            chart.truncate(top);
            (vendor, chart)
        })
        .collect()
}

/// Figure 18: most frequent observable effects per vendor (% of unique
/// errata).
pub fn fig18_effect_frequency(db: &Database, top: usize) -> Vec<(Vendor, BarChart)> {
    let index = db.query_index();
    Vendor::ALL
        .iter()
        .map(|&vendor| {
            let vendor_uniques = Query::new().vendor(vendor).unique_only();
            let total = vendor_uniques.count_indexed(index, db);
            let mut chart =
                BarChart::new(format!("Fig. 18 — Most frequent effects ({vendor})"), "%");
            for &effect in Effect::ALL {
                let n = vendor_uniques
                    .clone()
                    .effect(effect)
                    .count_indexed(index, db);
                chart.push(effect.code(), 100.0 * n as f64 / total.max(1) as f64);
            }
            chart.sort_desc();
            chart.truncate(top);
            (vendor, chart)
        })
        .collect()
}

/// Figure 11 result: the trigger-count histogram and its headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerCountAnalysis {
    /// Histogram over errata with clear triggers: label = trigger count.
    pub chart: BarChart,
    /// Fraction of unique errata with no clear trigger (paper: 14.4%),
    /// excluded from the histogram.
    pub no_clear_trigger: f64,
    /// Of errata with clear triggers, the fraction needing at least two
    /// (paper: 49% across both vendors).
    pub multi_trigger: f64,
    /// Fraction of unique errata flagged as "complex set of conditions",
    /// per vendor (paper: Intel 8.7%, AMD 20.8%).
    pub complex_conditions: Vec<(Vendor, f64)>,
}

/// Figure 11: number of errata by the number of necessary triggers.
pub fn fig11_trigger_counts(db: &Database) -> TriggerCountAnalysis {
    let uniques = db.unique_entries();
    let total = uniques.len().max(1);
    let mut histogram: Vec<usize> = Vec::new();
    let mut no_clear = 0usize;
    for e in &uniques {
        let n = e.annotation_or_empty().complexity();
        if n == 0 {
            no_clear += 1;
        } else {
            if histogram.len() < n {
                histogram.resize(n, 0);
            }
            histogram[n - 1] += 1;
        }
    }
    let clear_total: usize = histogram.iter().sum();
    let multi: usize = histogram.iter().skip(1).sum();

    let mut chart = BarChart::new("Fig. 11 — Errata by number of triggers", "");
    for (i, &count) in histogram.iter().enumerate() {
        chart.push(format!("{} trigger(s)", i + 1), count as f64);
    }

    let complex_conditions = Vendor::ALL
        .iter()
        .map(|&vendor| {
            let of_vendor = unique_of(db, vendor);
            let complex = of_vendor
                .iter()
                .filter(|e| e.annotation_or_empty().complex_conditions)
                .count();
            (vendor, complex as f64 / of_vendor.len().max(1) as f64)
        })
        .collect();

    TriggerCountAnalysis {
        chart,
        no_clear_trigger: no_clear as f64 / total as f64,
        multi_trigger: multi as f64 / clear_total.max(1) as f64,
        complex_conditions,
    }
}

/// Figure 13: trigger classes over Intel documents — for every document,
/// the number of its unique bugs requiring at least one trigger of each
/// class.
pub fn fig13_class_evolution(db: &Database) -> MatrixChart {
    let docs: Vec<Design> = Design::intel().collect();
    let mut matrix = MatrixChart::zeros(
        "Fig. 13 — Trigger classes over Intel Core generations",
        TriggerClass::ALL
            .iter()
            .map(|c| c.code().to_string())
            .collect(),
        docs.iter().map(|d| d.label().to_string()).collect(),
    );
    for (col, &design) in docs.iter().enumerate() {
        // Count each cluster once per document.
        let mut seen = std::collections::BTreeSet::new();
        for entry in db.entries_for(design) {
            let Some(key) = entry.key else { continue };
            if !seen.insert(key) {
                continue;
            }
            for class in entry.annotation_or_empty().trigger_classes() {
                *matrix.get_mut(class.index(), col) += 1.0;
            }
        }
    }
    matrix
}

/// Figure 14: relative representation of trigger classes per vendor, as a
/// percentage of the vendor's trigger instances.
pub fn fig14_class_share(db: &Database) -> MatrixChart {
    let mut matrix = MatrixChart::zeros(
        "Fig. 14 — Trigger class share by vendor",
        TriggerClass::ALL
            .iter()
            .map(|c| c.code().to_string())
            .collect(),
        Vendor::ALL.iter().map(|v| v.to_string()).collect(),
    );
    for (col, &vendor) in Vendor::ALL.iter().enumerate() {
        let mut counts = vec![0usize; TriggerClass::ALL.len()];
        let mut total = 0usize;
        for e in unique_of(db, vendor) {
            for t in e.annotation_or_empty().triggers.iter() {
                counts[t.class().index()] += 1;
                total += 1;
            }
        }
        for (row, &count) in counts.iter().enumerate() {
            *matrix.get_mut(row, col) = 100.0 * count as f64 / total.max(1) as f64;
        }
    }
    matrix
}

/// Figures 15/16 helper: share of each abstract trigger of `class` within
/// the vendor's triggers of that class.
pub fn class_breakdown(db: &Database, class: TriggerClass, figure: &str) -> MatrixChart {
    let members = class.categories();
    let mut matrix = MatrixChart::zeros(
        format!("{figure} — {} triggers by vendor", class.code()),
        members.iter().map(|t| t.code().to_string()).collect(),
        Vendor::ALL.iter().map(|v| v.to_string()).collect(),
    );
    for (col, &vendor) in Vendor::ALL.iter().enumerate() {
        let mut counts = vec![0usize; members.len()];
        let mut total = 0usize;
        for e in unique_of(db, vendor) {
            for t in e.annotation_or_empty().triggers.iter() {
                if t.class() == class {
                    let row = members.iter().position(|m| *m == t).expect("member");
                    counts[row] += 1;
                    total += 1;
                }
            }
        }
        for (row, &count) in counts.iter().enumerate() {
            *matrix.get_mut(row, col) = 100.0 * count as f64 / total.max(1) as f64;
        }
    }
    matrix
}

/// Figure 15: external-stimuli trigger breakdown, Intel vs AMD.
pub fn fig15_external_breakdown(db: &Database) -> MatrixChart {
    class_breakdown(db, TriggerClass::Ext, "Fig. 15")
}

/// Figure 16: feature trigger breakdown, Intel vs AMD.
pub fn fig16_feature_breakdown(db: &Database) -> MatrixChart {
    class_breakdown(db, TriggerClass::Fea, "Fig. 16")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn annotated_db(scale: f64) -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    }

    #[test]
    fn fig10_power_and_config_dominate() {
        let db = annotated_db(0.35);
        for (_, chart) in fig10_trigger_frequency(&db, 5) {
            let labels: Vec<&str> = chart.rows.iter().map(|(l, _)| l.as_str()).collect();
            assert!(
                labels.contains(&"Trg_CFG_wrg"),
                "Trg_CFG_wrg missing from top 5: {labels:?}"
            );
            assert!(
                labels.contains(&"Trg_POW_tht") || labels.contains(&"Trg_POW_pwc"),
                "power triggers missing from top 5: {labels:?}"
            );
        }
    }

    #[test]
    fn fig17_vm_guest_is_top_context() {
        let db = annotated_db(0.35);
        for (vendor, chart) in fig17_context_frequency(&db, 3) {
            assert_eq!(chart.rows[0].0, "Ctx_PRV_vmg", "{vendor}");
        }
    }

    #[test]
    fn fig18_registers_and_hangs_dominate() {
        let db = annotated_db(0.35);
        for (vendor, chart) in fig18_effect_frequency(&db, 4) {
            let labels: Vec<&str> = chart.rows.iter().map(|(l, _)| l.as_str()).collect();
            assert!(labels.contains(&"Eff_CRP_reg"), "{vendor}: {labels:?}");
            assert!(labels.contains(&"Eff_HNG_hng"), "{vendor}: {labels:?}");
        }
    }

    #[test]
    fn fig11_matches_paper_shape() {
        let db = annotated_db(0.5);
        let analysis = fig11_trigger_counts(&db);
        assert!(
            (0.08..0.22).contains(&analysis.no_clear_trigger),
            "no-clear {}",
            analysis.no_clear_trigger
        );
        assert!(
            (0.38..0.60).contains(&analysis.multi_trigger),
            "multi {}",
            analysis.multi_trigger
        );
        // AMD mentions complex conditions more often than Intel.
        let intel = analysis.complex_conditions[0].1;
        let amd = analysis.complex_conditions[1].1;
        assert!(amd > intel, "intel {intel}, amd {amd}");
    }

    #[test]
    fn fig13_mbr_absent_in_latest_generations() {
        let db = annotated_db(0.5);
        let matrix = fig13_class_evolution(&db);
        let mbr_row = TriggerClass::Mbr.index();
        // Columns 14 and 15 are Core 11 and Core 12.
        assert_eq!(matrix.get(mbr_row, 14), 0.0);
        assert_eq!(matrix.get(mbr_row, 15), 0.0);
        // But MBR bugs exist somewhere earlier.
        let total: f64 = (0..14).map(|c| matrix.get(mbr_row, c)).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn fig14_shares_sum_to_hundred_and_are_similar() {
        let db = annotated_db(0.5);
        let matrix = fig14_class_share(&db);
        for col in 0..2 {
            let sum: f64 = (0..TriggerClass::ALL.len())
                .map(|r| matrix.get(r, col))
                .sum();
            assert!((sum - 100.0).abs() < 1e-6, "col {col} sums to {sum}");
        }
        // O10: class shares are broadly similar between vendors, with the
        // known exceptions (EXT and FEA).
        for class in TriggerClass::ALL {
            let r = class.index();
            let (i, a) = (matrix.get(r, 0), matrix.get(r, 1));
            if !matches!(class, TriggerClass::Ext | TriggerClass::Fea) {
                assert!((i - a).abs() < 10.0, "{class}: {i} vs {a}");
            }
        }
    }

    #[test]
    fn fig15_fig16_show_the_vendor_skews() {
        let db = annotated_db(0.5);
        let ext = fig15_external_breakdown(&db);
        // System bus (HyperTransport) is AMD-heavy.
        let bus_row = TriggerClass::Ext
            .categories()
            .iter()
            .position(|t| *t == Trigger::SystemBus)
            .unwrap();
        assert!(ext.get(bus_row, 1) > ext.get(bus_row, 0));

        let fea = fig16_feature_breakdown(&db);
        // Tracing is Intel-heavy.
        let trc_row = TriggerClass::Fea
            .categories()
            .iter()
            .position(|t| *t == Trigger::Tracing)
            .unwrap();
        assert!(fea.get(trc_row, 0) > fea.get(trc_row, 1));
    }
}
