//! Figures 2, 4 and 5: disclosure timelines and latency.

use rememberr::Database;
use rememberr_model::{Date, Design, UniqueKey, Vendor};

use crate::chart::SeriesChart;
use crate::util::{cumulative_series, year_of};

/// Figure 2: cumulative disclosed errata per document over time (duplicate
/// entries counted individually, as in the paper).
pub fn fig02_disclosure_timeline(db: &Database, vendor: Vendor) -> SeriesChart {
    let mut chart = SeriesChart::new(
        format!("Fig. 2 — Disclosure dates of {vendor} errata"),
        "year",
        "cumulative disclosed errata",
    );
    for design in Design::ALL.iter().filter(|d| d.vendor() == vendor) {
        let dates: Vec<Date> = db
            .entries_for(*design)
            .map(|e| e.provenance.disclosure_date)
            .collect();
        if !dates.is_empty() {
            chart.push(design.label(), cumulative_series(dates));
        }
    }
    chart
}

/// The documents covering Intel Core generations 6 through 10.
pub const GEN6_TO_10_DOCS: [Design; 4] = [
    Design::Intel6,
    Design::Intel7_8,
    Design::Intel8_9,
    Design::Intel10,
];

/// Figure 4 result: the bugs shared by all Intel generations 6-10 and their
/// per-document disclosure timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedSetTimeline {
    /// Number of shared bugs (the paper reports 104).
    pub shared_bugs: usize,
    /// Cumulative disclosure of the shared set in each covering document;
    /// the first x value of each series is the document's release date.
    pub chart: SeriesChart,
    /// Fraction of the shared bugs already disclosed (in any earlier
    /// document) before each document's release, keyed by document.
    pub known_before_release: Vec<(Design, f64)>,
}

/// Figure 4: disclosure dates of the bugs shared by all generations 6-10.
pub fn fig04_shared_set_timeline(db: &Database) -> SharedSetTimeline {
    // Keys present in all four documents.
    let mut shared: Vec<UniqueKey> = Vec::new();
    'keys: for entry in db.unique_entries() {
        let Some(key) = entry.key else { continue };
        if entry.vendor() != Vendor::Intel {
            continue;
        }
        let designs = db.cluster_designs(key);
        for doc in GEN6_TO_10_DOCS {
            if !designs.contains(&doc) {
                continue 'keys;
            }
        }
        shared.push(key);
    }

    let mut chart = SeriesChart::new(
        "Fig. 4 — Disclosure of bugs shared by Intel Core generations 6-10",
        "year",
        "cumulative disclosed shared bugs",
    );
    let mut known_before_release = Vec::new();
    for doc in GEN6_TO_10_DOCS {
        let mut dates: Vec<Date> = Vec::new();
        for entry in db.entries_for(doc) {
            if entry.key.is_some_and(|k| shared.contains(&k)) {
                dates.push(entry.provenance.disclosure_date);
            }
        }
        // Fraction known somewhere before this document's release.
        let release = doc.release_date();
        let known = shared
            .iter()
            .filter(|&&key| {
                db.cluster(key)
                    .any(|e| e.provenance.disclosure_date < release)
            })
            .count();
        known_before_release.push((
            doc,
            if shared.is_empty() {
                0.0
            } else {
                known as f64 / shared.len() as f64
            },
        ));
        let mut series = cumulative_series(dates);
        // Prefix with the release date at zero, the paper's first data point.
        series.insert(0, (year_of(release), 0.0));
        chart.push(doc.label(), series);
    }

    SharedSetTimeline {
        shared_bugs: shared.len(),
        chart,
        known_before_release,
    }
}

/// Figure 5 result: forward- and backward-latent errata over time.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyAnalysis {
    /// The chart: two cumulative series ("forward-latent",
    /// "backward-latent") over the year of the *later* report.
    pub chart: SeriesChart,
    /// Total forward-latent errata.
    pub forward: usize,
    /// Total backward-latent errata.
    pub backward: usize,
}

/// Figure 5: forward-latent (reported in an earlier design strictly before
/// a later design) and backward-latent (the reverse) Intel errata.
pub fn fig05_latency(db: &Database) -> LatencyAnalysis {
    let mut forward_dates: Vec<Date> = Vec::new();
    let mut backward_dates: Vec<Date> = Vec::new();

    for rep in db.unique_entries() {
        if rep.vendor() != Vendor::Intel {
            continue;
        }
        let key = rep.key.expect("unique entries are keyed");
        // Per design: earliest disclosure in that design's document.
        let mut per_design: Vec<(Design, Date)> = Vec::new();
        for e in db.cluster(key) {
            match per_design.iter_mut().find(|(d, _)| *d == e.design()) {
                Some((_, date)) => {
                    if e.provenance.disclosure_date < *date {
                        *date = e.provenance.disclosure_date;
                    }
                }
                None => per_design.push((e.design(), e.provenance.disclosure_date)),
            }
        }
        per_design.sort_by_key(|(d, _)| d.index());

        let mut is_forward: Option<Date> = None;
        let mut is_backward: Option<Date> = None;
        for (i, (_, date_a)) in per_design.iter().enumerate() {
            for (_, date_b) in per_design.iter().skip(i + 1) {
                if date_a < date_b {
                    // Reported in the earlier design strictly first.
                    let when = *date_b;
                    if is_forward.is_none_or(|d| when < d) {
                        is_forward = Some(when);
                    }
                } else if date_b < date_a {
                    let when = *date_a;
                    if is_backward.is_none_or(|d| when < d) {
                        is_backward = Some(when);
                    }
                }
            }
        }
        if let Some(d) = is_forward {
            forward_dates.push(d);
        }
        if let Some(d) = is_backward {
            backward_dates.push(d);
        }
    }

    let mut chart = SeriesChart::new(
        "Fig. 5 — Forward-latent and backward-latent Intel errata",
        "year",
        "cumulative errata",
    );
    let forward = forward_dates.len();
    let backward = backward_dates.len();
    chart.push("forward-latent", cumulative_series(forward_dates));
    chart.push("backward-latent", cumulative_series(backward_dates));
    LatencyAnalysis {
        chart,
        forward,
        backward,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn db(scale: f64) -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        Database::from_documents(&corpus.structured)
    }

    #[test]
    fn fig02_has_one_series_per_nonempty_document() {
        let db = db(0.1);
        let intel = fig02_disclosure_timeline(&db, Vendor::Intel);
        assert!(intel.series.len() <= 16);
        assert!(!intel.series.is_empty());
        let amd = fig02_disclosure_timeline(&db, Vendor::Amd);
        assert!(amd.series.len() <= 12);
        // Cumulative series end at the document's entry count.
        for (name, points) in &intel.series {
            let design: Design = name.parse().unwrap();
            assert_eq!(
                points.last().unwrap().1 as usize,
                db.entries_for(design).count()
            );
        }
    }

    #[test]
    fn fig02_series_are_nondecreasing() {
        let db = db(0.1);
        for vendor in Vendor::ALL {
            let chart = fig02_disclosure_timeline(&db, vendor);
            for (_, points) in &chart.series {
                for pair in points.windows(2) {
                    assert!(pair[0].0 <= pair[1].0);
                    assert!(pair[0].1 <= pair[1].1);
                }
            }
        }
    }

    #[test]
    fn fig04_counts_104_on_paper_corpus() {
        let corpus = SyntheticCorpus::paper();
        let db = Database::from_documents(&corpus.structured);
        let shared = fig04_shared_set_timeline(&db);
        assert_eq!(shared.shared_bugs, 104);
        assert_eq!(shared.chart.series.len(), 4);
        // O4: most shared bugs were known before the subsequent documents'
        // releases (the later three documents).
        for (doc, fraction) in &shared.known_before_release[1..] {
            assert!(
                *fraction > 0.5,
                "{doc}: only {fraction} known before release"
            );
        }
    }

    #[test]
    fn fig05_finds_both_latency_kinds() {
        let corpus = SyntheticCorpus::paper();
        let db = Database::from_documents(&corpus.structured);
        let latency = fig05_latency(&db);
        assert!(latency.forward > 100, "forward {}", latency.forward);
        assert!(latency.backward > 10, "backward {}", latency.backward);
        assert!(
            latency.forward > latency.backward,
            "forward {} <= backward {}",
            latency.forward,
            latency.backward
        );
    }
}
