//! Parameter sweeps: how the headline results respond to the design knobs
//! DESIGN.md calls out.
//!
//! * [`dedup_threshold_sweep`] — unique-bug counts as the similarity
//!   cascade threshold varies (ablation 2);
//! * [`observation_budget_sweep`] — campaign coverage as the observation
//!   footprint grows (the paper's observation-space challenge: where is the
//!   knee?);
//! * [`trigger_budget_sweep`] — coverage as the number of stimuli applied
//!   together grows (how much conjunctive depth testing needs; compare
//!   Figure 11's 49%-need-two finding).

use rememberr::{assign_keys, Database, DbEntry, DedupStrategy};
use rememberr_model::Vendor;

use crate::chart::SeriesChart;
use crate::guidance::plan_campaign;

/// Unique-cluster counts across similarity thresholds.
///
/// The sweep clones the entries per point; thresholds span `[0, 1]`
/// inclusive in `steps` increments.
pub fn dedup_threshold_sweep(db: &Database, steps: usize) -> SeriesChart {
    let mut chart = SeriesChart::new(
        "Ablation — unique bugs vs cascade similarity threshold",
        "threshold",
        "clusters",
    );
    let mut intel = Vec::new();
    let mut total = Vec::new();
    for i in 0..=steps {
        let threshold = i as f64 / steps as f64;
        let mut entries: Vec<DbEntry> = db.entries().to_vec();
        let stats = assign_keys(&mut entries, DedupStrategy::SimilarityCascade { threshold });
        let intel_clusters = {
            let mut keys: Vec<_> = entries
                .iter()
                .filter(|e| e.vendor() == Vendor::Intel)
                .filter_map(|e| e.key)
                .collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        };
        intel.push((threshold, intel_clusters as f64));
        total.push((threshold, stats.clusters as f64));
    }
    chart.push("Intel clusters", intel);
    chart.push("all clusters", total);
    chart
}

/// Campaign coverage as the observation budget grows, at a fixed number of
/// steps and stimuli per step.
pub fn observation_budget_sweep(
    db: &Database,
    steps: usize,
    triggers_per_step: usize,
    max_effects: usize,
) -> SeriesChart {
    let mut chart = SeriesChart::new(
        "Sweep — campaign coverage vs observation footprint",
        "effects watched per step",
        "coverage %",
    );
    let points = (1..=max_effects)
        .map(|effects| {
            let plan = plan_campaign(db, steps, triggers_per_step, effects);
            (effects as f64, 100.0 * plan.coverage())
        })
        .collect();
    chart.push(
        format!("{steps} steps x {triggers_per_step} stimuli"),
        points,
    );
    chart
}

/// Campaign coverage as the conjunctive stimulus budget grows.
pub fn trigger_budget_sweep(
    db: &Database,
    steps: usize,
    max_triggers: usize,
    effects_watched: usize,
) -> SeriesChart {
    let mut chart = SeriesChart::new(
        "Sweep — campaign coverage vs stimuli applied together",
        "triggers per step",
        "coverage %",
    );
    let points = (1..=max_triggers)
        .map(|triggers| {
            let plan = plan_campaign(db, steps, triggers, effects_watched);
            (triggers as f64, 100.0 * plan.coverage())
        })
        .collect();
    chart.push(
        format!("{steps} steps x {effects_watched} watched effects"),
        points,
    );
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn annotated_db() -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.2));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    }

    #[test]
    fn threshold_sweep_is_monotone_nondecreasing() {
        // Raising the threshold can only reject merges, so cluster counts
        // never decrease.
        let db = annotated_db();
        let chart = dedup_threshold_sweep(&db, 10);
        for (_, points) in &chart.series {
            for pair in points.windows(2) {
                assert!(pair[0].1 <= pair[1].1, "{pair:?}");
            }
        }
    }

    #[test]
    fn threshold_sweep_brackets_the_exact_strategy() {
        let db = annotated_db();
        let chart = dedup_threshold_sweep(&db, 4);
        let totals = &chart.series[1].1;
        // Threshold 0 merges every body-identical pair; threshold 1 merges
        // only similarity-1 pairs; the default lies between.
        let at_zero = totals.first().unwrap().1;
        let at_one = totals.last().unwrap().1;
        assert!(at_zero <= db.unique_count() as f64);
        assert!(at_one >= db.unique_count() as f64);
    }

    #[test]
    fn observation_budget_shows_diminishing_returns() {
        let db = annotated_db();
        let chart = observation_budget_sweep(&db, 5, 3, 6);
        let points = &chart.series[0].1;
        for pair in points.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9, "coverage must not drop");
        }
        // Watching more helps at least somewhat.
        assert!(points.last().unwrap().1 >= points.first().unwrap().1);
    }

    #[test]
    fn trigger_budget_grows_coverage() {
        let db = annotated_db();
        let chart = trigger_budget_sweep(&db, 5, 4, 4);
        let points = &chart.series[0].1;
        assert!(points.last().unwrap().1 > points.first().unwrap().1);
    }
}
