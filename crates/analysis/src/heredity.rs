//! Figure 3: bug heredity across Intel documents.

use rememberr::Database;
use rememberr_model::{Design, UniqueKey, Vendor};

use crate::chart::MatrixChart;
use crate::util::keys_in_document;

/// Figure 3 result: the pairwise shared-bug matrix plus headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct HeredityAnalysis {
    /// Symmetric matrix: `cells[i][j]` = unique bugs shared between Intel
    /// documents `i` and `j` (diagonal: the document's unique-bug count).
    pub matrix: MatrixChart,
    /// Bugs listed in both the Core 1 and Core 10 documents (paper: 6).
    pub core1_to_core10: usize,
    /// The longest span (in document positions) any bug covers, with the
    /// spanning bug's key.
    pub longest_span: Option<(UniqueKey, usize)>,
}

/// Figure 3: number of common bugs across Intel documents.
pub fn fig03_heredity(db: &Database) -> HeredityAnalysis {
    let docs: Vec<Design> = Design::intel().collect();
    let labels: Vec<String> = docs.iter().map(|d| d.label().to_string()).collect();
    let mut matrix = MatrixChart::zeros(
        "Fig. 3 — Common bugs across Intel documents",
        labels.clone(),
        labels,
    );

    let keys_per_doc: Vec<Vec<UniqueKey>> = docs.iter().map(|&d| keys_in_document(db, d)).collect();

    for (i, keys_i) in keys_per_doc.iter().enumerate() {
        for (j, keys_j) in keys_per_doc.iter().enumerate() {
            let shared = if i == j {
                keys_i.len()
            } else {
                keys_i.iter().filter(|k| keys_j.contains(k)).count()
            };
            *matrix.get_mut(i, j) = shared as f64;
        }
    }

    // Core 1 (either segment) to Core 10.
    let core1_to_core10 = db
        .unique_entries()
        .iter()
        .filter(|e| e.vendor() == Vendor::Intel)
        .filter(|e| {
            let designs = db.cluster_designs(e.key.expect("keyed"));
            designs.contains(&Design::Intel1D) && designs.contains(&Design::Intel10)
        })
        .count();

    // Longest document span of any bug.
    let mut longest_span: Option<(UniqueKey, usize)> = None;
    for e in db.unique_entries() {
        if e.vendor() != Vendor::Intel {
            continue;
        }
        let key = e.key.expect("keyed");
        let designs = db.cluster_designs(key);
        if let (Some(first), Some(last)) = (designs.first(), designs.last()) {
            let span = last.index() - first.index();
            if longest_span.is_none_or(|(_, s)| span > s) {
                longest_span = Some((key, span));
            }
        }
    }

    HeredityAnalysis {
        matrix,
        core1_to_core10,
        longest_span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::SyntheticCorpus;

    fn paper_db() -> Database {
        let corpus = SyntheticCorpus::paper();
        Database::from_documents(&corpus.structured)
    }

    #[test]
    fn matrix_is_symmetric_with_dominant_diagonal() {
        let analysis = fig03_heredity(&paper_db());
        let m = &analysis.matrix;
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(m.get(i, j), m.get(j, i));
                assert!(m.get(i, j) <= m.get(i, i).min(m.get(j, j)));
            }
        }
    }

    #[test]
    fn desktop_and_mobile_share_the_vast_majority() {
        let analysis = fig03_heredity(&paper_db());
        let m = &analysis.matrix;
        // Core 1 (D) is row 0, Core 1 (M) is row 1, etc.
        for gen in 0..5 {
            let (d, mob) = (2 * gen, 2 * gen + 1);
            let shared = m.get(d, mob);
            let smaller = m.get(d, d).min(m.get(mob, mob));
            assert!(
                shared / smaller > 0.5,
                "gen {gen}: shared {shared} of {smaller}"
            );
        }
    }

    #[test]
    fn six_bugs_from_core1_to_core10() {
        let analysis = fig03_heredity(&paper_db());
        assert_eq!(analysis.core1_to_core10, 6);
    }

    #[test]
    fn gens_6_to_10_block_is_salient() {
        let analysis = fig03_heredity(&paper_db());
        let m = &analysis.matrix;
        // Documents 10..=13 are Core 6, 7/8, 8/9, 10.
        let in_block = m.get(10, 13);
        let outside = m.get(10, 15); // Core 6 vs Core 12
        assert!(
            in_block > outside,
            "block {in_block} should exceed outside {outside}"
        );
        assert!(in_block >= 104.0);
    }

    #[test]
    fn longest_span_reaches_core12() {
        // The Core 2 erratum resurfacing in Core 12 spans documents 2..15.
        let analysis = fig03_heredity(&paper_db());
        let (_, span) = analysis.longest_span.expect("spanning bugs exist");
        assert_eq!(span, Design::Intel12.index() - Design::Intel2D.index());
    }
}
