//! The syntax-highlighting assist over a classified database.
//!
//! The study's annotation UI highlighted rule matches inside each erratum
//! so reviewers could see *why* a category was suggested (Section V-A1).
//! This module recomputes those highlights for every unique erratum and
//! summarizes them — how many errata light up, how often each category
//! label fires — so reports can quantify how much reading the assist
//! saves.
//!
//! Two entry points share one implementation: [`assist_highlights`]
//! re-tokenizes each representative's text, while
//! [`assist_highlights_analyzed`] borrows the already-prepared text from an
//! [`AnalyzedCorpus`] (the single-pass pipeline's shared arena), skipping
//! the tokenization entirely.

use std::collections::{BTreeMap, HashMap};

use rememberr::Database;
use rememberr_classify::Rules;
use rememberr_model::ErratumId;
use rememberr_textkit::{
    highlights_prepared, highlights_prepared_filtered, AnalyzedCorpus, PreparedText,
};

/// Summary of the highlighting assist over a database's unique errata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssistSummary {
    /// Unique errata the assist ran over.
    pub unique_errata: usize,
    /// Unique errata with at least one highlighted region.
    pub highlighted_errata: usize,
    /// Total merged highlight regions across all unique errata.
    pub total_highlights: usize,
    /// How many errata each category label appears in, by label.
    pub label_hits: BTreeMap<String, usize>,
}

impl AssistSummary {
    /// Fraction of unique errata with at least one highlight.
    pub fn coverage(&self) -> f64 {
        if self.unique_errata == 0 {
            return 0.0;
        }
        self.highlighted_errata as f64 / self.unique_errata as f64
    }
}

/// Computes the highlighting assist, re-tokenizing each representative.
pub fn assist_highlights(db: &Database, rules: &Rules) -> AssistSummary {
    assist_impl(db, rules, None)
}

/// [`assist_highlights`] over a database whose entries were already
/// tokenized into an [`AnalyzedCorpus`] (index `i` of the corpus must hold
/// the preparation of entry `i`'s full text).
pub fn assist_highlights_analyzed(
    db: &Database,
    rules: &Rules,
    corpus: &AnalyzedCorpus,
) -> AssistSummary {
    assert_eq!(
        corpus.len(),
        db.entries().len(),
        "analyzed corpus must align with the database entries"
    );
    assist_impl(db, rules, Some(corpus))
}

fn assist_impl(db: &Database, rules: &Rules, corpus: Option<&AnalyzedCorpus>) -> AssistSummary {
    let _span = rememberr_obs::span!("analysis.assist");
    let patterns = rules.highlight_set();

    // Identifiers can collide across vendors; resolve each representative
    // to its first occurrence, matching `Database::entry` and the analyzed
    // corpus's positional alignment with the entry slice.
    let mut index_of: HashMap<ErratumId, usize> = HashMap::new();
    for (i, entry) in db.entries().iter().enumerate() {
        index_of.entry(entry.id()).or_insert(i);
    }
    let rep_entries: Vec<usize> = db
        .unique_entries()
        .iter()
        .map(|e| index_of[&e.id()])
        .collect();

    // Highlighting is pure per representative, so it fans out across
    // workers; the label tally folds the input-ordered results
    // sequentially, keeping the summary identical at every worker count.
    let per_rep: Vec<(usize, Vec<String>)> = rememberr_par::par_map(&rep_entries, |&i| {
        let entry = &db.entries()[i];
        let highlights = match corpus {
            // The highlight set is the strong rule library in library
            // order (see `Rules::highlight_set`), which is also how the
            // shared matcher numbers its first pattern ids — so one
            // indexed match pass prunes the set to the rules that match
            // this text, and only those are scanned for their full span
            // lists. Pruning is lossless: the output is identical to the
            // exhaustive scan the per-stage arm performs.
            Some(corpus) => {
                let text = corpus.text(i);
                let matches = rules.matcher().match_doc(text);
                highlights_prepared_filtered(&patterns, text, |id| matches.is_match(id))
            }
            None => highlights_prepared(
                &patterns,
                &PreparedText::from_string(entry.erratum.full_text()),
            ),
        };
        let mut labels: Vec<String> = highlights
            .iter()
            .flat_map(|h| h.labels.iter().cloned())
            .collect();
        labels.sort();
        labels.dedup();
        (highlights.len(), labels)
    });

    let mut summary = AssistSummary {
        unique_errata: rep_entries.len(),
        highlighted_errata: 0,
        total_highlights: 0,
        label_hits: BTreeMap::new(),
    };
    for (total, labels) in per_rep {
        summary.total_highlights += total;
        if total > 0 {
            summary.highlighted_errata += 1;
        }
        for label in labels {
            *summary.label_hits.entry(label).or_insert(0) += 1;
        }
    }
    rememberr_obs::count("analysis.assist_docs", summary.unique_errata as u64);
    rememberr_obs::count(
        "analysis.assist_highlights",
        summary.total_highlights as u64,
    );
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
    use rememberr_model::Vendor;
    use rememberr_textkit::DocText;

    #[test]
    fn assist_finds_highlights_and_agrees_with_analyzed_path() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let db = Database::from_documents(&corpus.structured);
        let rules = Rules::standard();

        let per_stage = assist_highlights(&db, &rules);
        assert!(per_stage.unique_errata > 0);
        assert!(per_stage.total_highlights > 0, "{per_stage:?}");
        assert!(per_stage.coverage() > 0.5, "{per_stage:?}");

        let arena = AnalyzedCorpus::analyze(db.entries(), |e| DocText {
            text: e.erratum.full_text(),
            title_len: e.erratum.title.len(),
            analyze_title: e.vendor() == Vendor::Intel,
        });
        let analyzed = assist_highlights_analyzed(&db, &rules, &arena);
        assert_eq!(per_stage, analyzed);
    }

    #[test]
    fn empty_database_yields_empty_summary() {
        let db = Database::from_documents(&[]);
        let summary = assist_highlights(&db, &Rules::standard());
        assert_eq!(summary.unique_errata, 0);
        assert_eq!(summary.coverage(), 0.0);
        assert!(summary.label_hits.is_empty());
    }
}
