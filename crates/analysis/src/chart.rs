//! Plain-text chart primitives used by every analysis.
//!
//! The paper's artifact produces matplotlib figures; here every figure is a
//! typed result that renders to aligned text (for terminals and the
//! EXPERIMENTS log) and to CSV (for external plotting).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A horizontal bar chart: labelled values, drawn to scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// `(label, value)` rows in display order.
    pub rows: Vec<(String, f64)>,
    /// Unit suffix printed after values (e.g. `"%"` or `""`).
    pub unit: String,
}

impl BarChart {
    /// Creates a chart.
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            rows: Vec::new(),
            unit: unit.into(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.rows.push((label.into(), value));
    }

    /// Sorts rows by decreasing value.
    pub fn sort_desc(&mut self) {
        self.rows
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Keeps only the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    /// Renders the chart as aligned text with `width`-character bars.
    pub fn render_text(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .rows
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for (label, value) in &self.rows {
            let bar_len = ((value / max) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{label:<label_w$}  {value:>9.2}{}  {}",
                self.unit,
                "#".repeat(bar_len)
            );
        }
        out
    }

    /// Renders the rows as CSV (`label,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,value\n");
        for (label, value) in &self.rows {
            let _ = writeln!(out, "{},{}", csv_escape(label), value);
        }
        out
    }
}

/// A set of named series over a shared x axis (time series, histograms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesChart {
    /// Chart title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// Named series; points are `(x, y)` sorted by `x`.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

impl SeriesChart {
    /// Creates a chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Appends a series.
    pub fn push(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push((name.into(), points));
    }

    /// Renders a compact text view: per series, the final value plus a
    /// sparkline over a fixed number of buckets.
    pub fn render_text(&self, buckets: usize) -> String {
        const GLYPHS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} ==  [{} vs {}]",
            self.title, self.y_label, self.x_label
        );
        let (x_min, x_max) = self.x_range();
        let y_max = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let name_w = self.series.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, points) in &self.series {
            let mut line = String::new();
            for b in 0..buckets {
                let x = x_min + (x_max - x_min) * (b as f64 + 0.5) / buckets as f64;
                // Last point at or before x (step interpolation).
                let y = points
                    .iter()
                    .take_while(|(px, _)| *px <= x)
                    .last()
                    .map(|(_, py)| *py)
                    .unwrap_or(0.0);
                let idx = ((y / y_max) * (GLYPHS.len() - 1) as f64).round() as usize;
                line.push(GLYPHS[idx.min(GLYPHS.len() - 1)]);
            }
            let last = points.last().map(|p| p.1).unwrap_or(0.0);
            let _ = writeln!(out, "{name:<name_w$} |{line}| {last:>9.2}");
        }
        out
    }

    /// Renders all points as CSV (`series,x,y`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for (name, points) in &self.series {
            for (x, y) in points {
                let _ = writeln!(out, "{},{},{}", csv_escape(name), x, y);
            }
        }
        out
    }

    fn x_range(&self) -> (f64, f64) {
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
            .collect();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if min.is_finite() && max.is_finite() && max > min {
            (min, max)
        } else {
            (0.0, 1.0)
        }
    }
}

/// A labelled numeric matrix (heatmap-style figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixChart {
    /// Chart title.
    pub title: String,
    /// Row labels.
    pub row_labels: Vec<String>,
    /// Column labels.
    pub col_labels: Vec<String>,
    /// Cells, row-major: `cells[row][col]`.
    pub cells: Vec<Vec<f64>>,
}

impl MatrixChart {
    /// Creates a zero matrix with the given labels.
    pub fn zeros(
        title: impl Into<String>,
        row_labels: Vec<String>,
        col_labels: Vec<String>,
    ) -> Self {
        let cells = vec![vec![0.0; col_labels.len()]; row_labels.len()];
        Self {
            title: title.into(),
            row_labels,
            col_labels,
            cells,
        }
    }

    /// Cell accessor.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.cells[row][col]
    }

    /// Mutable cell accessor.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        &mut self.cells[row][col]
    }

    /// Renders the matrix as a density grid plus the peak cells as text.
    pub fn render_text(&self) -> String {
        const GLYPHS: &[char] = &['.', ':', '-', '=', '+', '*', '#', '@'];
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let max = self
            .cells
            .iter()
            .flatten()
            .copied()
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_w = self.row_labels.iter().map(String::len).max().unwrap_or(0);
        for (row_label, row) in self.row_labels.iter().zip(&self.cells) {
            let mut line = String::new();
            for &v in row {
                let idx = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
                line.push(if v == 0.0 {
                    ' '
                } else {
                    GLYPHS[idx.min(GLYPHS.len() - 1)]
                });
            }
            let _ = writeln!(out, "{row_label:<label_w$} |{line}|");
        }
        out
    }

    /// Renders cells as CSV (`row,col,value`), skipping zeros.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("row,col,value\n");
        for (row_label, row) in self.row_labels.iter().zip(&self.cells) {
            for (col_label, &v) in self.col_labels.iter().zip(row) {
                if v != 0.0 {
                    let _ = writeln!(
                        out,
                        "{},{},{}",
                        csv_escape(row_label),
                        csv_escape(col_label),
                        v
                    );
                }
            }
        }
        out
    }

    /// The `n` largest cells as `(row label, col label, value)`.
    pub fn top_cells(&self, n: usize) -> Vec<(&str, &str, f64)> {
        let mut all: Vec<(&str, &str, f64)> = Vec::new();
        for (row_label, row) in self.row_labels.iter().zip(&self.cells) {
            for (col_label, &v) in self.col_labels.iter().zip(row) {
                all.push((row_label, col_label, v));
            }
        }
        all.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        all.truncate(n);
        all
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_renders_scaled_bars() {
        let mut chart = BarChart::new("demo", "");
        chart.push("big", 10.0);
        chart.push("small", 5.0);
        let text = chart.render_text(10);
        assert!(text.contains("== demo =="));
        let lines: Vec<&str> = text.lines().collect();
        let big_hashes = lines[1].matches('#').count();
        let small_hashes = lines[2].matches('#').count();
        assert_eq!(big_hashes, 10);
        assert_eq!(small_hashes, 5);
    }

    #[test]
    fn bar_chart_sort_and_truncate() {
        let mut chart = BarChart::new("t", "");
        chart.push("a", 1.0);
        chart.push("b", 3.0);
        chart.push("c", 2.0);
        chart.sort_desc();
        chart.truncate(2);
        assert_eq!(chart.rows[0].0, "b");
        assert_eq!(chart.rows.len(), 2);
    }

    #[test]
    fn bar_chart_csv() {
        let mut chart = BarChart::new("t", "");
        chart.push("x,y", 1.0);
        let csv = chart.to_csv();
        assert!(csv.starts_with("label,value\n"));
        assert!(csv.contains("\"x,y\",1"));
    }

    #[test]
    fn series_chart_text_and_csv() {
        let mut chart = SeriesChart::new("growth", "year", "count");
        chart.push("a", vec![(2010.0, 1.0), (2011.0, 4.0)]);
        chart.push("b", vec![(2010.0, 2.0)]);
        let text = chart.render_text(8);
        assert!(text.contains("growth"));
        assert!(text.contains("a"));
        let csv = chart.to_csv();
        assert!(csv.contains("a,2010,1"));
        assert!(csv.contains("b,2010,2"));
    }

    #[test]
    fn empty_series_chart_does_not_panic() {
        let chart = SeriesChart::new("empty", "x", "y");
        assert!(!chart.render_text(4).is_empty());
        assert_eq!(chart.to_csv(), "series,x,y\n");
    }

    #[test]
    fn matrix_chart_cells_and_top() {
        let mut m = MatrixChart::zeros(
            "m",
            vec!["r1".into(), "r2".into()],
            vec!["c1".into(), "c2".into()],
        );
        *m.get_mut(0, 1) = 5.0;
        *m.get_mut(1, 0) = 2.0;
        assert_eq!(m.get(0, 1), 5.0);
        let top = m.top_cells(1);
        assert_eq!(top[0], ("r1", "c2", 5.0));
        assert!(m.render_text().contains("r1"));
        let csv = m.to_csv();
        assert!(csv.contains("r1,c2,5"));
        assert!(!csv.contains("r1,c1"));
    }
}
