//! Figures 8 and 9: classification effort and inter-annotator agreement.

use rememberr_classify::FourEyesOutcome;

use crate::chart::SeriesChart;

/// Figure 8: cumulative errata per classification discussion step.
pub fn fig08_classification_steps(outcome: &FourEyesOutcome) -> SeriesChart {
    let mut chart = SeriesChart::new(
        "Fig. 8 — Errata per classification discussion step",
        "step",
        "cumulative errata",
    );
    chart.push(
        "classified errata",
        outcome
            .steps
            .iter()
            .map(|s| (s.step as f64, s.cumulative_errata as f64))
            .collect(),
    );
    chart
}

/// Figure 9: pre-discussion agreement per step (percent).
pub fn fig09_agreement(outcome: &FourEyesOutcome) -> SeriesChart {
    let mut chart = SeriesChart::new(
        "Fig. 9 — Human agreement before discussion",
        "step",
        "agreement %",
    );
    chart.push(
        "agreement",
        outcome
            .steps
            .iter()
            .map(|s| (s.step as f64, 100.0 * s.agreement))
            .collect(),
    );
    chart.push(
        "Cohen's kappa x100",
        outcome
            .steps
            .iter()
            .map(|s| (s.step as f64, 100.0 * s.kappa))
            .collect(),
    );
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr::Database;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn outcome() -> FourEyesOutcome {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.3));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        )
        .four_eyes
        .expect("simulated oracle")
    }

    #[test]
    fn fig08_is_cumulative_over_seven_steps() {
        let chart = fig08_classification_steps(&outcome());
        let points = &chart.series[0].1;
        assert_eq!(points.len(), 7);
        for pair in points.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn fig08_covers_every_unique_erratum() {
        // The paper's Figure 8 counts all classified errata, not only those
        // carrying human decisions.
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.3));
        let mut db = Database::from_documents(&corpus.structured);
        let run = classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        let outcome = run.four_eyes.expect("simulated oracle");
        assert_eq!(
            outcome.steps.last().unwrap().cumulative_errata,
            db.unique_count()
        );
    }

    #[test]
    fn fig09_agreement_is_generally_above_eighty() {
        // The paper: "the agreement percentage is generally above 80%".
        // Small steps are noisy, so allow one dip below 78%.
        let chart = fig09_agreement(&outcome());
        let agreement = &chart.series[0].1;
        let above = agreement.iter().filter(|(_, y)| *y > 78.0).count();
        assert!(above >= agreement.len() - 1, "{agreement:?}");
        let avg: f64 = agreement.iter().map(|(_, y)| y).sum::<f64>() / agreement.len() as f64;
        assert!(avg > 80.0, "average agreement {avg}");
    }
}
