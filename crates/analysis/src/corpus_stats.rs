//! Corpus-level statistics: Table III and the Section IV-A numbers.

use rememberr::Database;
use rememberr_extract::ExtractionReport;
use rememberr_model::{Design, Vendor};
use serde::{Deserialize, Serialize};

/// The Section IV-A headline numbers plus the per-document inventory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total entries per vendor (paper: Intel 2,057, AMD 506).
    pub totals: Vec<(Vendor, usize)>,
    /// Unique bugs per vendor (paper: Intel 743, AMD 385).
    pub uniques: Vec<(Vendor, usize)>,
    /// Entries per document, in Table III order.
    pub per_document: Vec<(String, usize)>,
    /// Cascade merges (the counterpart of the 29 manual Intel pairs).
    pub cascade_merges: usize,
}

/// Computes corpus statistics from a keyed database.
pub fn corpus_stats(db: &Database) -> CorpusStats {
    CorpusStats {
        totals: Vendor::ALL
            .iter()
            .map(|&v| (v, db.total_count_for(v)))
            .collect(),
        uniques: Vendor::ALL
            .iter()
            .map(|&v| (v, db.unique_count_for(v)))
            .collect(),
        per_document: Design::ALL
            .iter()
            .map(|&d| (d.label().to_string(), db.entries_for(d).count()))
            .collect(),
        cascade_merges: db.dedup_stats().cascade_merges,
    }
}

impl CorpusStats {
    /// Renders the stats as text (the Table III-style inventory).
    pub fn render_text(&self) -> String {
        let mut out = String::from("== Corpus statistics (Table III / Section IV-A) ==\n");
        for ((vendor, total), (_, unique)) in self.totals.iter().zip(&self.uniques) {
            out.push_str(&format!(
                "{vendor}: {total} errata collected, {unique} unique\n"
            ));
        }
        out.push_str(&format!(
            "similarity-cascade merges (manual pairs in the study): {}\n",
            self.cascade_merges
        ));
        out.push_str("per document:\n");
        for (label, count) in &self.per_document {
            out.push_str(&format!("  {label:<16} {count:>5}\n"));
        }
        out
    }
}

/// Renders the "errata in errata" defect report (Section IV-A).
pub fn render_defect_report(report: &ExtractionReport) -> String {
    let docs = |ids: &[rememberr_model::ErratumId]| {
        let mut designs: Vec<Design> = ids.iter().map(|id| id.design).collect();
        designs.sort_by_key(|d| d.index());
        designs.dedup();
        designs.len()
    };
    let mut out = String::from("== Errata in errata (Section IV-A) ==\n");
    out.push_str(&format!(
        "double-added revision claims : {:>3} errata across {} documents\n",
        report.double_added.len(),
        docs(&report.double_added)
    ));
    out.push_str(&format!(
        "missing from revision notes  : {:>3} errata across {} documents\n",
        report.unmentioned.len(),
        docs(&report.unmentioned)
    ));
    out.push_str(&format!(
        "reused erratum names         : {:>3}\n",
        report.name_collisions.len()
    ));
    out.push_str(&format!(
        "missing/duplicated fields    : {:>3} defects\n",
        report.missing_fields.len() + report.duplicate_fields.len()
    ));
    out.push_str(&format!(
        "erroneous MSR numbers        : {:>3} errata\n",
        report.inconsistent_msrs.len()
    ));
    out.push_str(&format!(
        "intra-document duplicates    : {:>3} candidate pairs\n",
        report.intra_doc_duplicates.len()
    ));
    out.push_str(&format!(
        "status vs summary-table      : {:>3} mismatches\n",
        report.status_summary_mismatches.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::SyntheticCorpus;
    use rememberr_extract::extract_corpus;

    #[test]
    fn paper_corpus_headline_numbers() {
        let corpus = SyntheticCorpus::paper();
        let db = Database::from_documents(&corpus.structured);
        let stats = corpus_stats(&db);
        assert_eq!(
            stats.totals,
            vec![(Vendor::Intel, 2_057), (Vendor::Amd, 506)]
        );
        assert_eq!(
            stats.uniques,
            vec![(Vendor::Intel, 743), (Vendor::Amd, 385)]
        );
        assert_eq!(stats.per_document.len(), 28);
        let text = stats.render_text();
        assert!(text.contains("Intel: 2057 errata collected, 743 unique"));
    }

    #[test]
    fn defect_report_renders_counts() {
        let corpus = SyntheticCorpus::paper();
        let (_, report) =
            extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str()))).unwrap();
        let text = render_defect_report(&report);
        assert!(text.contains("double-added revision claims :   8 errata across 3 documents"));
        assert!(text.contains("missing from revision notes  :  12 errata across 2 documents"));
        assert!(text.contains("reused erratum names         :   1"));
        assert!(text.contains("erroneous MSR numbers        :   3"));
        // 11 injected intra-document pairs plus the AMD near-miss pair.
        assert_eq!(report.intra_doc_duplicates.len(), 12);
    }
}
