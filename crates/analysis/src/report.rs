//! The full study report: every figure and table in one pass.

use rememberr::Database;
use rememberr_classify::FourEyesOutcome;
use rememberr_extract::ExtractionReport;
use rememberr_model::Vendor;

use crate::categories::{
    fig10_trigger_frequency, fig11_trigger_counts, fig13_class_evolution, fig14_class_share,
    fig15_external_breakdown, fig16_feature_breakdown, fig17_context_frequency,
    fig18_effect_frequency, TriggerCountAnalysis,
};
use crate::chart::{BarChart, MatrixChart, SeriesChart};
use crate::corpus_stats::{corpus_stats, render_defect_report, CorpusStats};
use crate::correlation::fig12_trigger_correlation;
use crate::effort::{fig08_classification_steps, fig09_agreement};
use crate::heredity::{fig03_heredity, HeredityAnalysis};
use crate::msrfig::{fig19_msr_witnesses, MsrWitnessAnalysis};
use crate::observations::{observations, render_observations, Observation};
use crate::timeline::{
    fig02_disclosure_timeline, fig04_shared_set_timeline, fig05_latency, LatencyAnalysis,
    SharedSetTimeline,
};
use crate::workfix::{fig06_workarounds, fig07_fixes, FixAnalysis, WorkaroundAnalysis};

/// Every figure and table of the paper, computed from one database.
#[derive(Debug, Clone)]
pub struct FullReport {
    /// Table III / Section IV-A statistics.
    pub stats: CorpusStats,
    /// Figure 2 (one chart per vendor).
    pub fig02: Vec<(Vendor, SeriesChart)>,
    /// Figure 3.
    pub fig03: HeredityAnalysis,
    /// Figure 4.
    pub fig04: SharedSetTimeline,
    /// Figure 5.
    pub fig05: LatencyAnalysis,
    /// Figure 6.
    pub fig06: WorkaroundAnalysis,
    /// Figure 7.
    pub fig07: FixAnalysis,
    /// Figure 8 (present when the four-eyes simulation ran).
    pub fig08: Option<SeriesChart>,
    /// Figure 9 (present when the four-eyes simulation ran).
    pub fig09: Option<SeriesChart>,
    /// Figure 10.
    pub fig10: Vec<(Vendor, BarChart)>,
    /// Figure 11.
    pub fig11: TriggerCountAnalysis,
    /// Figure 12.
    pub fig12: MatrixChart,
    /// Figure 13.
    pub fig13: MatrixChart,
    /// Figure 14.
    pub fig14: MatrixChart,
    /// Figure 15.
    pub fig15: MatrixChart,
    /// Figure 16.
    pub fig16: MatrixChart,
    /// Figure 17.
    pub fig17: Vec<(Vendor, BarChart)>,
    /// Figure 18.
    pub fig18: Vec<(Vendor, BarChart)>,
    /// Figure 19.
    pub fig19: MsrWitnessAnalysis,
    /// Observations O1-O13.
    pub observations: Vec<Observation>,
    /// The "errata in errata" report, if extraction ran.
    pub defects: Option<ExtractionReport>,
}

/// Runs one figure renderer under a named span, so `--trace` and the
/// duration histograms break the report down per figure.
fn timed<T>(name: &'static str, build: impl FnOnce() -> T) -> T {
    let _span = rememberr_obs::span(name);
    build()
}

impl FullReport {
    /// Computes every analysis over an annotated database.
    pub fn build(
        db: &Database,
        four_eyes: Option<&FourEyesOutcome>,
        defects: Option<ExtractionReport>,
    ) -> Self {
        let _span = rememberr_obs::span!("analysis.full_report");
        // Every figure reads the database immutably and independently, so
        // the passes fan out over four balanced worker lanes; each figure's
        // result lands in its named field regardless of lane scheduling.
        // With one job the lanes run sequentially in order.
        let (
            (stats, fig02, fig03, fig04, fig05),
            (fig06, fig07, fig08, fig09, fig10, fig11),
            (fig12, fig13, fig14, fig15, fig16),
            (fig17, fig18, fig19, observations),
        ) = rememberr_par::join4(
            || {
                (
                    timed("analysis.corpus_stats", || corpus_stats(db)),
                    timed("analysis.fig02", || {
                        Vendor::ALL
                            .iter()
                            .map(|&v| (v, fig02_disclosure_timeline(db, v)))
                            .collect()
                    }),
                    timed("analysis.fig03", || fig03_heredity(db)),
                    timed("analysis.fig04", || fig04_shared_set_timeline(db)),
                    timed("analysis.fig05", || fig05_latency(db)),
                )
            },
            || {
                (
                    timed("analysis.fig06", || fig06_workarounds(db)),
                    timed("analysis.fig07", || fig07_fixes(db)),
                    timed("analysis.fig08", || {
                        four_eyes.map(fig08_classification_steps)
                    }),
                    timed("analysis.fig09", || four_eyes.map(fig09_agreement)),
                    timed("analysis.fig10", || fig10_trigger_frequency(db, 10)),
                    timed("analysis.fig11", || fig11_trigger_counts(db)),
                )
            },
            || {
                (
                    timed("analysis.fig12", || fig12_trigger_correlation(db)),
                    timed("analysis.fig13", || fig13_class_evolution(db)),
                    timed("analysis.fig14", || fig14_class_share(db)),
                    timed("analysis.fig15", || fig15_external_breakdown(db)),
                    timed("analysis.fig16", || fig16_feature_breakdown(db)),
                )
            },
            || {
                (
                    timed("analysis.fig17", || fig17_context_frequency(db, 10)),
                    timed("analysis.fig18", || fig18_effect_frequency(db, 10)),
                    timed("analysis.fig19", || fig19_msr_witnesses(db, 8)),
                    timed("analysis.observations", || observations(db)),
                )
            },
        );
        Self {
            stats,
            fig02,
            fig03,
            fig04,
            fig05,
            fig06,
            fig07,
            fig08,
            fig09,
            fig10,
            fig11,
            fig12,
            fig13,
            fig14,
            fig15,
            fig16,
            fig17,
            fig18,
            fig19,
            observations,
            defects,
        }
    }

    /// Renders the complete report as text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.stats.render_text());
        out.push('\n');
        if let Some(defects) = &self.defects {
            out.push_str(&render_defect_report(defects));
            out.push('\n');
        }
        for (_, chart) in &self.fig02 {
            out.push_str(&chart.render_text(48));
            out.push('\n');
        }
        out.push_str(&self.fig03.matrix.render_text());
        out.push_str(&format!(
            "Core1->Core10 bugs: {}\n\n",
            self.fig03.core1_to_core10
        ));
        out.push_str(&self.fig04.chart.render_text(48));
        out.push_str(&format!("shared bugs: {}\n\n", self.fig04.shared_bugs));
        out.push_str(&self.fig05.chart.render_text(48));
        out.push_str(&format!(
            "forward-latent: {}, backward-latent: {}\n\n",
            self.fig05.forward, self.fig05.backward
        ));
        for (_, chart) in &self.fig06.charts {
            out.push_str(&chart.render_text(40));
            out.push('\n');
        }
        out.push_str(&self.fig07.matrix.render_text());
        out.push_str(&format!(
            "fixed or planned: {:.1}%\n\n",
            100.0 * self.fig07.fixed_fraction
        ));
        if let (Some(f8), Some(f9)) = (&self.fig08, &self.fig09) {
            out.push_str(&f8.render_text(14));
            out.push('\n');
            out.push_str(&f9.render_text(14));
            out.push('\n');
        }
        for (_, chart) in &self.fig10 {
            out.push_str(&chart.render_text(40));
            out.push('\n');
        }
        out.push_str(&self.fig11.chart.render_text(40));
        out.push_str(&format!(
            "no clear trigger: {:.1}%; needing >=2 triggers: {:.1}%\n\n",
            100.0 * self.fig11.no_clear_trigger,
            100.0 * self.fig11.multi_trigger
        ));
        out.push_str(&self.fig12.render_text());
        out.push('\n');
        out.push_str(&self.fig13.render_text());
        out.push('\n');
        out.push_str(&self.fig14.render_text());
        out.push('\n');
        out.push_str(&self.fig15.render_text());
        out.push('\n');
        out.push_str(&self.fig16.render_text());
        out.push('\n');
        for (_, chart) in &self.fig17 {
            out.push_str(&chart.render_text(40));
            out.push('\n');
        }
        for (_, chart) in &self.fig18 {
            out.push_str(&chart.render_text(40));
            out.push('\n');
        }
        for (_, chart) in &self.fig19.charts {
            out.push_str(&chart.render_text(40));
            out.push('\n');
        }
        out.push_str(&render_observations(&self.observations));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
    use rememberr_extract::extract_corpus;

    #[test]
    fn full_report_builds_and_renders() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.15));
        let (docs, defects) =
            extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str()))).unwrap();
        let mut db = Database::from_documents(&docs);
        let run = classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        let report = FullReport::build(&db, run.four_eyes.as_ref(), Some(defects));
        let text = report.render_text();
        for needle in [
            "Corpus statistics",
            "Errata in errata",
            "Fig. 2",
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "Fig. 11",
            "Fig. 12",
            "Fig. 13",
            "Fig. 14",
            "Fig. 15",
            "Fig. 16",
            "Fig. 17",
            "Fig. 18",
            "Fig. 19",
            "Observations O1-O13",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(report.observations.len(), 13);
    }
}
