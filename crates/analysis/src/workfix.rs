//! Figures 6 and 7: workarounds and fixes.

use rememberr::{Database, Query};
use rememberr_model::{Design, FixStatus, Vendor, WorkaroundCategory};

use crate::chart::{BarChart, MatrixChart};

/// Figure 6 result: workaround mix per vendor plus the headline number.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkaroundAnalysis {
    /// One chart per vendor over unique errata (% per category).
    pub charts: Vec<(Vendor, BarChart)>,
    /// Fraction of unique errata without any suggested workaround, per
    /// vendor (paper: Intel 35.9%, AMD 28.9% — Observation O5).
    pub no_workaround: Vec<(Vendor, f64)>,
}

/// Figure 6: suggested workarounds of errata by category (identical errata
/// merged).
pub fn fig06_workarounds(db: &Database) -> WorkaroundAnalysis {
    let index = db.query_index();
    let mut charts = Vec::new();
    let mut no_workaround = Vec::new();
    for &vendor in &Vendor::ALL {
        let vendor_uniques = Query::new().vendor(vendor).unique_only();
        let total = vendor_uniques.count_indexed(index, db).max(1);
        let mut chart = BarChart::new(format!("Fig. 6 — Workarounds by category ({vendor})"), "%");
        let mut none = 0usize;
        for category in WorkaroundCategory::ALL {
            let n = vendor_uniques
                .clone()
                .workaround(category)
                .count_indexed(index, db);
            if category == WorkaroundCategory::None {
                none = n;
            }
            chart.push(category.to_string(), 100.0 * n as f64 / total as f64);
        }
        no_workaround.push((vendor, none as f64 / total as f64));
        charts.push((vendor, chart));
    }
    WorkaroundAnalysis {
        charts,
        no_workaround,
    }
}

/// Figure 7 result: fixes per design plus the headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct FixAnalysis {
    /// Rows = designs, cols = `fixed`, `fix planned`, `unfixed`,
    /// `doc change`; cells = unique-bug counts attributed to the design.
    pub matrix: MatrixChart,
    /// Overall fraction of unique bugs whose root cause was (or will be)
    /// fixed (Observation O6: the vast majority of bugs are never fixed).
    pub fixed_fraction: f64,
}

/// Figure 7: proportion of fixed vs unfixed bugs per design.
pub fn fig07_fixes(db: &Database) -> FixAnalysis {
    let cols = vec![
        "fixed".to_string(),
        "fix planned".to_string(),
        "unfixed".to_string(),
        "doc change".to_string(),
    ];
    let mut matrix = MatrixChart::zeros(
        "Fig. 7 — Fixed vs unfixed bugs per design",
        Design::ALL.iter().map(|d| d.label().to_string()).collect(),
        cols,
    );
    for (row, &design) in Design::ALL.iter().enumerate() {
        let mut seen = std::collections::BTreeSet::new();
        for entry in db.entries_for(design) {
            let Some(key) = entry.key else { continue };
            if !seen.insert(key) {
                continue;
            }
            let col = match entry.fix {
                FixStatus::Fixed => 0,
                FixStatus::FixPlanned => 1,
                FixStatus::NoFixPlanned => 2,
                FixStatus::DocumentationChange => 3,
            };
            *matrix.get_mut(row, col) += 1.0;
        }
    }

    let index = db.query_index();
    let uniques = Query::new().unique_only().count_indexed(index, db);
    let fixed = Query::new()
        .fix(FixStatus::Fixed)
        .unique_only()
        .count_indexed(index, db)
        + Query::new()
            .fix(FixStatus::FixPlanned)
            .unique_only()
            .count_indexed(index, db);
    FixAnalysis {
        matrix,
        fixed_fraction: fixed as f64 / uniques.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::SyntheticCorpus;

    fn paper_db() -> Database {
        let corpus = SyntheticCorpus::paper();
        Database::from_documents(&corpus.structured)
    }

    #[test]
    fn fig06_no_workaround_rates_match_paper() {
        let analysis = fig06_workarounds(&paper_db());
        let intel = analysis.no_workaround[0].1;
        let amd = analysis.no_workaround[1].1;
        assert!((intel - 0.359).abs() < 0.05, "Intel {intel}");
        assert!((amd - 0.289).abs() < 0.05, "AMD {amd}");
    }

    #[test]
    fn fig06_percentages_sum_to_hundred() {
        let analysis = fig06_workarounds(&paper_db());
        for (vendor, chart) in &analysis.charts {
            let sum: f64 = chart.rows.iter().map(|(_, v)| v).sum();
            assert!((sum - 100.0).abs() < 1e-6, "{vendor}: {sum}");
        }
    }

    #[test]
    fn fig06_documentation_fixes_are_negligible() {
        // The paper: documentation fixes are < 0.5% of all errata. Per
        // vendor the count is single-digit, so assert on the combined rate.
        let db = paper_db();
        let uniques = db.unique_entries();
        let docfix = uniques
            .iter()
            .filter(|e| e.workaround == WorkaroundCategory::DocumentationFix)
            .count();
        let rate = docfix as f64 / uniques.len() as f64;
        assert!(rate < 0.012, "{rate}");
    }

    #[test]
    fn fig07_bugs_are_rarely_fixed() {
        let analysis = fig07_fixes(&paper_db());
        assert!(
            analysis.fixed_fraction < 0.25,
            "{}",
            analysis.fixed_fraction
        );
        assert!(analysis.fixed_fraction > 0.02);
    }

    #[test]
    fn fig07_recent_intel_trend_toward_fixing() {
        let analysis = fig07_fixes(&paper_db());
        let m = &analysis.matrix;
        let rate = |row: usize| {
            let fixed = m.get(row, 0) + m.get(row, 1);
            let total: f64 = (0..4).map(|c| m.get(row, c)).sum();
            fixed / total.max(1.0)
        };
        // Average fix rate of the last three Intel documents exceeds the
        // first three (the paper's weak trend).
        let early: f64 = (0..3).map(rate).sum::<f64>() / 3.0;
        let late: f64 = (13..16).map(rate).sum::<f64>() / 3.0;
        assert!(late > early, "early {early}, late {late}");
    }

    #[test]
    fn fig07_rows_cover_document_uniques() {
        let db = paper_db();
        let analysis = fig07_fixes(&db);
        for (row, &design) in Design::ALL.iter().enumerate() {
            let total: f64 = (0..4).map(|c| analysis.matrix.get(row, c)).sum();
            let uniques = crate::util::keys_in_document(&db, design).len();
            assert_eq!(total as usize, uniques, "{design}");
        }
    }
}
