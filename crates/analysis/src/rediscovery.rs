//! Section IV-B2 ("Rediscovery"): of the errata shared between designs,
//! how many were confirmed on the later design immediately at its release,
//! and how many had to be rediscovered later?

use rememberr::Database;
use rememberr_model::{Date, Design, Vendor};

use crate::chart::BarChart;

/// Rediscovery statistics for one pair of (earlier design, later design).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RediscoveryStats {
    /// Shared bugs already known (in the earlier document) before the later
    /// design's release.
    pub known_before_release: usize,
    /// Of those, bugs the later document listed right at its release.
    pub confirmed_at_release: usize,
    /// Of those, bugs the later document only listed in a later revision —
    /// the rediscoveries.
    pub rediscovered_later: usize,
}

/// Computes rediscovery statistics for every consecutive pair of unified
/// Intel documents (the paper restricts chronology analyses to Intel).
pub fn rediscovery_by_pair(db: &Database) -> Vec<(Design, Design, RediscoveryStats)> {
    let docs: Vec<Design> = Design::intel().collect();
    let mut out = Vec::new();
    for pair in docs.windows(2) {
        let (earlier, later) = (pair[0], pair[1]);
        out.push((earlier, later, rediscovery_stats(db, earlier, later)));
    }
    out
}

/// Rediscovery statistics for one ordered pair of designs.
pub fn rediscovery_stats(db: &Database, earlier: Design, later: Design) -> RediscoveryStats {
    let release: Date = later.release_date();
    let mut stats = RediscoveryStats {
        known_before_release: 0,
        confirmed_at_release: 0,
        rediscovered_later: 0,
    };
    for rep in db.unique_entries() {
        if rep.vendor() != Vendor::Intel {
            continue;
        }
        let key = rep.key.expect("keyed");
        let mut in_earlier_before_release = false;
        let mut later_first: Option<(u32, Date)> = None;
        for entry in db.cluster(key) {
            if entry.design() == earlier && entry.provenance.disclosure_date < release {
                in_earlier_before_release = true;
            }
            if entry.design() == later {
                let cand = (
                    entry.provenance.first_revision,
                    entry.provenance.disclosure_date,
                );
                if later_first.is_none_or(|cur| cand < cur) {
                    later_first = Some(cand);
                }
            }
        }
        let Some((first_revision, _)) = later_first else {
            continue;
        };
        if !in_earlier_before_release {
            continue;
        }
        stats.known_before_release += 1;
        if first_revision <= 1 {
            stats.confirmed_at_release += 1;
        } else {
            stats.rediscovered_later += 1;
        }
    }
    stats
}

/// The rediscovery fractions as a chart: per consecutive Intel pair, the
/// percentage of pre-known shared bugs that still had to be rediscovered
/// after the later design's release.
pub fn rediscovery_chart(db: &Database) -> BarChart {
    let mut chart = BarChart::new(
        "Rediscovery — pre-known shared bugs not listed at release",
        "%",
    );
    for (earlier, later, stats) in rediscovery_by_pair(db) {
        if stats.known_before_release == 0 {
            continue;
        }
        chart.push(
            format!("{} -> {}", earlier.label(), later.label()),
            100.0 * stats.rediscovered_later as f64 / stats.known_before_release as f64,
        );
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::SyntheticCorpus;

    fn paper_db() -> Database {
        let corpus = SyntheticCorpus::paper();
        Database::from_documents(&corpus.structured)
    }

    #[test]
    fn stats_are_internally_consistent() {
        let db = paper_db();
        for (earlier, later, stats) in rediscovery_by_pair(&db) {
            assert_eq!(
                stats.confirmed_at_release + stats.rediscovered_later,
                stats.known_before_release,
                "{earlier} -> {later}"
            );
        }
    }

    #[test]
    fn most_preknown_bugs_are_confirmed_at_release() {
        // O4's mechanism: forward-propagated bugs are usually listed in the
        // later document's first revision.
        let db = paper_db();
        let stats = rediscovery_stats(&db, Design::Intel6, Design::Intel7_8);
        assert!(stats.known_before_release > 50);
        assert!(
            stats.confirmed_at_release > stats.rediscovered_later,
            "{stats:?}"
        );
    }

    #[test]
    fn chart_has_rows_for_sharing_pairs() {
        let db = paper_db();
        let chart = rediscovery_chart(&db);
        assert!(!chart.rows.is_empty());
        for (_, pct) in &chart.rows {
            assert!((0.0..=100.0).contains(pct));
        }
    }
}
