//! Property-based laws of the query interface: filters are conjunctive, so
//! adding conditions never grows the result set, and every result actually
//! satisfies the conditions.

use proptest::prelude::*;
use rememberr::{Database, Query};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{Context, Effect, Trigger, Vendor};

use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.1));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    })
}

/// A serializable description of one query condition.
#[derive(Debug, Clone)]
enum Cond {
    Vendor(bool),
    Trigger(usize),
    Context(usize),
    Effect(usize),
    MinTriggers(usize),
    Unique,
}

fn apply(query: Query, cond: &Cond) -> Query {
    match cond {
        Cond::Vendor(intel) => query.vendor(if *intel { Vendor::Intel } else { Vendor::Amd }),
        Cond::Trigger(i) => query.trigger(Trigger::ALL[i % Trigger::ALL.len()]),
        Cond::Context(i) => query.context(Context::ALL[i % Context::ALL.len()]),
        Cond::Effect(i) => query.effect(Effect::ALL[i % Effect::ALL.len()]),
        Cond::MinTriggers(n) => query.min_triggers(n % 4),
        Cond::Unique => query.unique_only(),
    }
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        any::<bool>().prop_map(Cond::Vendor),
        (0usize..64).prop_map(Cond::Trigger),
        (0usize..64).prop_map(Cond::Context),
        (0usize..64).prop_map(Cond::Effect),
        (0usize..4).prop_map(Cond::MinTriggers),
        Just(Cond::Unique),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adding_trigger_conditions_shrinks_results(conds in prop::collection::vec(cond_strategy(), 0..4), extra in 0usize..64) {
        let db = db();
        let base = conds.iter().fold(Query::new(), apply);
        let narrowed = apply(base.clone(), &Cond::Trigger(extra));
        prop_assert!(narrowed.count(db) <= base.count(db));
    }

    #[test]
    fn results_satisfy_their_conditions(trigger in 0usize..64, effect in 0usize..64) {
        let db = db();
        let t = Trigger::ALL[trigger % Trigger::ALL.len()];
        let e = Effect::ALL[effect % Effect::ALL.len()];
        let query = Query::new().trigger(t).effect(e);
        for hit in query.run(db) {
            let ann = hit.annotation.as_ref().expect("annotated db");
            prop_assert!(ann.triggers.contains(t));
            prop_assert!(ann.effects.contains(e));
        }
    }

    #[test]
    fn unique_results_are_disjoint_cluster_representatives(conds in prop::collection::vec(cond_strategy(), 0..3)) {
        let db = db();
        let query = conds.iter().fold(Query::new(), apply).unique_only();
        let hits = query.run(db);
        let mut keys: Vec<_> = hits.iter().map(|e| e.key.expect("keyed")).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "duplicate clusters in unique results");
    }

    #[test]
    fn vendor_partition_is_exact(conds in prop::collection::vec(cond_strategy(), 0..3)) {
        // Restricting to Intel plus restricting to AMD partitions the
        // unrestricted result set (vendor conditions override each other,
        // so only apply to a vendor-free base).
        let db = db();
        let vendor_free: Vec<Cond> = conds
            .into_iter()
            .filter(|c| !matches!(c, Cond::Vendor(_)))
            .collect();
        let base = vendor_free.iter().fold(Query::new(), apply);
        let all = base.count(db);
        let intel = base.clone().vendor(Vendor::Intel).count(db);
        let amd = base.vendor(Vendor::Amd).count(db);
        prop_assert_eq!(all, intel + amd);
    }
}
