//! Property-based equivalence of the cascade candidate generators.
//!
//! Random Intel entries over a small shared vocabulary (so titles collide
//! and overlap often) with a handful of shared description bodies: keying
//! with the indexed generator must produce exactly the same clusters and
//! merge counts as the exhaustive oracle — the observable consequence of
//! the candidate index never pruning a pair that could pass the threshold.

use proptest::prelude::*;
use rememberr::{assign_keys_with, CandidateGen, DedupStrategy};
use rememberr_model::{Date, Design, Erratum, ErratumId, Provenance};

fn entry(number: u32, title: &str, description: &str) -> rememberr::DbEntry {
    rememberr::DbEntry::new(
        Erratum {
            id: ErratumId::new(Design::Intel6, number),
            title: title.to_string(),
            description: description.to_string(),
            implications: String::new(),
            workaround: "None identified.".into(),
            status: "No fix planned.".into(),
        },
        Provenance::from_revision_log(1, Date::new(2016, 1, 15).unwrap()),
    )
}

const WORDS: [&str; 12] = [
    "warm",
    "reset",
    "processor",
    "hang",
    "cache",
    "x87",
    "fdp",
    "value",
    "save",
    "usb",
    "pcie",
    "machine",
];
const BODIES: [&str; 3] = ["body alpha", "body beta", "body gamma"];

fn title_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..WORDS.len(), 0..6).prop_map(|idxs| {
        idxs.into_iter()
            .map(|i| WORDS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_clustering_equals_exhaustive_oracle(
        specs in prop::collection::vec((title_strategy(), 0usize..BODIES.len()), 0..16),
    ) {
        let build = || -> Vec<rememberr::DbEntry> {
            specs
                .iter()
                .enumerate()
                .map(|(i, (title, body))| entry(i as u32, title, BODIES[*body]))
                .collect()
        };
        let mut indexed = build();
        let mut exhaustive = build();
        let si = assign_keys_with(&mut indexed, DedupStrategy::default(), CandidateGen::Indexed);
        let se = assign_keys_with(
            &mut exhaustive,
            DedupStrategy::default(),
            CandidateGen::Exhaustive,
        );
        let ki: Vec<_> = indexed.iter().map(|e| e.key).collect();
        let ke: Vec<_> = exhaustive.iter().map(|e| e.key).collect();
        prop_assert_eq!(ki, ke);
        prop_assert_eq!(si.clusters, se.clusters);
        prop_assert_eq!(si.cascade_merges, se.cascade_merges);
        prop_assert!(si.comparisons_made <= se.comparisons_made);
    }
}
