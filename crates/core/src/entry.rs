//! Database entries: one per erratum listing, annotated and keyed.

use rememberr_model::{
    Annotation, Design, Erratum, ErratumId, FixStatus, Provenance, UniqueKey, Vendor,
    WorkaroundCategory,
};
use serde::{Deserialize, Serialize};

/// One erratum listing in the RemembERR database.
///
/// A bug that appears in several documents yields several entries sharing a
/// [`UniqueKey`]; deduplicated analyses work per key (see
/// [`crate::Database::unique_entries`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbEntry {
    /// The raw erratum as extracted from its document.
    pub erratum: Erratum,
    /// Where and when it surfaced.
    pub provenance: Provenance,
    /// Workaround category classified from the workaround text (Figure 6).
    pub workaround: WorkaroundCategory,
    /// Fix status classified from the status text (Figure 7).
    pub fix: FixStatus,
    /// Trigger/context/effect annotation; `None` until classified.
    pub annotation: Option<Annotation>,
    /// Duplicate-cluster key; `None` until deduplication ran.
    pub key: Option<UniqueKey>,
    /// Stepping carrying the fix, from the document's summary table of
    /// changes (`None` when the table lists no fix for this erratum).
    #[serde(default)]
    pub fixed_in: Option<String>,
}

impl DbEntry {
    /// Builds an entry from a raw erratum and its provenance, classifying
    /// the workaround and status fields on the way.
    pub fn new(erratum: Erratum, provenance: Provenance) -> Self {
        let workaround = WorkaroundCategory::classify(&erratum.workaround);
        let fix = FixStatus::classify(&erratum.status);
        Self {
            erratum,
            provenance,
            workaround,
            fix,
            annotation: None,
            key: None,
            fixed_in: None,
        }
    }

    /// The erratum identifier.
    pub fn id(&self) -> ErratumId {
        self.erratum.id
    }

    /// The design whose document lists this entry.
    pub fn design(&self) -> Design {
        self.erratum.id.design
    }

    /// The vendor of the design.
    pub fn vendor(&self) -> Vendor {
        self.design().vendor()
    }

    /// The annotation, or an empty one if unclassified.
    pub fn annotation_or_empty(&self) -> Annotation {
        self.annotation.clone().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::Date;

    fn entry() -> DbEntry {
        DbEntry::new(
            Erratum {
                id: ErratumId::new(Design::Intel6, 95),
                title: "A Title".into(),
                description: "A description.".into(),
                implications: "System may hang.".into(),
                workaround: "It is possible for the BIOS to contain a workaround.".into(),
                status: "No fix planned.".into(),
            },
            Provenance::from_revision_log(3, Date::new(2016, 2, 15).unwrap()),
        )
    }

    #[test]
    fn classifies_fields_on_construction() {
        let e = entry();
        assert_eq!(e.workaround, WorkaroundCategory::Bios);
        assert_eq!(e.fix, FixStatus::NoFixPlanned);
        assert!(e.annotation.is_none());
        assert!(e.key.is_none());
        assert!(e.fixed_in.is_none());
    }

    #[test]
    fn accessors() {
        let e = entry();
        assert_eq!(e.id().number, 95);
        assert_eq!(e.design(), Design::Intel6);
        assert_eq!(e.vendor(), Vendor::Intel);
        assert!(e.annotation_or_empty().triggers.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let e = entry();
        let json = serde_json::to_string(&e).unwrap();
        let back: DbEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
