//! The RemembERR database.

use std::collections::HashMap;

use rememberr_model::{Annotation, Design, ErrataDocument, ErratumId, UniqueKey, Vendor};
use serde::{DeError, Deserialize, Serialize, Value};

use rememberr_textkit::{AnalyzedCorpus, DocText};

use crate::candidates::CandidateGen;
use crate::dedup::{assign_keys_analyzed, assign_keys_with, DedupStats, DedupStrategy};
use crate::entry::DbEntry;
use crate::index::{QueryIndex, QueryIndexCell};

/// The annotated, keyed errata database — the paper's primary artifact.
///
/// # Examples
///
/// ```
/// use rememberr::Database;
/// use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
///
/// let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.02));
/// let db = Database::from_documents(&corpus.structured);
/// assert_eq!(db.len(), corpus.truth.grand_total());
/// assert!(db.unique_count() <= db.len());
/// ```
/// Identity (equality, serialization) is the entries plus dedup
/// statistics; the cached query index is a derived acceleration structure
/// and never part of either — see the manual `PartialEq`/`Serialize`/
/// `Deserialize` impls below.
#[derive(Debug, Clone, Default)]
pub struct Database {
    entries: Vec<DbEntry>,
    dedup_stats: DedupStats,
    index: QueryIndexCell,
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        (&self.entries, &self.dedup_stats) == (&other.entries, &other.dedup_stats)
    }
}

impl Serialize for Database {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("entries".to_string(), self.entries.to_value()),
            ("dedup_stats".to_string(), self.dedup_stats.to_value()),
        ])
    }
}

impl Deserialize for Database {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_object().is_none() {
            return Err(DeError::mismatch("object", value));
        }
        let field = |name: &str| value.get(name).ok_or_else(|| DeError::missing(name));
        Ok(Database {
            entries: field("entries").and_then(Vec::<DbEntry>::from_value)?,
            dedup_stats: field("dedup_stats").and_then(DedupStats::from_value)?,
            index: QueryIndexCell::default(),
        })
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from structured documents and runs the default
    /// duplicate keying.
    ///
    /// Disclosure dates are approximated from the revision histories
    /// (Section IV-B1): earliest revision claiming the erratum, neighbor
    /// interpolation for unmentioned errata.
    pub fn from_documents(documents: &[ErrataDocument]) -> Self {
        Self::from_documents_with(documents, DedupStrategy::default())
    }

    /// Like [`Database::from_documents`] with an explicit dedup strategy.
    pub fn from_documents_with(documents: &[ErrataDocument], strategy: DedupStrategy) -> Self {
        Self::from_documents_opts(documents, strategy, CandidateGen::default())
    }

    /// Like [`Database::from_documents_with`] with an explicit cascade
    /// candidate generator. The generator never changes the resulting
    /// database — only how much similarity-scoring work dedup performs.
    pub fn from_documents_opts(
        documents: &[ErrataDocument],
        strategy: DedupStrategy,
        candidates: CandidateGen,
    ) -> Self {
        let mut entries = build_entries(documents);
        let dedup_stats = assign_keys_with(&mut entries, strategy, candidates);
        Self {
            entries,
            dedup_stats,
            index: QueryIndexCell::default(),
        }
    }

    /// Like [`Database::from_documents_opts`], but analyzes the whole
    /// corpus once up front and returns the [`AnalyzedCorpus`] alongside
    /// the database so classification and analysis reuse the same
    /// tokenization instead of re-deriving it per stage.
    ///
    /// The corpus is aligned with [`Database::entries`]: index `i` holds
    /// the analysis of entry `i` (keying assigns cluster keys in place and
    /// never reorders). Intel entries are title-analyzed for dedup; the
    /// resulting database is byte-identical to the per-stage path.
    pub fn from_documents_analyzed(
        documents: &[ErrataDocument],
        strategy: DedupStrategy,
        candidates: CandidateGen,
    ) -> (Self, AnalyzedCorpus) {
        let mut entries = build_entries(documents);
        let corpus = AnalyzedCorpus::analyze(&entries, |e| DocText {
            text: e.erratum.full_text(),
            title_len: e.erratum.title.len(),
            analyze_title: e.vendor() == Vendor::Intel,
        });
        let dedup_stats = assign_keys_analyzed(&mut entries, strategy, candidates, &corpus);
        let db = Self {
            entries,
            dedup_stats,
            index: QueryIndexCell::default(),
        };
        // Downstream consumers (classification, highlight assist) read the
        // arena only at representative positions — resolved exactly the way
        // they resolve them: one representative per unique key, mapped to
        // its first entry index. Release the rest of the token buffers so
        // the match-heavy stages run against a much smaller resident arena.
        let mut index_of: HashMap<ErratumId, usize> = HashMap::new();
        for (i, entry) in db.entries.iter().enumerate() {
            index_of.entry(entry.id()).or_insert(i);
        }
        let keep: Vec<usize> = db
            .unique_entries()
            .iter()
            .map(|e| index_of[&e.id()])
            .collect();
        let mut corpus = corpus;
        corpus.release_texts_except(keep);
        (db, corpus)
    }

    /// Number of entries (errata listings, duplicates counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[DbEntry] {
        &self.entries
    }

    /// Statistics from the duplicate-keying run.
    pub fn dedup_stats(&self) -> DedupStats {
        self.dedup_stats
    }

    /// The query index for this database, built lazily on first use and
    /// cached until the next mutation (every `&mut self` method
    /// invalidates it). Safe to call from concurrent readers: one builds,
    /// the rest share the result.
    pub fn query_index(&self) -> &QueryIndex {
        self.index.get_or_build(|| QueryIndex::build(self))
    }

    /// Debug guard every `&mut self` mutator ends with: a mutation that
    /// leaves a built index cached would serve stale query results.
    fn debug_assert_index_invalidated(&self) {
        debug_assert!(
            !self.index.is_built(),
            "database mutation left a built query index behind"
        );
    }

    /// Restores dedup statistics (used when loading a persisted database).
    pub(crate) fn restore_dedup_stats(&mut self, stats: DedupStats) {
        self.index.invalidate();
        self.dedup_stats = stats;
        self.debug_assert_index_invalidated();
    }

    /// Entries listed by a given design's document.
    pub fn entries_for(&self, design: Design) -> impl Iterator<Item = &DbEntry> {
        self.entries.iter().filter(move |e| e.design() == design)
    }

    /// Looks up an entry by identifier (first match for collided numbers).
    pub fn entry(&self, id: ErratumId) -> Option<&DbEntry> {
        self.entries.iter().find(|e| e.id() == id)
    }

    /// Mutable lookup, for attaching annotations.
    pub fn entry_mut(&mut self, id: ErratumId) -> Option<&mut DbEntry> {
        self.index.invalidate();
        self.debug_assert_index_invalidated();
        self.entries.iter_mut().find(|e| e.id() == id)
    }

    /// Attaches an annotation to every entry of the cluster containing `id`.
    ///
    /// Returns the number of entries annotated (0 if the id is unknown).
    /// Name-collision identifiers resolve to the first matching entry's
    /// cluster; use [`Database::annotate_key`] for unambiguous addressing.
    pub fn annotate_cluster(&mut self, id: ErratumId, annotation: Annotation) -> usize {
        match self.entry(id).and_then(|e| e.key) {
            Some(key) => self.annotate_key(key, annotation),
            None => 0,
        }
    }

    /// Attaches an annotation to every entry with the given unique key.
    ///
    /// Returns the number of entries annotated.
    pub fn annotate_key(&mut self, key: UniqueKey, annotation: Annotation) -> usize {
        self.index.invalidate();
        let mut n = 0;
        for e in &mut self.entries {
            if e.key == Some(key) {
                e.annotation = Some(annotation.clone());
                n += 1;
            }
        }
        self.debug_assert_index_invalidated();
        n
    }

    /// One representative entry per unique key: the earliest disclosure
    /// (ties broken by design order, then number).
    ///
    /// The paper's deduplicated ("unique errata") analyses run over exactly
    /// this view.
    pub fn unique_entries(&self) -> Vec<&DbEntry> {
        let mut best: HashMap<UniqueKey, &DbEntry> = HashMap::new();
        for e in &self.entries {
            let Some(key) = e.key else { continue };
            best.entry(key)
                .and_modify(|cur| {
                    let cand = (
                        e.provenance.disclosure_date,
                        e.design().index(),
                        e.id().number,
                    );
                    let incumbent = (
                        cur.provenance.disclosure_date,
                        cur.design().index(),
                        cur.id().number,
                    );
                    if cand < incumbent {
                        *cur = e;
                    }
                })
                .or_insert(e);
        }
        let mut out: Vec<&DbEntry> = best.into_values().collect();
        out.sort_by_key(|e| e.key);
        out
    }

    /// Number of unique bugs (clusters).
    pub fn unique_count(&self) -> usize {
        self.dedup_stats.clusters
    }

    /// Number of unique bugs for one vendor.
    pub fn unique_count_for(&self, vendor: Vendor) -> usize {
        self.unique_entries()
            .iter()
            .filter(|e| e.vendor() == vendor)
            .count()
    }

    /// Number of entries for one vendor.
    pub fn total_count_for(&self, vendor: Vendor) -> usize {
        self.entries.iter().filter(|e| e.vendor() == vendor).count()
    }

    /// Merges another database into this one and re-runs duplicate keying
    /// over the combined entries (cross-database duplicates cluster
    /// together; annotations and provenance are preserved).
    ///
    /// Returns the new dedup statistics. This is how a future corpus — say,
    /// a new generation's errata document — joins an existing database, the
    /// extension path the paper's Section VII describes.
    pub fn merge(&mut self, other: Database, strategy: DedupStrategy) -> DedupStats {
        self.index.invalidate();
        self.entries.extend(other.entries);
        for entry in &mut self.entries {
            entry.key = None;
        }
        self.dedup_stats = assign_keys_with(&mut self.entries, strategy, CandidateGen::default());
        self.debug_assert_index_invalidated();
        self.dedup_stats
    }

    /// All entries of the cluster containing `key`.
    pub fn cluster(&self, key: UniqueKey) -> impl Iterator<Item = &DbEntry> {
        self.entries.iter().filter(move |e| e.key == Some(key))
    }

    /// Designs listing the cluster `key`, in canonical order, deduplicated.
    pub fn cluster_designs(&self, key: UniqueKey) -> Vec<Design> {
        let mut designs: Vec<Design> = self.cluster(key).map(|e| e.design()).collect();
        designs.sort_by_key(|d| d.index());
        designs.dedup();
        designs
    }
}

/// Builds the unkeyed entry list from structured documents, in document
/// order, with approximated disclosure dates and fix steppings.
fn build_entries(documents: &[ErrataDocument]) -> Vec<DbEntry> {
    let mut entries = Vec::new();
    for doc in documents {
        let provenance = doc.approximate_disclosure_dates();
        for (erratum, prov) in doc.errata.iter().zip(provenance) {
            let mut entry = DbEntry::new(erratum.clone(), prov);
            entry.fixed_in = doc.fixed_in(erratum.id.number).map(str::to_string);
            entries.push(entry);
        }
    }
    entries
}

impl Extend<DbEntry> for Database {
    /// Extends the database with pre-keyed entries. Dedup statistics are
    /// not recomputed; call [`crate::assign_keys`] afterwards if needed.
    fn extend<I: IntoIterator<Item = DbEntry>>(&mut self, iter: I) {
        self.index.invalidate();
        self.entries.extend(iter);
        self.debug_assert_index_invalidated();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn small_db() -> (SyntheticCorpus, Database) {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.08));
        let db = Database::from_documents(&corpus.structured);
        (corpus, db)
    }

    #[test]
    fn entry_counts_match_corpus() {
        let (corpus, db) = small_db();
        assert_eq!(db.len(), corpus.truth.grand_total());
        for vendor in Vendor::ALL {
            assert_eq!(db.total_count_for(vendor), corpus.truth.total_count(vendor));
        }
    }

    #[test]
    fn unique_counts_match_ground_truth() {
        let (corpus, db) = small_db();
        for vendor in Vendor::ALL {
            assert_eq!(
                db.unique_count_for(vendor),
                corpus.truth.unique_count(vendor),
                "{vendor}"
            );
        }
        assert_eq!(db.unique_count(), corpus.truth.bugs.len());
    }

    #[test]
    fn paper_scale_unique_counts_are_exact() {
        let corpus = SyntheticCorpus::paper();
        let db = Database::from_documents(&corpus.structured);
        assert_eq!(db.len(), 2_563);
        assert_eq!(db.total_count_for(Vendor::Intel), 2_057);
        assert_eq!(db.total_count_for(Vendor::Amd), 506);
        assert_eq!(db.unique_count_for(Vendor::Intel), 743);
        assert_eq!(db.unique_count_for(Vendor::Amd), 385);
        assert_eq!(db.unique_count(), 1_128);
    }

    #[test]
    fn fixed_entries_carry_their_stepping() {
        let (_, db) = small_db();
        let with_stepping = db.entries().iter().filter(|e| e.fixed_in.is_some()).count();
        let fixed = db
            .entries()
            .iter()
            .filter(|e| e.fix == rememberr_model::FixStatus::Fixed)
            .count();
        assert_eq!(with_stepping, fixed, "every fixed entry names a stepping");
    }

    #[test]
    fn unique_entries_pick_earliest_disclosure() {
        let (_, db) = small_db();
        for rep in db.unique_entries() {
            let key = rep.key.unwrap();
            for other in db.cluster(key) {
                assert!(rep.provenance.disclosure_date <= other.provenance.disclosure_date);
            }
        }
    }

    #[test]
    fn annotate_cluster_spreads_to_all_members() {
        let (_, mut db) = small_db();
        // Find a multi-entry cluster.
        let key = db
            .unique_entries()
            .iter()
            .map(|e| e.key.unwrap())
            .find(|&k| db.cluster(k).count() >= 2)
            .expect("a shared bug exists");
        let id = db.cluster(key).next().unwrap().id();
        let n = db.annotate_cluster(id, Annotation::new());
        assert!(n >= 2);
        assert!(db.cluster(key).all(|e| e.annotation.is_some()));
    }

    #[test]
    fn cluster_designs_are_sorted_unique() {
        let (_, db) = small_db();
        for rep in db.unique_entries() {
            let designs = db.cluster_designs(rep.key.unwrap());
            assert!(!designs.is_empty());
            for pair in designs.windows(2) {
                assert!(pair[0].index() < pair[1].index());
            }
        }
    }

    #[test]
    fn merging_split_corpora_recovers_the_whole() {
        // Build the database from two halves of the corpus and merge: the
        // cluster structure must match building it in one shot.
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.1));
        let (first, second) = corpus.structured.split_at(14);
        let mut a = Database::from_documents(first);
        let b = Database::from_documents(second);
        let whole = Database::from_documents(&corpus.structured);

        let stats = a.merge(b, crate::dedup::DedupStrategy::default());
        assert_eq!(a.len(), whole.len());
        assert_eq!(stats.clusters, whole.unique_count());
        for vendor in Vendor::ALL {
            assert_eq!(
                a.unique_count_for(vendor),
                whole.unique_count_for(vendor),
                "{vendor}"
            );
        }
    }

    #[test]
    fn merge_preserves_annotations() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let (first, second) = corpus.structured.split_at(14);
        let mut a = Database::from_documents(first);
        let id = a.entries()[0].id();
        a.annotate_cluster(id, Annotation::new());
        let b = Database::from_documents(second);
        a.merge(b, crate::dedup::DedupStrategy::default());
        assert!(a.entry(id).unwrap().annotation.is_some());
    }

    #[test]
    fn empty_database() {
        let db = Database::new();
        assert!(db.is_empty());
        assert_eq!(db.unique_count(), 0);
        assert!(db.unique_entries().is_empty());
    }

    #[test]
    fn query_index_is_cached_and_invalidated_on_mutation() {
        let (corpus, mut db) = small_db();
        let first = db.query_index() as *const _;
        assert_eq!(first, db.query_index() as *const _, "second read is cached");

        // Annotating rebuilds the index with the new annotation visible.
        let before = crate::Query::new().annotated_only().count(&db);
        let id = corpus.truth.bugs[0].occurrences[0].id();
        let n = db.annotate_cluster(id, corpus.truth.bugs[0].profile.annotation.clone());
        assert!(n >= 1);
        let q = crate::Query::new().annotated_only();
        assert_eq!(q.count_indexed(db.query_index(), &db), before + n);
        assert_eq!(q.count_indexed(db.query_index(), &db), q.count(&db));
    }

    #[test]
    fn every_mutation_path_invalidates_the_query_index() {
        let (corpus, db) = small_db();
        let id = db.entries()[0].id();
        let key = db.unique_entries()[0].key.unwrap();
        let extra = db.entries()[0].clone();
        let annotation = corpus.truth.bugs[0].profile.annotation.clone();
        let stats = db.dedup_stats();

        type Mutation = Box<dyn FnOnce(&mut Database)>;
        let mutations: Vec<(&str, Mutation)> = vec![
            (
                "restore_dedup_stats",
                Box::new(move |db| db.restore_dedup_stats(stats)),
            ),
            (
                "entry_mut",
                Box::new(move |db| {
                    let _ = db.entry_mut(id);
                }),
            ),
            ("annotate_cluster", {
                let annotation = annotation.clone();
                Box::new(move |db| {
                    let _ = db.annotate_cluster(id, annotation);
                })
            }),
            (
                "annotate_key",
                Box::new(move |db| {
                    let _ = db.annotate_key(key, annotation);
                }),
            ),
            ("extend", Box::new(move |db| db.extend([extra]))),
            (
                "merge",
                Box::new(move |db| {
                    let _ = db.merge(Database::new(), crate::dedup::DedupStrategy::default());
                }),
            ),
        ];
        for (name, mutate) in mutations {
            let mut db = db.clone();
            let _ = db.query_index();
            assert!(db.index.is_built(), "{name}: index built before mutation");
            mutate(&mut db);
            assert!(!db.index.is_built(), "{name} left a built index cached");
        }
    }

    #[test]
    fn query_index_cache_is_outside_identity() {
        let (_, db) = small_db();
        let clone = db.clone();
        let _ = db.query_index();
        // Building the index changes neither equality nor serialization.
        assert_eq!(db, clone);
        assert_eq!(
            serde_json::to_string(&db).unwrap(),
            serde_json::to_string(&clone).unwrap()
        );
        let back: Database = serde_json::from_str(&serde_json::to_string(&db).unwrap()).unwrap();
        assert_eq!(back.entries(), db.entries());
        assert_eq!(back.dedup_stats(), db.dedup_stats());
    }
}
