//! Candidate-pair generation for the similarity cascade.
//!
//! The cascade only ever merges entry pairs with identical problem
//! descriptions, so candidates are confined to description groups. Within a
//! group, two generators are available:
//!
//! * [`CandidateGen::Indexed`] (default) — builds an interned
//!   [`Signature`] per participating entry and runs the threshold-derived
//!   inverted-index filters of [`rememberr_textkit::candidate_pairs`],
//!   pruning pairs that provably cannot reach the similarity threshold.
//! * [`CandidateGen::Exhaustive`] — the original all-pairs enumerator,
//!   kept as the correctness oracle (`--dedup-candidates exhaustive`).
//!
//! Pruning is lossless (the index generates a superset of every pair that
//! can pass) and cascade merges are order-independent under union-find, so
//! both generators yield identical clusters, identical `cascade_merges`,
//! and byte-identical database JSON.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use rememberr_textkit::{candidate_pairs, Interner, Signature, TitleKey};

/// How the cascade generates candidate pairs within a description group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CandidateGen {
    /// Inverted token index with threshold-derived prefix/length filters;
    /// scoring then runs over interned signatures with edit-distance fast
    /// paths.
    #[default]
    Indexed,
    /// Brute-force all-pairs enumeration with full similarity scoring —
    /// the correctness oracle the indexed path is checked against.
    Exhaustive,
}

impl FromStr for CandidateGen {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "indexed" => Ok(CandidateGen::Indexed),
            "exhaustive" => Ok(CandidateGen::Exhaustive),
            other => Err(format!(
                "invalid candidate generator {other:?} (expected \"indexed\" or \"exhaustive\")"
            )),
        }
    }
}

impl fmt::Display for CandidateGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CandidateGen::Indexed => "indexed",
            CandidateGen::Exhaustive => "exhaustive",
        })
    }
}

/// The cascade's scoring work list, produced by [`plan_cascade`].
pub(crate) struct CascadePlan {
    /// Entry-index pairs to score.
    pub pairs: Vec<(usize, usize)>,
    /// Pairs the index filters excluded without scoring (0 for the
    /// exhaustive generator).
    pub candidates_pruned: u64,
    /// Interned signatures for cascade participants (indexed generator
    /// only), aligned with the entry slice.
    pub signatures: Vec<Option<Signature>>,
}

/// Plans the cascade's candidate pairs over description `groups`.
///
/// `roots` holds each entry's pre-cascade union-find root: pairs already in
/// the same cluster are never candidates (merging them would be a no-op),
/// matching the original enumerator. Signatures are built lazily, only for
/// groups where a merge is still possible, and share one [`Interner`] so
/// token ids agree across groups.
pub(crate) fn plan_cascade(
    groups: &[Vec<usize>],
    roots: &[usize],
    title_keys: &[Option<TitleKey>],
    threshold: f64,
    gen: CandidateGen,
) -> CascadePlan {
    match gen {
        CandidateGen::Exhaustive => {
            let mut pairs = Vec::new();
            for group in groups {
                for (gi, &a) in group.iter().enumerate() {
                    for &b in &group[gi + 1..] {
                        if roots[a] != roots[b] {
                            pairs.push((a, b));
                        }
                    }
                }
            }
            CascadePlan {
                pairs,
                candidates_pruned: 0,
                signatures: Vec::new(),
            }
        }
        CandidateGen::Indexed => {
            let mut signatures: Vec<Option<Signature>> = vec![None; title_keys.len()];
            let mut interner = Interner::new();
            let mut pairs = Vec::new();
            let mut pruned = 0u64;
            for group in groups {
                let distinct: BTreeSet<usize> = group.iter().map(|&i| roots[i]).collect();
                if distinct.len() < 2 {
                    continue;
                }
                for &i in group {
                    if signatures[i].is_none() {
                        let key = title_keys[i].as_ref().expect("cascade entry is Intel");
                        signatures[i] = Some(Signature::from_title_key(key, &mut interner));
                    }
                }
                let refs: Vec<&Signature> = group
                    .iter()
                    .map(|&i| signatures[i].as_ref().expect("signature just built"))
                    .collect();
                let candidates = candidate_pairs(&refs, threshold);
                pruned += candidates.pruned as u64;
                for (li, lj) in candidates.pairs {
                    let (a, b) = (group[li], group[lj]);
                    if roots[a] != roots[b] {
                        pairs.push((a, b));
                    }
                }
            }
            CascadePlan {
                pairs,
                candidates_pruned: pruned,
                signatures,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(titles: &[&str]) -> Vec<Option<TitleKey>> {
        titles.iter().map(|t| Some(TitleKey::new(t))).collect()
    }

    #[test]
    fn candidate_gen_parses_and_displays() {
        assert_eq!("indexed".parse::<CandidateGen>(), Ok(CandidateGen::Indexed));
        assert_eq!(
            "exhaustive".parse::<CandidateGen>(),
            Ok(CandidateGen::Exhaustive)
        );
        assert!("fast".parse::<CandidateGen>().is_err());
        assert_eq!(CandidateGen::default(), CandidateGen::Indexed);
        assert_eq!(CandidateGen::Indexed.to_string(), "indexed");
    }

    #[test]
    fn exhaustive_enumerates_distinct_root_pairs_in_group_order() {
        let title_keys = keys(&["a b", "a b c", "a c", "z"]);
        let groups = vec![vec![0, 1, 2], vec![3]];
        let roots = vec![0, 1, 0, 3]; // 0 and 2 already share a cluster
        let plan = plan_cascade(&groups, &roots, &title_keys, 0.5, CandidateGen::Exhaustive);
        assert_eq!(plan.pairs, vec![(0, 1), (1, 2)]);
        assert_eq!(plan.candidates_pruned, 0);
    }

    #[test]
    fn indexed_covers_every_passing_exhaustive_pair() {
        let titles = [
            "warm reset processor hang",
            "warm reset processor hang case",
            "usb transfer drop packet",
            "pcie link retrain endlessly",
        ];
        let title_keys = keys(&titles);
        let groups = vec![vec![0, 1, 2, 3]];
        let roots = vec![0, 1, 2, 3];
        let threshold = 0.5;
        let exhaustive = plan_cascade(
            &groups,
            &roots,
            &title_keys,
            threshold,
            CandidateGen::Exhaustive,
        );
        let indexed = plan_cascade(
            &groups,
            &roots,
            &title_keys,
            threshold,
            CandidateGen::Indexed,
        );
        for &(a, b) in &exhaustive.pairs {
            let (ka, kb) = (
                title_keys[a].as_ref().unwrap(),
                title_keys[b].as_ref().unwrap(),
            );
            if ka.similarity(kb) >= threshold {
                assert!(
                    indexed.pairs.contains(&(a, b)),
                    "lost passing pair ({a}, {b})"
                );
            }
        }
        assert!(
            indexed.candidates_pruned > 0,
            "expected pruning on disjoint titles"
        );
    }

    #[test]
    fn indexed_skips_single_root_groups_entirely() {
        let title_keys = keys(&["a b", "a b"]);
        let groups = vec![vec![0, 1]];
        let roots = vec![0, 0];
        let plan = plan_cascade(&groups, &roots, &title_keys, 0.5, CandidateGen::Indexed);
        assert!(plan.pairs.is_empty());
        assert!(
            plan.signatures.iter().all(Option::is_none),
            "no signatures built"
        );
    }
}
