//! Candidate-pair generation for the similarity cascade.
//!
//! The cascade only ever merges entry pairs with identical problem
//! descriptions, so candidates are confined to description groups. Within a
//! group, two generators are available:
//!
//! * [`CandidateGen::Indexed`] (default) — runs the threshold-derived
//!   inverted-index filters of [`rememberr_textkit::candidate_pairs`] over
//!   interned [`Signature`]s, pruning pairs that provably cannot reach the
//!   similarity threshold. Groups smaller than [`INDEX_GROUP_CUTOVER`]
//!   skip index construction entirely — for a handful of members the
//!   posting lists cost more than the pairs they prune — and enumerate
//!   distinct-root pairs directly (scoring still uses the signature fast
//!   paths).
//! * [`CandidateGen::Exhaustive`] — the original all-pairs enumerator,
//!   kept as the correctness oracle (`--dedup-candidates exhaustive`).
//!
//! Pruning is lossless (the index generates a superset of every pair that
//! can pass) and cascade merges are order-independent under union-find, so
//! both generators yield identical clusters, identical `cascade_merges`,
//! and byte-identical database JSON.
//!
//! Signatures come from one of two places: the legacy path builds them
//! here, lazily, for groups where a merge is still possible
//! ([`plan_cascade`]); the single-pass path borrows them from an
//! [`AnalyzedCorpus`] that already interned every title
//! ([`plan_cascade_analyzed`]). [`PlanSignatures`] abstracts over the two
//! so the scoring loop in `dedup` is identical either way.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use rememberr_textkit::{candidate_pairs, AnalyzedCorpus, Interner, Signature, TitleKey};

/// How the cascade generates candidate pairs within a description group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CandidateGen {
    /// Inverted token index with threshold-derived prefix/length filters;
    /// scoring then runs over interned signatures with edit-distance fast
    /// paths.
    #[default]
    Indexed,
    /// Brute-force all-pairs enumeration with full similarity scoring —
    /// the correctness oracle the indexed path is checked against.
    Exhaustive,
}

/// Smallest group size for which the indexed generator builds the inverted
/// token index. Below this, document-frequency tallies and posting lists
/// cost more than scoring the few possible pairs directly — the source of
/// the small-scale wall-clock regression the dedup baseline exposed — so
/// tiny groups enumerate distinct-root pairs like the oracle does and rely
/// on the signature fast paths at scoring time.
pub(crate) const INDEX_GROUP_CUTOVER: usize = 8;

impl FromStr for CandidateGen {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "indexed" => Ok(CandidateGen::Indexed),
            "exhaustive" => Ok(CandidateGen::Exhaustive),
            other => Err(format!(
                "invalid candidate generator {other:?} (expected \"indexed\" or \"exhaustive\")"
            )),
        }
    }
}

impl fmt::Display for CandidateGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CandidateGen::Indexed => "indexed",
            CandidateGen::Exhaustive => "exhaustive",
        })
    }
}

/// Where a plan's scoring signatures live: built by the plan itself
/// (legacy per-stage path) or borrowed from the corpus-wide analysis arena
/// (single-pass path).
pub(crate) enum PlanSignatures<'a> {
    /// Signatures built lazily by [`plan_cascade`], aligned with the entry
    /// slice; `None` for entries no candidate pair touches.
    Owned(Vec<Option<Signature>>),
    /// Signatures borrowed from an [`AnalyzedCorpus`].
    Shared(&'a AnalyzedCorpus),
}

impl PlanSignatures<'_> {
    /// The signature of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a cascade candidate (owned plans only build
    /// signatures for candidates) or was not title-analyzed.
    pub(crate) fn get(&self, i: usize) -> &Signature {
        match self {
            PlanSignatures::Owned(sigs) => sigs[i].as_ref().expect("candidate is planned"),
            PlanSignatures::Shared(corpus) => {
                corpus.signature(i).expect("candidate is title-analyzed")
            }
        }
    }
}

/// The cascade's scoring work list, produced by [`plan_cascade`] or
/// [`plan_cascade_analyzed`].
pub(crate) struct CascadePlan<'a> {
    /// Entry-index pairs to score.
    pub pairs: Vec<(usize, usize)>,
    /// Pairs the index filters excluded without scoring (0 for the
    /// exhaustive generator).
    pub candidates_pruned: u64,
    /// Interned signatures for cascade participants (indexed generator
    /// only).
    pub signatures: PlanSignatures<'a>,
}

/// All distinct-root pairs of every group, in group order — the oracle
/// enumeration, also used below the indexed generator's group-size cutover.
fn exhaustive_pairs(groups: &[Vec<usize>], roots: &[usize]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for group in groups {
        for (gi, &a) in group.iter().enumerate() {
            for &b in &group[gi + 1..] {
                if roots[a] != roots[b] {
                    pairs.push((a, b));
                }
            }
        }
    }
    pairs
}

/// The indexed generator's pairing pass, generic over where signatures
/// live: per multi-root group, either enumerate directly (tiny groups) or
/// run the inverted-index filters, keeping pairs whose roots still differ.
fn indexed_pairs<'s>(
    groups: &[Vec<usize>],
    roots: &[usize],
    threshold: f64,
    signature: impl Fn(usize) -> &'s Signature,
) -> (Vec<(usize, usize)>, u64) {
    let mut pairs = Vec::new();
    let mut pruned = 0u64;
    for group in groups {
        let distinct: BTreeSet<usize> = group.iter().map(|&i| roots[i]).collect();
        if distinct.len() < 2 {
            continue;
        }
        if group.len() < INDEX_GROUP_CUTOVER {
            for (gi, &a) in group.iter().enumerate() {
                for &b in &group[gi + 1..] {
                    if roots[a] != roots[b] {
                        pairs.push((a, b));
                    }
                }
            }
            continue;
        }
        let refs: Vec<&Signature> = group.iter().map(|&i| signature(i)).collect();
        let candidates = candidate_pairs(&refs, threshold);
        pruned += candidates.pruned as u64;
        for (li, lj) in candidates.pairs {
            let (a, b) = (group[li], group[lj]);
            if roots[a] != roots[b] {
                pairs.push((a, b));
            }
        }
    }
    (pairs, pruned)
}

/// Plans the cascade's candidate pairs over description `groups`.
///
/// `roots` holds each entry's pre-cascade union-find root: pairs already in
/// the same cluster are never candidates (merging them would be a no-op),
/// matching the original enumerator. Signatures are built lazily, only for
/// groups where a merge is still possible, and share one [`Interner`] so
/// token ids agree across groups.
pub(crate) fn plan_cascade(
    groups: &[Vec<usize>],
    roots: &[usize],
    title_keys: &[Option<TitleKey>],
    threshold: f64,
    gen: CandidateGen,
) -> CascadePlan<'static> {
    match gen {
        CandidateGen::Exhaustive => CascadePlan {
            pairs: exhaustive_pairs(groups, roots),
            candidates_pruned: 0,
            signatures: PlanSignatures::Owned(Vec::new()),
        },
        CandidateGen::Indexed => {
            let mut signatures: Vec<Option<Signature>> = vec![None; title_keys.len()];
            let mut interner = Interner::new();
            for group in groups {
                let distinct: BTreeSet<usize> = group.iter().map(|&i| roots[i]).collect();
                if distinct.len() < 2 {
                    continue;
                }
                for &i in group {
                    if signatures[i].is_none() {
                        let key = title_keys[i].as_ref().expect("cascade entry is Intel");
                        signatures[i] = Some(Signature::from_title_key(key, &mut interner));
                    }
                }
            }
            let (pairs, pruned) = indexed_pairs(groups, roots, threshold, |i| {
                signatures[i].as_ref().expect("signature just built")
            });
            CascadePlan {
                pairs,
                candidates_pruned: pruned,
                signatures: PlanSignatures::Owned(signatures),
            }
        }
    }
}

/// [`plan_cascade`] over a pre-analyzed corpus: signatures were already
/// interned once, corpus-wide, by [`AnalyzedCorpus::analyze`], so planning
/// borrows them instead of rebuilding. The corpus interner assigns ids over
/// all title-analyzed documents (not just cascade participants), so rarity
/// tie-breaks inside the index filters may admit a *different lossless
/// superset* of candidates than the legacy plan — clusters, merges, and
/// database bytes are identical either way, only effort diagnostics may
/// shift.
pub(crate) fn plan_cascade_analyzed<'a>(
    groups: &[Vec<usize>],
    roots: &[usize],
    corpus: &'a AnalyzedCorpus,
    threshold: f64,
    gen: CandidateGen,
) -> CascadePlan<'a> {
    let (pairs, candidates_pruned) = match gen {
        CandidateGen::Exhaustive => (exhaustive_pairs(groups, roots), 0),
        CandidateGen::Indexed => indexed_pairs(groups, roots, threshold, |i| {
            corpus
                .signature(i)
                .expect("cascade entry is title-analyzed")
        }),
    };
    CascadePlan {
        pairs,
        candidates_pruned,
        signatures: PlanSignatures::Shared(corpus),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(titles: &[&str]) -> Vec<Option<TitleKey>> {
        titles.iter().map(|t| Some(TitleKey::new(t))).collect()
    }

    /// `n` pairwise-disjoint titles (no shared tokens), so the index can
    /// prune every pair.
    fn disjoint_titles(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("alpha{i} beta{i} gamma{i} delta{i}"))
            .collect()
    }

    #[test]
    fn candidate_gen_parses_and_displays() {
        assert_eq!("indexed".parse::<CandidateGen>(), Ok(CandidateGen::Indexed));
        assert_eq!(
            "exhaustive".parse::<CandidateGen>(),
            Ok(CandidateGen::Exhaustive)
        );
        assert!("fast".parse::<CandidateGen>().is_err());
        assert_eq!(CandidateGen::default(), CandidateGen::Indexed);
        assert_eq!(CandidateGen::Indexed.to_string(), "indexed");
    }

    #[test]
    fn exhaustive_enumerates_distinct_root_pairs_in_group_order() {
        let title_keys = keys(&["a b", "a b c", "a c", "z"]);
        let groups = vec![vec![0, 1, 2], vec![3]];
        let roots = vec![0, 1, 0, 3]; // 0 and 2 already share a cluster
        let plan = plan_cascade(&groups, &roots, &title_keys, 0.5, CandidateGen::Exhaustive);
        assert_eq!(plan.pairs, vec![(0, 1), (1, 2)]);
        assert_eq!(plan.candidates_pruned, 0);
    }

    #[test]
    fn indexed_covers_every_passing_exhaustive_pair() {
        // At least INDEX_GROUP_CUTOVER titles so the index actually runs.
        let titles = [
            "warm reset processor hang",
            "warm reset processor hang case",
            "usb transfer drop packet",
            "pcie link retrain endlessly",
            "machine check cache eviction",
            "x87 fdp value save incorrectly",
            "thermal throttle under load",
            "memory controller training fail",
        ];
        let title_keys = keys(&titles);
        let groups = vec![(0..titles.len()).collect()];
        let roots: Vec<usize> = (0..titles.len()).collect();
        let threshold = 0.5;
        let exhaustive = plan_cascade(
            &groups,
            &roots,
            &title_keys,
            threshold,
            CandidateGen::Exhaustive,
        );
        let indexed = plan_cascade(
            &groups,
            &roots,
            &title_keys,
            threshold,
            CandidateGen::Indexed,
        );
        for &(a, b) in &exhaustive.pairs {
            let (ka, kb) = (
                title_keys[a].as_ref().unwrap(),
                title_keys[b].as_ref().unwrap(),
            );
            if ka.similarity(kb) >= threshold {
                assert!(
                    indexed.pairs.contains(&(a, b)),
                    "lost passing pair ({a}, {b})"
                );
            }
        }
        assert!(
            indexed.candidates_pruned > 0,
            "expected pruning on disjoint titles"
        );
    }

    #[test]
    fn indexed_skips_single_root_groups_entirely() {
        let title_keys = keys(&["a b", "a b"]);
        let groups = vec![vec![0, 1]];
        let roots = vec![0, 0];
        let plan = plan_cascade(&groups, &roots, &title_keys, 0.5, CandidateGen::Indexed);
        assert!(plan.pairs.is_empty());
        match &plan.signatures {
            PlanSignatures::Owned(sigs) => {
                assert!(sigs.iter().all(Option::is_none), "no signatures built");
            }
            PlanSignatures::Shared(_) => panic!("legacy plan owns its signatures"),
        }
    }

    /// Pins the group-size cutover: one member below it, the indexed
    /// generator enumerates directly (nothing pruned even on fully
    /// disjoint titles); at the cutover, the index runs and prunes.
    #[test]
    fn group_size_cutover_is_pinned() {
        assert_eq!(INDEX_GROUP_CUTOVER, 8);
        for (n, expect_pruning) in [
            (INDEX_GROUP_CUTOVER - 1, false),
            (INDEX_GROUP_CUTOVER, true),
        ] {
            let titles = disjoint_titles(n);
            let refs: Vec<&str> = titles.iter().map(String::as_str).collect();
            let title_keys = keys(&refs);
            let groups = vec![(0..n).collect()];
            let roots: Vec<usize> = (0..n).collect();
            let plan = plan_cascade(&groups, &roots, &title_keys, 0.5, CandidateGen::Indexed);
            if expect_pruning {
                assert!(plan.candidates_pruned > 0, "size {n}: index should prune");
                assert!(plan.pairs.is_empty(), "disjoint titles are all pruned");
            } else {
                assert_eq!(plan.candidates_pruned, 0, "size {n}: index bypassed");
                assert_eq!(plan.pairs.len(), n * (n - 1) / 2, "all pairs enumerated");
            }
        }
    }

    /// The analyzed plan (signatures borrowed from the corpus arena) and
    /// the legacy plan agree on every pair that can pass the threshold.
    #[test]
    fn analyzed_plan_covers_every_passing_pair() {
        let titles = [
            "warm reset processor hang",
            "warm reset processor hang case",
            "usb transfer drop packet",
            "pcie link retrain endlessly",
            "machine check cache eviction",
            "x87 fdp value save incorrectly",
            "thermal throttle under load",
            "memory controller training fail",
        ];
        let corpus = AnalyzedCorpus::analyze(&titles, |t| rememberr_textkit::DocText {
            text: format!("{t}\nbody"),
            title_len: t.len(),
            analyze_title: true,
        });
        let title_keys = keys(&titles);
        let groups = vec![(0..titles.len()).collect()];
        let roots: Vec<usize> = (0..titles.len()).collect();
        let threshold = 0.5;
        let plan =
            plan_cascade_analyzed(&groups, &roots, &corpus, threshold, CandidateGen::Indexed);
        for a in 0..titles.len() {
            for b in a + 1..titles.len() {
                let (ka, kb) = (
                    title_keys[a].as_ref().unwrap(),
                    title_keys[b].as_ref().unwrap(),
                );
                if ka.similarity(kb) >= threshold {
                    assert!(plan.pairs.contains(&(a, b)), "lost passing pair ({a}, {b})");
                }
            }
        }
        // Scoring through the borrowed signatures matches the title keys.
        for &(a, b) in &plan.pairs {
            let sim_sig = plan.signatures.get(a).similarity(plan.signatures.get(b));
            let sim_key = title_keys[a]
                .as_ref()
                .unwrap()
                .similarity(title_keys[b].as_ref().unwrap());
            assert!(sim_sig.to_bits() == sim_key.to_bits());
        }
    }
}
