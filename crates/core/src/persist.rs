//! Persistence: the database as JSON Lines or binary columnar snapshots.
//!
//! The open-sourced RemembERR database ships as structured records; the
//! JSONL flavor writes one JSON object per entry plus a header record, so
//! the database survives round trips and can be consumed by external
//! tooling. The binary flavor ([`crate::persist_bin`], `rememberr-bin/v1`)
//! trades that interchangeability for load speed: a deduplicated string
//! table plus columnar entry chunks, decoded in one buffered pass with no
//! per-record text parsing. JSONL stays the interchange format and the
//! correctness oracle; [`load`] sniffs the magic bytes so callers never
//! need to know which flavor a file holds.

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::db::Database;
use crate::dedup::DedupStats;
use crate::entry::DbEntry;
use crate::persist_bin;

/// Format identifier written in the JSONL header record.
pub const FORMAT: &str = "rememberr-jsonl";

/// Format version written in the JSONL header record.
pub const VERSION: u32 = 1;

/// The two snapshot flavors [`save_as`] can write.
///
/// [`load`] never takes one: it sniffs the binary magic and dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// One JSON object per line — the interchange format and oracle.
    #[default]
    Jsonl,
    /// `rememberr-bin/v1` columnar sections — the fast-load format.
    Binary,
}

impl SnapshotFormat {
    /// The format a snapshot's opening bytes announce: binary if they are
    /// the `rememberr-bin` magic, JSONL otherwise.
    pub fn sniff(head: &[u8]) -> SnapshotFormat {
        if head.starts_with(&persist_bin::MAGIC) {
            SnapshotFormat::Binary
        } else {
            SnapshotFormat::Jsonl
        }
    }
}

impl fmt::Display for SnapshotFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnapshotFormat::Jsonl => "jsonl",
            SnapshotFormat::Binary => "binary",
        })
    }
}

impl FromStr for SnapshotFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(SnapshotFormat::Jsonl),
            "binary" => Ok(SnapshotFormat::Binary),
            other => Err(format!(
                "unknown snapshot format {other:?} (use jsonl or binary)"
            )),
        }
    }
}

/// Errors produced by persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record could not be encoded or decoded.
    Json(serde_json::Error),
    /// The stream does not start with a valid header.
    BadHeader(String),
    /// The header announces an unsupported version.
    UnsupportedVersion(u32),
    /// The snapshot holds a different number of entries than its header
    /// announces — it was truncated (or padded) after writing.
    Truncated {
        /// Entry count the header announces.
        expected: usize,
        /// Entries actually present.
        found: usize,
    },
    /// A binary snapshot is structurally invalid (bad magic or checksum,
    /// malformed section, out-of-range id).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
            PersistError::BadHeader(line) => write!(f, "bad header record {line:?}"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated snapshot: header announces {expected} entries, found {found}"
            ),
            PersistError::Corrupt(detail) => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl From<rememberr_model::WireError> for PersistError {
    fn from(e: rememberr_model::WireError) -> Self {
        PersistError::Corrupt(e.to_string())
    }
}

#[derive(Serialize, Deserialize)]
struct Header {
    format: String,
    version: u32,
    entries: usize,
    dedup: DedupStats,
}

/// Writes the database as JSON Lines. Pass `&mut writer` to keep
/// ownership. Shorthand for [`save_as`] with [`SnapshotFormat::Jsonl`].
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or encoding failure.
pub fn save<W: Write>(db: &Database, writer: W) -> Result<(), PersistError> {
    save_as(db, writer, SnapshotFormat::Jsonl)
}

/// Writes the database in the chosen snapshot format.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or encoding failure.
pub fn save_as<W: Write>(
    db: &Database,
    writer: W,
    format: SnapshotFormat,
) -> Result<(), PersistError> {
    let _span = rememberr_obs::span!("persist.save", "{format}");
    match format {
        SnapshotFormat::Jsonl => save_jsonl(db, writer),
        SnapshotFormat::Binary => persist_bin::save_binary(db, BufWriter::new(writer)),
    }
}

fn save_jsonl<W: Write>(db: &Database, writer: W) -> Result<(), PersistError> {
    // Counting sits on top so the metrics see the logical byte volume;
    // the BufWriter underneath batches the many small record writes into
    // buffered I/O on the way to the device.
    let mut writer = CountingWriter {
        inner: BufWriter::new(writer),
        bytes: 0,
    };
    let header = Header {
        format: FORMAT.to_string(),
        version: VERSION,
        entries: db.len(),
        dedup: db.dedup_stats(),
    };
    serde_json::to_writer(&mut writer, &header)?;
    writer.write_all(b"\n")?;
    for entry in db.entries() {
        serde_json::to_writer(&mut writer, entry)?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    rememberr_obs::count("persist.records_written", db.len() as u64);
    rememberr_obs::count("persist.bytes_written", writer.bytes);
    Ok(())
}

/// Counts the bytes flowing through an inner writer so persistence volume
/// shows up in the metrics registry.
struct CountingWriter<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.bytes += written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Reads a database previously written by [`save`] or [`save_as`],
/// sniffing the format from the opening bytes. Pass `&mut reader` to keep
/// ownership.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, malformed or truncated
/// content, or an unsupported version.
pub fn load<R: Read>(mut reader: R) -> Result<Database, PersistError> {
    let mut head = [0u8; 4];
    let mut got = 0;
    while got < head.len() {
        match reader.read(&mut head[got..])? {
            0 => break,
            n => got += n,
        }
    }
    match SnapshotFormat::sniff(&head[..got]) {
        SnapshotFormat::Binary => {
            let _span = rememberr_obs::span!("persist.load", "binary");
            let mut bytes = Vec::with_capacity(64 * 1024);
            bytes.extend_from_slice(&head);
            reader.read_to_end(&mut bytes)?;
            persist_bin::load_binary(&bytes)
        }
        SnapshotFormat::Jsonl => {
            let _span = rememberr_obs::span!("persist.load", "jsonl");
            load_jsonl(head[..got].chain(reader))
        }
    }
}

fn load_jsonl<R: Read>(reader: R) -> Result<Database, PersistError> {
    let mut reader = BufReader::new(reader);
    // One line buffer for the whole load: `read_line` appends, so clearing
    // between records reuses the allocation instead of paying one fresh
    // `String` per record.
    let mut line = String::new();
    let mut bytes = 0u64;
    bytes += reader.read_line(&mut line)? as u64;
    let header_line = line.trim_end_matches(['\n', '\r']);
    if header_line.is_empty() {
        return Err(PersistError::BadHeader(String::new()));
    }
    let header: Header = serde_json::from_str(header_line)
        .map_err(|_| PersistError::BadHeader(header_line.to_string()))?;
    if header.format != FORMAT {
        return Err(PersistError::BadHeader(header_line.to_string()));
    }
    if header.version != VERSION {
        return Err(PersistError::UnsupportedVersion(header.version));
    }
    let mut entries = Vec::with_capacity(header.entries);
    loop {
        line.clear();
        let read = reader.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        bytes += read as u64;
        let record = line.trim();
        if record.is_empty() {
            continue;
        }
        entries.push(serde_json::from_str::<DbEntry>(record)?);
    }
    if entries.len() != header.entries {
        return Err(PersistError::Truncated {
            expected: header.entries,
            found: entries.len(),
        });
    }
    rememberr_obs::count("persist.records_read", entries.len() as u64);
    rememberr_obs::count("persist.bytes_read", bytes);
    let mut db = Database::new();
    db.extend(entries);
    db.restore_dedup_stats(header.dedup);
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn sample_db() -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.03));
        Database::from_documents(&corpus.structured)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let back = load(buf.as_slice()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn header_is_first_line() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("rememberr-jsonl"));
        assert_eq!(text.lines().count(), db.len() + 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load("not json\n".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            load("".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let header = format!(
            "{{\"format\":\"{FORMAT}\",\"version\":99,\"entries\":0,\"dedup\":{{\"entries\":0,\"clusters\":0,\"exact_title_merges\":0,\"cascade_merges\":0}}}}\n"
        );
        assert!(matches!(
            load(header.as_bytes()),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_corrupt_record() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("{\"broken\": true}\n");
        assert!(matches!(load(text.as_bytes()), Err(PersistError::Json(_))));
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = load(text.as_bytes()).unwrap();
        assert_eq!(back.len(), db.len());
    }

    #[test]
    fn rejects_truncated_jsonl() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Drop the last record but keep the header's entry count.
        let truncated: String = text
            .lines()
            .take(db.len())
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            load(truncated.as_bytes()),
            Err(PersistError::Truncated { expected, found })
                if expected == db.len() && found == db.len() - 1
        ));
    }

    #[test]
    fn rejects_padded_jsonl() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        let extra = text.lines().nth(1).unwrap().to_string();
        text.push_str(&extra);
        text.push('\n');
        assert!(matches!(
            load(text.as_bytes()),
            Err(PersistError::Truncated { expected, found })
                if expected == db.len() && found == db.len() + 1
        ));
    }

    #[test]
    fn snapshot_format_parses_and_displays() {
        assert_eq!("jsonl".parse::<SnapshotFormat>(), Ok(SnapshotFormat::Jsonl));
        assert_eq!(
            "binary".parse::<SnapshotFormat>(),
            Ok(SnapshotFormat::Binary)
        );
        assert!("msgpack".parse::<SnapshotFormat>().is_err());
        assert_eq!(SnapshotFormat::Jsonl.to_string(), "jsonl");
        assert_eq!(SnapshotFormat::Binary.to_string(), "binary");
        assert_eq!(SnapshotFormat::default(), SnapshotFormat::Jsonl);
    }

    #[test]
    fn sniff_distinguishes_formats() {
        let db = sample_db();
        let mut jsonl = Vec::new();
        save_as(&db, &mut jsonl, SnapshotFormat::Jsonl).unwrap();
        let mut binary = Vec::new();
        save_as(&db, &mut binary, SnapshotFormat::Binary).unwrap();
        assert_eq!(SnapshotFormat::sniff(&jsonl[..4]), SnapshotFormat::Jsonl);
        assert_eq!(SnapshotFormat::sniff(&binary[..4]), SnapshotFormat::Binary);
        assert_eq!(load(binary.as_slice()).unwrap(), db);
    }

    #[test]
    fn binary_roundtrip_reexports_byte_identical_jsonl() {
        let db = sample_db();
        let mut oracle = Vec::new();
        save(&db, &mut oracle).unwrap();
        let mut binary = Vec::new();
        save_as(&db, &mut binary, SnapshotFormat::Binary).unwrap();
        let back = load(binary.as_slice()).unwrap();
        let mut reexport = Vec::new();
        save(&back, &mut reexport).unwrap();
        assert_eq!(reexport, oracle);
    }
}
