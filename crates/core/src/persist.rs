//! Persistence: the database as JSON Lines.
//!
//! The open-sourced RemembERR database ships as structured records; this
//! module writes one JSON object per entry plus a header record, so the
//! database survives round trips and can be consumed by external tooling.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use serde::{Deserialize, Serialize};

use crate::db::Database;
use crate::dedup::DedupStats;
use crate::entry::DbEntry;

/// Format identifier written in the header record.
pub const FORMAT: &str = "rememberr-jsonl";

/// Format version written in the header record.
pub const VERSION: u32 = 1;

/// Errors produced by persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record could not be encoded or decoded.
    Json(serde_json::Error),
    /// The stream does not start with a valid header.
    BadHeader(String),
    /// The header announces an unsupported version.
    UnsupportedVersion(u32),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
            PersistError::BadHeader(line) => write!(f, "bad header record {line:?}"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Header {
    format: String,
    version: u32,
    entries: usize,
    dedup: DedupStats,
}

/// Writes the database as JSON Lines. Pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or encoding failure.
pub fn save<W: Write>(db: &Database, writer: W) -> Result<(), PersistError> {
    let _span = rememberr_obs::span!("persist.save");
    let mut writer = CountingWriter {
        inner: writer,
        bytes: 0,
    };
    let header = Header {
        format: FORMAT.to_string(),
        version: VERSION,
        entries: db.len(),
        dedup: db.dedup_stats(),
    };
    serde_json::to_writer(&mut writer, &header)?;
    writer.write_all(b"\n")?;
    for entry in db.entries() {
        serde_json::to_writer(&mut writer, entry)?;
        writer.write_all(b"\n")?;
    }
    rememberr_obs::count("persist.records_written", db.len() as u64);
    rememberr_obs::count("persist.bytes_written", writer.bytes);
    Ok(())
}

/// Counts the bytes flowing through an inner writer so persistence volume
/// shows up in the metrics registry.
struct CountingWriter<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.bytes += written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Reads a database previously written by [`save`]. Pass `&mut reader` to
/// keep ownership.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, malformed records, or an
/// unsupported version.
pub fn load<R: Read>(reader: R) -> Result<Database, PersistError> {
    let _span = rememberr_obs::span!("persist.load");
    let mut bytes = 0u64;
    let mut lines = BufReader::new(reader).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| PersistError::BadHeader(String::new()))??;
    let header: Header = serde_json::from_str(&header_line)
        .map_err(|_| PersistError::BadHeader(header_line.clone()))?;
    if header.format != FORMAT {
        return Err(PersistError::BadHeader(header_line));
    }
    if header.version != VERSION {
        return Err(PersistError::UnsupportedVersion(header.version));
    }
    bytes += header_line.len() as u64 + 1;
    let mut entries = Vec::with_capacity(header.entries);
    for line in lines {
        let line = line?;
        bytes += line.len() as u64 + 1;
        if line.trim().is_empty() {
            continue;
        }
        entries.push(serde_json::from_str::<DbEntry>(&line)?);
    }
    rememberr_obs::count("persist.records_read", entries.len() as u64);
    rememberr_obs::count("persist.bytes_read", bytes);
    let mut db = Database::new();
    db.extend(entries);
    db.restore_dedup_stats(header.dedup);
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn sample_db() -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.03));
        Database::from_documents(&corpus.structured)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let back = load(buf.as_slice()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn header_is_first_line() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("rememberr-jsonl"));
        assert_eq!(text.lines().count(), db.len() + 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load("not json\n".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            load("".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let header = format!(
            "{{\"format\":\"{FORMAT}\",\"version\":99,\"entries\":0,\"dedup\":{{\"entries\":0,\"clusters\":0,\"exact_title_merges\":0,\"cascade_merges\":0}}}}\n"
        );
        assert!(matches!(
            load(header.as_bytes()),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_corrupt_record() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("{\"broken\": true}\n");
        assert!(matches!(load(text.as_bytes()), Err(PersistError::Json(_))));
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = load(text.as_bytes()).unwrap();
        assert_eq!(back.len(), db.len());
    }
}
