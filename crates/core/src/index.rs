//! Indexed query serving: per-database posting lists and a selectivity
//! planner.
//!
//! [`crate::Query::run`] is an `O(entries)` scan per query; every analysis
//! figure is ultimately a batch of facet queries, so at scale the scan is
//! the last unindexed hot loop in the serving path. [`QueryIndex`] makes
//! those batches cheap:
//!
//! * **Posting lists** — for every equality facet a query supports
//!   (vendor, design, workaround, fix, trigger, trigger class, context,
//!   effect, MSR) the index keeps the sorted entry positions matching each
//!   facet value. Two *families* are kept: one over all entries and one
//!   restricted to unique-bug representatives, so `unique_only` queries
//!   intersect representative-sized lists instead of re-deriving the
//!   representative view per query.
//! * **Date bracketing** — entry positions sorted by disclosure date plus
//!   a per-entry date rank turn `disclosed_after`/`disclosed_before` into
//!   two binary searches: a window `[lo, hi)` in date-rank space that is
//!   either materialized as the driving candidate list (when it is the
//!   most selective predicate) or applied as an `O(1)` rank check.
//! * **Planner** — execution drives from the smallest posting list,
//!   intersects the remaining lists with galloping sorted intersection,
//!   and falls back to [`crate::Query::matches`] only for residual
//!   predicates the index cannot decide (`min_triggers`).
//!
//! The scan stays available as the correctness oracle behind
//! [`QueryEngine::Scan`] (`--query-engine scan` on the CLI), mirroring the
//! `--dedup-candidates` / `--classify-matcher` precedent: the engine is a
//! throughput knob, never a semantics knob. Results come back in exactly
//! the order [`crate::Query::run`] produces (entry order, or
//! representative key order under `unique_only`).
//!
//! Observability: building emits the `query.build_index` span; execution
//! emits `query.execute` plus the counters `query.entries_scanned`
//! (candidates the engine visited), `query.postings_intersected` (lists
//! intersected beyond the driver) and `query.residual_checks` (candidates
//! that went through the residual `matches` fallback).

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use rememberr_model::{
    Context, Date, Design, Effect, FixStatus, MsrName, Trigger, TriggerClass, UniqueKey, Vendor,
    WorkaroundCategory,
};

use crate::db::Database;
use crate::entry::DbEntry;
use crate::query::Query;

/// Which implementation serves a query.
///
/// Both engines return identical results (the equivalence suite asserts
/// byte-identical id sequences); the scan is kept as the correctness
/// oracle for the indexed planner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueryEngine {
    /// Posting-list intersection driven by the most selective facet
    /// (default).
    #[default]
    Indexed,
    /// The original full scan through [`crate::Query::matches`] — the
    /// correctness oracle the indexed planner is checked against.
    Scan,
}

impl FromStr for QueryEngine {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "indexed" => Ok(QueryEngine::Indexed),
            "scan" => Ok(QueryEngine::Scan),
            other => Err(format!(
                "invalid query engine {other:?} (expected \"indexed\" or \"scan\")"
            )),
        }
    }
}

impl fmt::Display for QueryEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QueryEngine::Indexed => "indexed",
            QueryEngine::Scan => "scan",
        })
    }
}

/// One family of posting lists over a universe of entry positions.
///
/// The `all` family's universe is every entry (implicit `0..entries`); the
/// `unique` family's universe is the unique-bug representatives, so a
/// `unique_only` query never touches non-representative positions.
#[derive(Debug, Default)]
struct PostingFamily {
    vendor: Vec<Vec<u32>>,
    design: Vec<Vec<u32>>,
    workaround: Vec<Vec<u32>>,
    fix: Vec<Vec<u32>>,
    trigger: Vec<Vec<u32>>,
    trigger_class: Vec<Vec<u32>>,
    context: Vec<Vec<u32>>,
    effect: Vec<Vec<u32>>,
    msr: Vec<Vec<u32>>,
    /// Positions with an annotation attached.
    annotated: Vec<u32>,
}

impl PostingFamily {
    fn with_slots() -> Self {
        PostingFamily {
            vendor: vec![Vec::new(); Vendor::ALL.len()],
            design: vec![Vec::new(); Design::ALL.len()],
            workaround: vec![Vec::new(); WorkaroundCategory::ALL.len()],
            fix: vec![Vec::new(); FixStatus::ALL.len()],
            trigger: vec![Vec::new(); Trigger::ALL.len()],
            trigger_class: vec![Vec::new(); TriggerClass::ALL.len()],
            context: vec![Vec::new(); Context::ALL.len()],
            effect: vec![Vec::new(); Effect::ALL.len()],
            msr: vec![Vec::new(); MsrName::ALL.len()],
            annotated: Vec::new(),
        }
    }

    /// Files entry `pos` under every facet value it matches. Positions
    /// arrive in ascending order, so every list stays sorted.
    fn add(&mut self, pos: u32, entry: &DbEntry) {
        self.vendor[slot(&Vendor::ALL, entry.vendor())].push(pos);
        self.design[entry.design().index()].push(pos);
        self.workaround[slot(&WorkaroundCategory::ALL, entry.workaround)].push(pos);
        self.fix[slot(&FixStatus::ALL, entry.fix)].push(pos);
        let Some(ann) = entry.annotation.as_ref() else {
            return;
        };
        self.annotated.push(pos);
        for t in ann.triggers.iter() {
            self.trigger[t.index()].push(pos);
        }
        for class in ann.trigger_classes() {
            self.trigger_class[class.index()].push(pos);
        }
        for c in ann.contexts.iter() {
            self.context[c.index()].push(pos);
        }
        for e in ann.effects.iter() {
            self.effect[e.index()].push(pos);
        }
        for msr in &ann.msrs {
            let list = &mut self.msr[slot(&MsrName::ALL, msr.name)];
            // An annotation may reference the same register more than once
            // (e.g. distinct banks); each entry appears at most once per
            // posting list.
            if list.last() != Some(&pos) {
                list.push(pos);
            }
        }
    }
}

/// Position of `value` in a facet's canonical `ALL` table.
fn slot<T: PartialEq + Copy>(all: &[T], value: T) -> usize {
    all.iter()
        .position(|&v| v == value)
        .expect("facet value is in its ALL table")
}

/// Immutable per-database query index: posting lists for every equality
/// facet, a date-sorted position array, and the unique-representative view.
///
/// Build one with [`QueryIndex::build`] or let the database cache it via
/// [`Database::query_index`]; serve queries with
/// [`crate::Query::run_indexed`] / [`crate::Query::count_indexed`].
///
/// # Examples
///
/// ```
/// use rememberr::{Database, Query, QueryIndex};
/// use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
/// use rememberr_model::Vendor;
///
/// let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
/// let db = Database::from_documents(&corpus.structured);
/// let index = QueryIndex::build(&db);
/// let query = Query::new().vendor(Vendor::Intel).unique_only();
/// assert_eq!(query.run_indexed(&index, &db).len(), query.count(&db));
/// ```
#[derive(Debug)]
pub struct QueryIndex {
    /// Number of entries the index was built over.
    entries: usize,
    /// Posting lists over all entry positions.
    all: PostingFamily,
    /// Posting lists over unique-bug representative positions only.
    unique: PostingFamily,
    /// Representative positions, sorted by position — the unique family's
    /// universe.
    unique_set: Vec<u32>,
    /// Position → output rank among representatives (key order, the order
    /// [`Database::unique_entries`] returns); `u32::MAX` for
    /// non-representatives.
    unique_rank: Vec<u32>,
    /// Entry positions sorted by `(disclosure_date, position)`.
    date_order: Vec<u32>,
    /// Disclosure dates in `date_order` order, for binary bracketing.
    dates_sorted: Vec<Date>,
    /// Position → rank in `date_order`.
    date_rank: Vec<u32>,
}

impl QueryIndex {
    /// Builds the index in one pass over the database (plus two sorts for
    /// the date and representative orders).
    pub fn build(db: &Database) -> Self {
        let _span = rememberr_obs::span!("query.build_index");
        let entries = db.entries();
        let n = entries.len();

        // Representative per cluster: earliest disclosure, ties broken by
        // design order then erratum number, first position on full ties —
        // exactly the choice `Database::unique_entries` makes.
        let mut best: HashMap<UniqueKey, u32> = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            let Some(key) = e.key else { continue };
            let cand = (
                e.provenance.disclosure_date,
                e.design().index(),
                e.id().number,
            );
            best.entry(key)
                .and_modify(|pos| {
                    let cur = &entries[*pos as usize];
                    let incumbent = (
                        cur.provenance.disclosure_date,
                        cur.design().index(),
                        cur.id().number,
                    );
                    if cand < incumbent {
                        *pos = i as u32;
                    }
                })
                .or_insert(i as u32);
        }
        let mut reps: Vec<(UniqueKey, u32)> = best.into_iter().collect();
        reps.sort_unstable_by_key(|&(key, _)| key);
        let mut unique_rank = vec![u32::MAX; n];
        for (rank, &(_, pos)) in reps.iter().enumerate() {
            unique_rank[pos as usize] = rank as u32;
        }
        let mut unique_set: Vec<u32> = reps.iter().map(|&(_, pos)| pos).collect();
        unique_set.sort_unstable();

        let mut all = PostingFamily::with_slots();
        let mut unique = PostingFamily::with_slots();
        for (i, entry) in entries.iter().enumerate() {
            let pos = i as u32;
            all.add(pos, entry);
            if unique_rank[i] != u32::MAX {
                unique.add(pos, entry);
            }
        }

        let mut date_order: Vec<u32> = (0..n as u32).collect();
        date_order.sort_unstable_by_key(|&i| (entries[i as usize].provenance.disclosure_date, i));
        let dates_sorted: Vec<Date> = date_order
            .iter()
            .map(|&i| entries[i as usize].provenance.disclosure_date)
            .collect();
        let mut date_rank = vec![0u32; n];
        for (rank, &i) in date_order.iter().enumerate() {
            date_rank[i as usize] = rank as u32;
        }

        QueryIndex {
            entries: n,
            all,
            unique,
            unique_set,
            unique_rank,
            date_order,
            dates_sorted,
            date_rank,
        }
    }

    /// Number of entries the index covers.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Number of unique-bug representatives the index covers.
    pub fn unique_count(&self) -> usize {
        self.unique_set.len()
    }
}

/// Lazily-built [`QueryIndex`] cache living inside [`Database`].
///
/// The cell participates in the database's derived `Clone`/`Debug`/
/// `Default` without leaking into equality or serialization: clones start
/// empty (the clone rebuilds on first use), and two databases compare
/// equal regardless of which of them has built its index.
#[derive(Default)]
pub(crate) struct QueryIndexCell(OnceLock<QueryIndex>);

impl QueryIndexCell {
    /// The cached index, building it on first use. Safe under concurrent
    /// readers: one builds, the rest block and share the result.
    pub(crate) fn get_or_build(&self, build: impl FnOnce() -> QueryIndex) -> &QueryIndex {
        self.0.get_or_init(build)
    }

    /// Drops any built index; the next reader rebuilds. Called by every
    /// database mutator.
    pub(crate) fn invalidate(&mut self) {
        self.0 = OnceLock::new();
    }

    /// Whether an index is currently cached. Mutators debug-assert this
    /// is false after invalidating — a mutation that leaves a built index
    /// behind would serve stale query results.
    pub(crate) fn is_built(&self) -> bool {
        self.0.get().is_some()
    }
}

impl Clone for QueryIndexCell {
    fn clone(&self) -> Self {
        QueryIndexCell::default()
    }
}

impl fmt::Debug for QueryIndexCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.0.get() {
            Some(_) => "QueryIndexCell(built)",
            None => "QueryIndexCell(empty)",
        })
    }
}

/// Runs `query` through the index, returning entries in the same order the
/// scan produces.
pub(crate) fn execute<'db>(
    query: &Query,
    index: &QueryIndex,
    db: &'db Database,
) -> Vec<&'db DbEntry> {
    let _span = rememberr_obs::span!("query.execute");
    let mut positions = matching_positions(query, index, db);
    if query.unique_only {
        // Scan order for unique queries is representative key order.
        positions.sort_unstable_by_key(|&p| index.unique_rank[p as usize]);
    }
    let entries = db.entries();
    positions.iter().map(|&p| &entries[p as usize]).collect()
}

/// Number of matches, without materializing entry references: for fully
/// indexed queries this is the length of the final intersection.
pub(crate) fn execute_count(query: &Query, index: &QueryIndex, db: &Database) -> usize {
    let _span = rememberr_obs::span!("query.execute");
    matching_positions(query, index, db).len()
}

/// The planner: sorted positions of every entry matching `query`.
///
/// # Panics
///
/// Panics if the index was built over a database with a different entry
/// count (an index is only valid for the exact database it was built
/// from).
fn matching_positions(query: &Query, index: &QueryIndex, db: &Database) -> Vec<u32> {
    assert_eq!(
        index.entries,
        db.len(),
        "QueryIndex was built over a different database (entry counts differ)"
    );

    // Date window in date-rank space: `>= after` is rank >= lo, `< before`
    // is rank < hi (positions are sorted by date, so the cut points come
    // from two binary searches).
    let has_date = query.disclosed_after.is_some() || query.disclosed_before.is_some();
    let lo = match query.disclosed_after {
        Some(after) => index.dates_sorted.partition_point(|&d| d < after),
        None => 0,
    };
    let hi = match query.disclosed_before {
        Some(before) => index.dates_sorted.partition_point(|&d| d < before),
        None => index.entries,
    };
    if has_date && lo >= hi {
        rememberr_obs::count("query.entries_scanned", 0);
        return Vec::new();
    }

    // Posting lists for every equality predicate, drawn from the family
    // matching the query's universe.
    let family = if query.unique_only {
        &index.unique
    } else {
        &index.all
    };
    // Disjunctive facets (any listed context/effect suffices) become one
    // intersectable list: the union of the member lists.
    let context_union = (!query.context_any.is_empty()).then(|| {
        union_of(
            query
                .context_any
                .iter()
                .map(|&c| family.context[c.index()].as_slice()),
        )
    });
    let effect_union = (!query.effect_any.is_empty()).then(|| {
        union_of(
            query
                .effect_any
                .iter()
                .map(|&e| family.effect[e.index()].as_slice()),
        )
    });

    let mut lists: Vec<&[u32]> = Vec::new();
    if let Some(v) = query.vendor {
        lists.push(&family.vendor[slot(&Vendor::ALL, v)]);
    }
    if let Some(d) = query.design {
        lists.push(&family.design[d.index()]);
    }
    if let Some(w) = query.workaround {
        lists.push(&family.workaround[slot(&WorkaroundCategory::ALL, w)]);
    }
    if let Some(f) = query.fix {
        lists.push(&family.fix[slot(&FixStatus::ALL, f)]);
    }
    for &t in &query.triggers_all {
        lists.push(&family.trigger[t.index()]);
    }
    if let Some(class) = query.trigger_class {
        lists.push(&family.trigger_class[class.index()]);
    }
    if let Some(msr) = query.msr {
        lists.push(&family.msr[slot(&MsrName::ALL, msr)]);
    }
    if let Some(union) = &context_union {
        lists.push(union);
    }
    if let Some(union) = &effect_union {
        lists.push(union);
    }
    // `annotated_only` and `min_triggers` require an annotation; the list
    // is only worth intersecting when no annotation-backed predicate above
    // already implies it (every such posting list is a subset of
    // `annotated`).
    let annotation_implied = !query.triggers_all.is_empty()
        || query.trigger_class.is_some()
        || !query.context_any.is_empty()
        || !query.effect_any.is_empty()
        || query.msr.is_some();
    if (query.annotated_only || query.min_triggers.is_some()) && !annotation_implied {
        lists.push(&family.annotated);
    }

    // Drive from the most selective candidate source: the smallest posting
    // list, or the date window itself when it is narrower (all-entries
    // universe only — the window spans both families).
    lists.sort_unstable_by_key(|l| l.len());
    let window = hi - lo;
    let window_drives =
        has_date && !query.unique_only && lists.first().is_none_or(|l| window < l.len());
    let (mut current, rest, mut date_checked): (Vec<u32>, &[&[u32]], bool) = if window_drives {
        let mut slice = index.date_order[lo..hi].to_vec();
        slice.sort_unstable();
        (slice, &lists[..], true)
    } else if let Some((driver, rest)) = lists.split_first() {
        (driver.to_vec(), rest, !has_date)
    } else if query.unique_only {
        (index.unique_set.clone(), &[], !has_date)
    } else {
        ((0..index.entries as u32).collect(), &[], !has_date)
    };
    rememberr_obs::count("query.entries_scanned", current.len() as u64);

    let mut intersected = 0u64;
    for list in rest {
        if current.is_empty() {
            break;
        }
        current = gallop_intersect(&current, list);
        intersected += 1;
    }
    rememberr_obs::count("query.postings_intersected", intersected);

    if !date_checked {
        current.retain(|&p| {
            let rank = index.date_rank[p as usize] as usize;
            lo <= rank && rank < hi
        });
        date_checked = true;
    }
    debug_assert!(date_checked);

    // Residual predicates the index cannot decide fall back to the scan's
    // `matches`; candidates reaching this point already satisfy every
    // indexed predicate, so the residual check decides `min_triggers`.
    if query.min_triggers.is_some() {
        rememberr_obs::count("query.residual_checks", current.len() as u64);
        let entries = db.entries();
        current.retain(|&p| query.matches(&entries[p as usize]));
    }
    current
}

/// Sorted union of sorted lists (disjunctive facets).
fn union_of<'a>(lists: impl Iterator<Item = &'a [u32]>) -> Vec<u32> {
    let mut out: Vec<u32> = lists.flat_map(|l| l.iter().copied()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Intersection of two sorted lists: iterate the smaller, gallop
/// (exponential probe + binary search) through the larger. `O(s·log(L/s))`
/// — effectively the smaller list's length when selectivities differ.
fn gallop_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.len() > b.len() {
        return gallop_intersect(b, a);
    }
    let mut out = Vec::with_capacity(a.len());
    let mut lo = 0usize;
    for &x in a {
        // Exponential probe for the first b[i] >= x, starting where the
        // previous element left off.
        let mut step = 1usize;
        let mut prev = lo;
        let mut probe = lo;
        while probe < b.len() && b[probe] < x {
            prev = probe + 1;
            probe += step;
            step <<= 1;
        }
        let hi = probe.min(b.len());
        let idx = prev + b[prev..hi].partition_point(|&y| y < x);
        lo = idx;
        if idx < b.len() && b[idx] == x {
            out.push(x);
            lo = idx + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_engine_parses_and_displays() {
        assert_eq!("indexed".parse::<QueryEngine>(), Ok(QueryEngine::Indexed));
        assert_eq!("scan".parse::<QueryEngine>(), Ok(QueryEngine::Scan));
        assert!("fast".parse::<QueryEngine>().is_err());
        assert_eq!(QueryEngine::default(), QueryEngine::Indexed);
        assert_eq!(QueryEngine::Scan.to_string(), "scan");
    }

    #[test]
    fn gallop_matches_naive_intersection() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[1, 2, 3]),
            (&[2], &[1, 2, 3]),
            (&[0, 4, 9], &[1, 2, 3]),
            (&[1, 3, 5, 7, 9], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
            (&[5, 6, 7], &[5, 6, 7]),
            (&[1, 100, 1000], &(0..1024).collect::<Vec<u32>>()),
        ];
        for (a, b) in cases {
            let naive: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
            assert_eq!(gallop_intersect(a, b), naive, "{a:?} ∩ {b:?}");
            assert_eq!(gallop_intersect(b, a), naive, "commuted {a:?} ∩ {b:?}");
        }
    }

    #[test]
    fn union_of_merges_and_dedups() {
        let lists: Vec<&[u32]> = vec![&[1, 4, 9], &[2, 4, 8], &[]];
        assert_eq!(union_of(lists.into_iter()), vec![1, 2, 4, 8, 9]);
    }

    #[test]
    fn index_cell_clone_is_empty_and_invalidates() {
        let cell = QueryIndexCell::default();
        assert!(!cell.is_built());
        let db = Database::new();
        cell.get_or_build(|| QueryIndex::build(&db));
        assert!(cell.is_built());
        assert!(!cell.clone().is_built());
        let mut cell = cell;
        cell.invalidate();
        assert!(!cell.is_built());
    }

    #[test]
    fn empty_database_index_serves_empty_results() {
        let db = Database::new();
        let index = QueryIndex::build(&db);
        assert_eq!(index.entry_count(), 0);
        assert_eq!(index.unique_count(), 0);
        assert!(Query::new().run_indexed(&index, &db).is_empty());
        assert_eq!(Query::new().count_indexed(&index, &db), 0);
    }

    #[test]
    #[should_panic(expected = "different database")]
    fn foreign_index_is_rejected() {
        use rememberr_model::{Date, Erratum, ErratumId, Provenance};
        let empty = Database::new();
        let index = QueryIndex::build(&empty);
        let mut db = Database::new();
        db.extend([DbEntry::new(
            Erratum {
                id: ErratumId::new(Design::Intel6, 1),
                title: "T".into(),
                description: "D".into(),
                implications: String::new(),
                workaround: "None identified.".into(),
                status: "No fix planned.".into(),
            },
            Provenance::from_revision_log(1, Date::new(2016, 6, 15).unwrap()),
        )]);
        let _ = Query::new().run_indexed(&index, &db);
    }
}
