//! Query interface over the database.
//!
//! The paper's artifact ships "an example script to encourage readers to
//! write their own queries"; this module is the equivalent surface: a
//! builder of composable filters over entries or unique bugs.
//!
//! # Examples
//!
//! ```
//! use rememberr::{Database, Query};
//! use rememberr_model::{Trigger, Vendor};
//! use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
//!
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
//! let mut db = Database::from_documents(&corpus.structured);
//! # let ann = corpus.truth.bugs[0].profile.annotation.clone();
//! # let id = corpus.truth.bugs[0].occurrences[0].id();
//! # db.annotate_cluster(id, ann);
//! let hits = Query::new()
//!     .vendor(Vendor::Intel)
//!     .unique_only()
//!     .run(&db);
//! assert!(hits.len() <= db.len());
//! ```

use rememberr_model::{
    Context, Date, Design, Effect, FixStatus, MsrName, Trigger, TriggerClass, Vendor,
    WorkaroundCategory,
};

use crate::db::Database;
use crate::entry::DbEntry;
use crate::index::{QueryEngine, QueryIndex};

/// A composable filter over database entries.
///
/// All added conditions must hold (conjunction). An unset condition matches
/// everything.
///
/// Two engines serve a query: [`Query::run`] scans every entry (the
/// correctness oracle) and [`Query::run_indexed`] intersects the posting
/// lists of a [`QueryIndex`]; both return the same entries in the same
/// order. [`Query::run_with`] picks by [`QueryEngine`].
#[derive(Debug, Clone, Default)]
pub struct Query {
    pub(crate) vendor: Option<Vendor>,
    pub(crate) design: Option<Design>,
    pub(crate) triggers_all: Vec<Trigger>,
    pub(crate) trigger_class: Option<TriggerClass>,
    pub(crate) context_any: Vec<Context>,
    pub(crate) effect_any: Vec<Effect>,
    pub(crate) msr: Option<MsrName>,
    pub(crate) workaround: Option<WorkaroundCategory>,
    pub(crate) fix: Option<FixStatus>,
    pub(crate) disclosed_after: Option<Date>,
    pub(crate) disclosed_before: Option<Date>,
    pub(crate) min_triggers: Option<usize>,
    pub(crate) unique_only: bool,
    pub(crate) annotated_only: bool,
}

impl Query {
    /// Creates an unconstrained query (matches every entry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts to one vendor.
    pub fn vendor(mut self, vendor: Vendor) -> Self {
        self.vendor = Some(vendor);
        self
    }

    /// Restricts to one design's document.
    pub fn design(mut self, design: Design) -> Self {
        self.design = Some(design);
        self
    }

    /// Requires the annotation to contain this trigger (repeatable; all
    /// required triggers must be present — triggers are conjunctive).
    pub fn trigger(mut self, trigger: Trigger) -> Self {
        self.triggers_all.push(trigger);
        self
    }

    /// Requires at least one trigger of this class.
    pub fn trigger_class(mut self, class: TriggerClass) -> Self {
        self.trigger_class = Some(class);
        self
    }

    /// Requires this context to be applicable (repeatable; any listed
    /// context suffices — contexts are disjunctive).
    pub fn context(mut self, context: Context) -> Self {
        self.context_any.push(context);
        self
    }

    /// Requires this effect to be observable (repeatable; any listed effect
    /// suffices — effects are disjunctive).
    pub fn effect(mut self, effect: Effect) -> Self {
        self.effect_any.push(effect);
        self
    }

    /// Requires the bug to be witnessed by this MSR.
    pub fn msr(mut self, msr: MsrName) -> Self {
        self.msr = Some(msr);
        self
    }

    /// Restricts to a workaround category.
    pub fn workaround(mut self, workaround: WorkaroundCategory) -> Self {
        self.workaround = Some(workaround);
        self
    }

    /// Restricts to a fix status.
    pub fn fix(mut self, fix: FixStatus) -> Self {
        self.fix = Some(fix);
        self
    }

    /// Restricts to disclosures at or after this date.
    pub fn disclosed_after(mut self, date: Date) -> Self {
        self.disclosed_after = Some(date);
        self
    }

    /// Restricts to disclosures strictly before this date.
    pub fn disclosed_before(mut self, date: Date) -> Self {
        self.disclosed_before = Some(date);
        self
    }

    /// Requires at least this many necessary triggers (bug complexity).
    pub fn min_triggers(mut self, n: usize) -> Self {
        self.min_triggers = Some(n);
        self
    }

    /// Evaluates over one representative per unique bug instead of all
    /// listings.
    pub fn unique_only(mut self) -> Self {
        self.unique_only = true;
        self
    }

    /// Skips entries without an annotation.
    pub fn annotated_only(mut self) -> Self {
        self.annotated_only = true;
        self
    }

    /// True if an entry satisfies every condition.
    pub fn matches(&self, entry: &DbEntry) -> bool {
        if let Some(v) = self.vendor {
            if entry.vendor() != v {
                return false;
            }
        }
        if let Some(d) = self.design {
            if entry.design() != d {
                return false;
            }
        }
        if let Some(after) = self.disclosed_after {
            if entry.provenance.disclosure_date < after {
                return false;
            }
        }
        if let Some(before) = self.disclosed_before {
            if entry.provenance.disclosure_date >= before {
                return false;
            }
        }
        if let Some(w) = self.workaround {
            if entry.workaround != w {
                return false;
            }
        }
        if let Some(f) = self.fix {
            if entry.fix != f {
                return false;
            }
        }

        let needs_annotation = self.annotated_only
            || !self.triggers_all.is_empty()
            || self.trigger_class.is_some()
            || !self.context_any.is_empty()
            || !self.effect_any.is_empty()
            || self.msr.is_some()
            || self.min_triggers.is_some();
        let Some(ann) = entry.annotation.as_ref() else {
            return !needs_annotation;
        };

        if !self.triggers_all.iter().all(|&t| ann.triggers.contains(t)) {
            return false;
        }
        if let Some(class) = self.trigger_class {
            if !ann.triggers.iter().any(|t| t.class() == class) {
                return false;
            }
        }
        if !self.context_any.is_empty()
            && !self.context_any.iter().any(|&c| ann.contexts.contains(c))
        {
            return false;
        }
        if !self.effect_any.is_empty() && !self.effect_any.iter().any(|&e| ann.effects.contains(e))
        {
            return false;
        }
        if let Some(msr) = self.msr {
            if !ann.msrs.iter().any(|r| r.name == msr) {
                return false;
            }
        }
        if let Some(n) = self.min_triggers {
            if ann.complexity() < n {
                return false;
            }
        }
        true
    }

    /// The scan engine's shared code path: visits every candidate entry
    /// and reports hits. `run` and `count` both ride on this so counting
    /// never materializes a `Vec<&DbEntry>`.
    ///
    /// Counts every entry the engine visits as `query.entries_scanned`:
    /// for `unique_only` queries that is the full pass deriving the
    /// representative view plus one `matches` test per representative; for
    /// entry queries it is one test per entry.
    fn scan<'db>(&self, db: &'db Database, mut hit: impl FnMut(&'db DbEntry)) {
        let _span = rememberr_obs::span!("query.execute");
        if self.unique_only {
            let uniques = db.unique_entries();
            rememberr_obs::count("query.entries_scanned", (db.len() + uniques.len()) as u64);
            for e in uniques {
                if self.matches(e) {
                    hit(e);
                }
            }
        } else {
            rememberr_obs::count("query.entries_scanned", db.len() as u64);
            for e in db.entries() {
                if self.matches(e) {
                    hit(e);
                }
            }
        }
    }

    /// Runs the query against a database with the scan engine.
    pub fn run<'db>(&self, db: &'db Database) -> Vec<&'db DbEntry> {
        let mut out = Vec::new();
        self.scan(db, |e| out.push(e));
        out
    }

    /// Number of matches, counted with the scan engine.
    pub fn count(&self, db: &Database) -> usize {
        let mut n = 0;
        self.scan(db, |_| n += 1);
        n
    }

    /// Runs the query through a prebuilt [`QueryIndex`], returning entries
    /// in the same order as [`Query::run`].
    ///
    /// # Panics
    ///
    /// Panics if `index` was built over a different database.
    pub fn run_indexed<'db>(&self, index: &QueryIndex, db: &'db Database) -> Vec<&'db DbEntry> {
        crate::index::execute(self, index, db)
    }

    /// Number of matches, counted through a prebuilt [`QueryIndex`]. When
    /// no residual predicate remains this is the final intersection's
    /// length — no `Vec<&DbEntry>` is materialized.
    ///
    /// # Panics
    ///
    /// Panics if `index` was built over a different database.
    pub fn count_indexed(&self, index: &QueryIndex, db: &Database) -> usize {
        crate::index::execute_count(self, index, db)
    }

    /// Runs the query with the selected engine; [`QueryEngine::Indexed`]
    /// uses (and lazily builds) the database's cached index.
    pub fn run_with<'db>(&self, db: &'db Database, engine: QueryEngine) -> Vec<&'db DbEntry> {
        match engine {
            QueryEngine::Indexed => self.run_indexed(db.query_index(), db),
            QueryEngine::Scan => self.run(db),
        }
    }

    /// Number of matches with the selected engine.
    pub fn count_with(&self, db: &Database, engine: QueryEngine) -> usize {
        match engine {
            QueryEngine::Indexed => self.count_indexed(db.query_index(), db),
            QueryEngine::Scan => self.count(db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::{Annotation, Erratum, ErratumId, Provenance};

    fn entry(design: Design, number: u32, annotation: Option<Annotation>) -> DbEntry {
        let mut e = DbEntry::new(
            Erratum {
                id: ErratumId::new(design, number),
                title: format!("Title {number}"),
                description: format!("Description {number}"),
                implications: String::new(),
                workaround: "None identified.".into(),
                status: "No fix planned.".into(),
            },
            Provenance::from_revision_log(1, Date::new(2016, 6, 15).unwrap()),
        );
        e.annotation = annotation;
        e
    }

    fn db_with(entries: Vec<DbEntry>) -> Database {
        let mut db = Database::new();
        db.extend(entries);
        db
    }

    #[test]
    fn vendor_and_design_filters() {
        let db = db_with(vec![
            entry(Design::Intel6, 1, None),
            entry(Design::Amd19h, 2, None),
        ]);
        assert_eq!(Query::new().vendor(Vendor::Intel).count(&db), 1);
        assert_eq!(Query::new().design(Design::Amd19h).count(&db), 1);
        assert_eq!(Query::new().count(&db), 2);
    }

    #[test]
    fn trigger_filters_are_conjunctive() {
        let ann = Annotation::builder()
            .trigger(Trigger::Reset, "r")
            .trigger(Trigger::Pcie, "p")
            .effect(Effect::Hang, "h")
            .build();
        let db = db_with(vec![
            entry(Design::Intel6, 1, Some(ann)),
            entry(Design::Intel6, 2, None),
        ]);
        assert_eq!(Query::new().trigger(Trigger::Reset).count(&db), 1);
        assert_eq!(
            Query::new()
                .trigger(Trigger::Reset)
                .trigger(Trigger::Pcie)
                .count(&db),
            1
        );
        assert_eq!(
            Query::new()
                .trigger(Trigger::Reset)
                .trigger(Trigger::Usb)
                .count(&db),
            0
        );
        assert_eq!(Query::new().trigger_class(TriggerClass::Ext).count(&db), 1);
    }

    #[test]
    fn context_and_effect_filters_are_disjunctive() {
        let ann = Annotation::builder()
            .context(Context::VmGuest, "g")
            .effect(Effect::Hang, "h")
            .build();
        let db = db_with(vec![entry(Design::Intel6, 1, Some(ann))]);
        assert_eq!(
            Query::new()
                .context(Context::VmGuest)
                .context(Context::Smm)
                .count(&db),
            1
        );
        assert_eq!(Query::new().context(Context::Smm).count(&db), 0);
        assert_eq!(
            Query::new()
                .effect(Effect::Hang)
                .effect(Effect::Usb)
                .count(&db),
            1
        );
    }

    #[test]
    fn unannotated_entries_fail_annotation_conditions() {
        let db = db_with(vec![entry(Design::Intel6, 1, None)]);
        assert_eq!(Query::new().min_triggers(1).count(&db), 0);
        assert_eq!(Query::new().annotated_only().count(&db), 0);
        assert_eq!(Query::new().count(&db), 1);
    }

    #[test]
    fn date_window() {
        let db = db_with(vec![entry(Design::Intel6, 1, None)]);
        let before = Date::new(2016, 1, 1).unwrap();
        let after = Date::new(2017, 1, 1).unwrap();
        assert_eq!(Query::new().disclosed_after(before).count(&db), 1);
        assert_eq!(Query::new().disclosed_after(after).count(&db), 0);
        assert_eq!(Query::new().disclosed_before(after).count(&db), 1);
        assert_eq!(Query::new().disclosed_before(before).count(&db), 0);
    }

    #[test]
    fn min_triggers_measures_complexity() {
        let ann = Annotation::builder()
            .trigger(Trigger::Reset, "r")
            .trigger(Trigger::Pcie, "p")
            .build();
        let db = db_with(vec![entry(Design::Intel6, 1, Some(ann))]);
        assert_eq!(Query::new().min_triggers(2).count(&db), 1);
        assert_eq!(Query::new().min_triggers(3).count(&db), 0);
    }

    /// Every query exercised by this module's tests, plus residual and
    /// date combinations, served identically by both engines on a real
    /// (deduped + annotated) corpus.
    #[test]
    fn engines_agree_on_synthetic_corpus() {
        use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.08));
        let mut db = Database::from_documents(&corpus.structured);
        for bug in &corpus.truth.bugs {
            db.annotate_cluster(bug.occurrences[0].id(), bug.profile.annotation.clone());
        }
        let after = Date::new(2016, 1, 1).unwrap();
        let before = Date::new(2019, 6, 1).unwrap();
        let queries = vec![
            Query::new(),
            Query::new().unique_only(),
            Query::new().vendor(Vendor::Intel).unique_only(),
            Query::new().vendor(Vendor::Amd).trigger(Trigger::Reset),
            Query::new().trigger_class(TriggerClass::Ext).unique_only(),
            Query::new().context(Context::VmGuest).context(Context::Smm),
            Query::new().effect(Effect::Hang).effect(Effect::Usb),
            Query::new().msr(MsrName::McStatus).unique_only(),
            Query::new().workaround(WorkaroundCategory::Bios),
            Query::new().fix(FixStatus::Fixed).unique_only(),
            Query::new().disclosed_after(after).disclosed_before(before),
            Query::new().disclosed_after(after).unique_only(),
            Query::new().min_triggers(2),
            Query::new().min_triggers(2).unique_only(),
            Query::new().annotated_only(),
            Query::new()
                .vendor(Vendor::Intel)
                .effect(Effect::Hang)
                .disclosed_after(after)
                .min_triggers(1)
                .unique_only(),
        ];
        let index = QueryIndex::build(&db);
        for q in &queries {
            let scan: Vec<_> = q.run(&db).iter().map(|e| e.id()).collect();
            let indexed: Vec<_> = q.run_indexed(&index, &db).iter().map(|e| e.id()).collect();
            assert_eq!(indexed, scan, "{q:?}");
            assert_eq!(q.count_indexed(&index, &db), scan.len(), "{q:?}");
            assert_eq!(q.count(&db), scan.len(), "{q:?}");
            assert_eq!(q.count_with(&db, QueryEngine::Indexed), scan.len());
            assert_eq!(q.count_with(&db, QueryEngine::Scan), scan.len());
        }
    }

    /// Pinned: `disclosed_after` is inclusive (`>= after`),
    /// `disclosed_before` is exclusive (`< before`) — on both engines.
    #[test]
    fn date_bounds_are_inclusive_exclusive_on_both_engines() {
        let db = db_with(vec![entry(Design::Intel6, 1, None)]);
        let disclosed = Date::new(2016, 6, 15).unwrap(); // the fixture's date
        let index = QueryIndex::build(&db);
        for (q, expect) in [
            (Query::new().disclosed_after(disclosed), 1),
            (Query::new().disclosed_before(disclosed), 0),
            (
                Query::new()
                    .disclosed_after(disclosed)
                    .disclosed_before(disclosed),
                0,
            ),
        ] {
            assert_eq!(q.count(&db), expect, "scan {q:?}");
            assert_eq!(q.count_indexed(&index, &db), expect, "indexed {q:?}");
        }
    }
}
