//! Binary columnar snapshots: the `rememberr-bin/v1` format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "RMBR" | version u32 | 4 sections, each: length u64 + payload
//!   header   — entry count u64, dedup identity stats 4 x u64,
//!              chunk size u32
//!   strings  — deduplicated string table: count u32, then per string
//!              length u32 + UTF-8 bytes, in first-occurrence order
//!   entries  — chunk count u32, then per chunk length u64 + a columnar
//!              block of `chunk size` entries (field-major columns of
//!              fixed-width values and u32 string-table ids)
//!   checksum — one FNV-1a 64 hash per preceding section payload, in
//!              section order
//! ```
//!
//! Strings never repeat on disk: every textual field (titles,
//! descriptions, workaround and status phrases, concrete annotation
//! descriptions, fixed-in steppings) is a `u32` id into the table, which
//! collapses the corpus' heavy repetition of facet phrasing. Load is one
//! buffered read of the whole stream followed by columnar decoding — no
//! per-record text parsing.
//!
//! Both directions fan out over [`rememberr_par::par_map`] in
//! input-ordered chunks of [`CHUNK_ENTRIES`] entries. The string table is
//! built sequentially before encoding starts and is read-only afterwards,
//! so the bytes produced are identical at every worker count; decoding
//! concatenates chunk results in input order, so the database is too.

use std::collections::HashMap;
use std::io::Write;

use rememberr_model::{Annotation, MsrRef, WireError, WireReader, WireWriter};

use crate::db::Database;
use crate::dedup::DedupStats;
use crate::entry::DbEntry;
use crate::persist::PersistError;

/// Magic bytes opening every binary snapshot; [`crate::load`] sniffs them
/// to dispatch between formats.
pub(crate) const MAGIC: [u8; 4] = *b"RMBR";

/// Format identifier of the binary snapshot layout.
pub const BIN_FORMAT: &str = "rememberr-bin";

/// Version written after the magic; bump on any layout change.
pub const BIN_VERSION: u32 = 1;

/// Entries per columnar chunk — the unit of parallel encode/decode.
pub(crate) const CHUNK_ENTRIES: usize = 256;

/// FNV-1a 64-bit hash; the section checksum. Dependency-free and fast
/// enough that verification is a vanishing fraction of load time.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deduplicated string table: unique strings in first-occurrence
/// order plus the id lookup used during encoding.
struct StringTable<'a> {
    strings: Vec<&'a str>,
    ids: HashMap<&'a str, u32>,
}

impl<'a> StringTable<'a> {
    /// Interns every textual field of every entry, walking entries in
    /// database order and fields in column order so the table is a pure
    /// function of the database.
    fn build(entries: &'a [DbEntry]) -> Self {
        let mut table = StringTable {
            strings: Vec::new(),
            ids: HashMap::new(),
        };
        for entry in entries {
            table.intern(&entry.erratum.title);
            table.intern(&entry.erratum.description);
            table.intern(&entry.erratum.implications);
            table.intern(&entry.erratum.workaround);
            table.intern(&entry.erratum.status);
            if let Some(fixed_in) = &entry.fixed_in {
                table.intern(fixed_in);
            }
            if let Some(annotation) = &entry.annotation {
                for text in &annotation.concrete_triggers {
                    table.intern(text);
                }
                for text in &annotation.concrete_contexts {
                    table.intern(text);
                }
                for text in &annotation.concrete_effects {
                    table.intern(text);
                }
            }
        }
        table
    }

    fn intern(&mut self, text: &'a str) {
        if !self.ids.contains_key(text) {
            let id = u32::try_from(self.strings.len()).expect("string table fits u32");
            self.strings.push(text);
            self.ids.insert(text, id);
        }
    }

    fn id(&self, text: &str) -> u32 {
        self.ids[text]
    }
}

/// Writes the database as a binary snapshot.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub(crate) fn save_binary<W: Write>(db: &Database, mut writer: W) -> Result<(), PersistError> {
    let entries = db.entries();
    let table = StringTable::build(entries);

    let stats = db.dedup_stats();
    let mut header = WireWriter::with_capacity(44);
    header.put_u64(entries.len() as u64);
    header.put_u64(stats.entries as u64);
    header.put_u64(stats.clusters as u64);
    header.put_u64(stats.exact_title_merges as u64);
    header.put_u64(stats.cascade_merges as u64);
    header.put_u32(CHUNK_ENTRIES as u32);

    let mut strings = WireWriter::with_capacity(table.strings.iter().map(|s| s.len() + 4).sum());
    strings.put_u32(table.strings.len() as u32);
    for text in &table.strings {
        strings.put_u32(text.len() as u32);
        strings.put_bytes(text.as_bytes());
    }

    // Fan the columnar encoding out in input-ordered chunks; the table is
    // frozen, so every worker count produces the same bytes.
    let chunks: Vec<&[DbEntry]> = entries.chunks(CHUNK_ENTRIES).collect();
    let encoded = rememberr_par::par_map(&chunks, |chunk| encode_chunk(chunk, &table));
    let mut entry_section =
        WireWriter::with_capacity(4 + encoded.iter().map(|c| c.len() + 8).sum::<usize>());
    entry_section.put_u32(encoded.len() as u32);
    for chunk in &encoded {
        entry_section.put_u64(chunk.len() as u64);
        entry_section.put_bytes(chunk);
    }

    let sections = [
        header.as_bytes(),
        strings.as_bytes(),
        entry_section.as_bytes(),
    ];
    let mut checksums = WireWriter::with_capacity(sections.len() * 8);
    for payload in sections {
        checksums.put_u64(fnv1a64(payload));
    }

    let mut bytes_written = (MAGIC.len() + 4) as u64;
    writer.write_all(&MAGIC)?;
    writer.write_all(&BIN_VERSION.to_le_bytes())?;
    for payload in sections.into_iter().chain([checksums.as_bytes()]) {
        writer.write_all(&(payload.len() as u64).to_le_bytes())?;
        writer.write_all(payload)?;
        bytes_written += 8 + payload.len() as u64;
    }
    writer.flush()?;

    rememberr_obs::count("persist.records_written", entries.len() as u64);
    rememberr_obs::count("persist.bytes_written", bytes_written);
    rememberr_obs::count("persist.bin.strings", table.strings.len() as u64);
    rememberr_obs::count("persist.bin.chunks", chunks.len() as u64);
    Ok(())
}

/// One columnar chunk: a count, then field-major columns. Optional
/// columns (key, fixed-in, annotation) are a presence bitmap followed by
/// the present values in entry order.
fn encode_chunk(entries: &[DbEntry], table: &StringTable<'_>) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(entries.len() * 48);
    w.put_u32(entries.len() as u32);
    for e in entries {
        w.put(&e.erratum.id.design);
    }
    for e in entries {
        w.put_u32(e.erratum.id.number);
    }
    let text_columns: [fn(&DbEntry) -> &str; 5] = [
        |e| &e.erratum.title,
        |e| &e.erratum.description,
        |e| &e.erratum.implications,
        |e| &e.erratum.workaround,
        |e| &e.erratum.status,
    ];
    for field in text_columns {
        for e in entries {
            w.put_u32(table.id(field(e)));
        }
    }
    for e in entries {
        w.put(&e.provenance);
    }
    for e in entries {
        w.put(&e.workaround);
    }
    for e in entries {
        w.put(&e.fix);
    }
    put_bitmap(&mut w, entries, |e| e.key.is_some());
    for e in entries {
        if let Some(key) = e.key {
            w.put(&key);
        }
    }
    put_bitmap(&mut w, entries, |e| e.fixed_in.is_some());
    for e in entries {
        if let Some(fixed_in) = &e.fixed_in {
            w.put_u32(table.id(fixed_in));
        }
    }
    put_bitmap(&mut w, entries, |e| e.annotation.is_some());
    for e in entries {
        if let Some(annotation) = &e.annotation {
            encode_annotation(&mut w, annotation, table);
        }
    }
    w.into_bytes()
}

fn encode_annotation(w: &mut WireWriter, a: &Annotation, table: &StringTable<'_>) {
    w.put(&a.triggers);
    w.put(&a.contexts);
    w.put(&a.effects);
    w.put_u8(u8::from(a.complex_conditions));
    for list in [
        &a.concrete_triggers,
        &a.concrete_contexts,
        &a.concrete_effects,
    ] {
        w.put_u32(list.len() as u32);
        for text in list {
            w.put_u32(table.id(text));
        }
    }
    w.put_u32(a.msrs.len() as u32);
    for msr in &a.msrs {
        w.put(msr);
    }
}

fn put_bitmap<F: Fn(&DbEntry) -> bool>(w: &mut WireWriter, entries: &[DbEntry], present: F) {
    let mut byte = 0u8;
    for (i, e) in entries.iter().enumerate() {
        if present(e) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            w.put_u8(byte);
            byte = 0;
        }
    }
    if !entries.is_empty() && !entries.len().is_multiple_of(8) {
        w.put_u8(byte);
    }
}

fn corrupt(detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt(detail.into())
}

/// Reads a database from binary snapshot bytes (including magic).
///
/// # Errors
///
/// [`PersistError::Corrupt`] on any structural violation (bad magic or
/// checksum, out-of-range id, malformed section),
/// [`PersistError::UnsupportedVersion`] on a version mismatch, and
/// [`PersistError::Truncated`] when the chunks hold fewer entries than
/// the header announces.
pub(crate) fn load_binary(bytes: &[u8]) -> Result<Database, PersistError> {
    if bytes.len() < 8 || bytes[..4] != MAGIC {
        return Err(corrupt("missing rememberr-bin magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != BIN_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }

    let mut r = WireReader::new(&bytes[8..]);
    let header = take_section(&mut r, "header")?;
    let strings_payload = take_section(&mut r, "string table")?;
    let entries_payload = take_section(&mut r, "entries")?;
    let checksums = take_section(&mut r, "checksum")?;
    if !r.is_done() {
        return Err(corrupt("trailing bytes after checksum section"));
    }

    let mut cr = WireReader::new(checksums);
    for (name, payload) in [
        ("header", header),
        ("string table", strings_payload),
        ("entries", entries_payload),
    ] {
        let want = cr.take_u64("section checksum")?;
        let got = fnv1a64(payload);
        if got != want {
            return Err(corrupt(format!(
                "checksum mismatch in {name} section: stored {want:#018x}, computed {got:#018x}"
            )));
        }
    }
    if !cr.is_done() {
        return Err(corrupt("oversized checksum section"));
    }

    let mut hr = WireReader::new(header);
    let expected = hr.take_u64("entry count")? as usize;
    let stats = DedupStats {
        entries: hr.take_u64("dedup entries")? as usize,
        clusters: hr.take_u64("dedup clusters")? as usize,
        exact_title_merges: hr.take_u64("dedup exact title merges")? as usize,
        cascade_merges: hr.take_u64("dedup cascade merges")? as usize,
        comparisons_made: 0,
        candidates_pruned: 0,
    };
    let chunk_size = hr.take_u32("chunk size")?;
    if chunk_size == 0 {
        return Err(corrupt("chunk size 0"));
    }
    if !hr.is_done() {
        return Err(corrupt("oversized header section"));
    }

    let mut sr = WireReader::new(strings_payload);
    let string_count = sr.take_u32("string count")? as usize;
    let mut strings = Vec::with_capacity(string_count);
    for _ in 0..string_count {
        let len = sr.take_u32("string length")? as usize;
        let raw = sr.take_bytes(len, "string bytes")?;
        let text = std::str::from_utf8(raw).map_err(|_| corrupt("string table is not UTF-8"))?;
        strings.push(text.to_string());
    }
    if !sr.is_done() {
        return Err(corrupt("trailing bytes in string table"));
    }

    let mut er = WireReader::new(entries_payload);
    let chunk_count = er.take_u32("chunk count")? as usize;
    let mut chunk_slices = Vec::with_capacity(chunk_count);
    for _ in 0..chunk_count {
        let len = er.take_u64("chunk length")? as usize;
        chunk_slices.push(er.take_bytes(len, "entry chunk")?);
    }
    if !er.is_done() {
        return Err(corrupt("trailing bytes in entries section"));
    }

    // Decode chunks in parallel; concatenation in input order keeps the
    // database identical at every worker count.
    let decoded = rememberr_par::par_map(&chunk_slices, |chunk| decode_chunk(chunk, &strings));
    let mut entries = Vec::with_capacity(expected);
    for chunk in decoded {
        entries.extend(chunk?);
    }
    if entries.len() != expected {
        return Err(PersistError::Truncated {
            expected,
            found: entries.len(),
        });
    }

    rememberr_obs::count("persist.records_read", entries.len() as u64);
    rememberr_obs::count("persist.bytes_read", bytes.len() as u64);
    rememberr_obs::count("persist.bin.strings", strings.len() as u64);
    rememberr_obs::count("persist.bin.chunks", chunk_count as u64);

    let mut db = Database::new();
    db.extend(entries);
    db.restore_dedup_stats(stats);
    Ok(db)
}

fn take_section<'a>(r: &mut WireReader<'a>, name: &'static str) -> Result<&'a [u8], PersistError> {
    let len = r.take_u64("section length")? as usize;
    r.take_bytes(len, name)
        .map_err(|_| corrupt(format!("truncated {name} section")))
}

fn decode_chunk(bytes: &[u8], strings: &[String]) -> Result<Vec<DbEntry>, PersistError> {
    let mut r = WireReader::new(bytes);
    let count = r.take_u32("chunk entry count")? as usize;
    let designs: Vec<rememberr_model::Design> = take_column(&mut r, count)?;
    let numbers = take_u32_column(&mut r, count, "erratum number")?;
    let title_ids = take_u32_column(&mut r, count, "title id")?;
    let description_ids = take_u32_column(&mut r, count, "description id")?;
    let implication_ids = take_u32_column(&mut r, count, "implications id")?;
    let workaround_ids = take_u32_column(&mut r, count, "workaround text id")?;
    let status_ids = take_u32_column(&mut r, count, "status text id")?;
    let provenances: Vec<rememberr_model::Provenance> = take_column(&mut r, count)?;
    let workarounds: Vec<rememberr_model::WorkaroundCategory> = take_column(&mut r, count)?;
    let fixes: Vec<rememberr_model::FixStatus> = take_column(&mut r, count)?;

    let has_key = take_bitmap(&mut r, count, "key bitmap")?;
    let mut keys = Vec::with_capacity(count);
    for present in &has_key {
        keys.push(if *present {
            Some(r.take::<rememberr_model::UniqueKey>()?)
        } else {
            None
        });
    }
    let has_fixed_in = take_bitmap(&mut r, count, "fixed-in bitmap")?;
    let mut fixed_ins = Vec::with_capacity(count);
    for present in &has_fixed_in {
        fixed_ins.push(if *present {
            Some(resolve(strings, r.take_u32("fixed-in id")?)?.to_string())
        } else {
            None
        });
    }
    let has_annotation = take_bitmap(&mut r, count, "annotation bitmap")?;
    let mut annotations = Vec::with_capacity(count);
    for present in &has_annotation {
        annotations.push(if *present {
            Some(decode_annotation(&mut r, strings)?)
        } else {
            None
        });
    }
    if !r.is_done() {
        return Err(corrupt("trailing bytes in entry chunk"));
    }

    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        entries.push(DbEntry {
            erratum: rememberr_model::Erratum {
                id: rememberr_model::ErratumId::new(designs[i], numbers[i]),
                title: resolve(strings, title_ids[i])?.to_string(),
                description: resolve(strings, description_ids[i])?.to_string(),
                implications: resolve(strings, implication_ids[i])?.to_string(),
                workaround: resolve(strings, workaround_ids[i])?.to_string(),
                status: resolve(strings, status_ids[i])?.to_string(),
            },
            provenance: provenances[i],
            workaround: workarounds[i],
            fix: fixes[i],
            annotation: annotations[i].take(),
            key: keys[i],
            fixed_in: fixed_ins[i].take(),
        });
    }
    Ok(entries)
}

fn decode_annotation(r: &mut WireReader<'_>, strings: &[String]) -> Result<Annotation, WireError> {
    let triggers = r.take()?;
    let contexts = r.take()?;
    let effects = r.take()?;
    let complex_conditions = match r.take_u8("complex conditions flag")? {
        0 => false,
        1 => true,
        tag => {
            return Err(WireError::InvalidValue {
                what: "complex conditions flag",
                value: u64::from(tag),
            })
        }
    };
    let mut lists = [Vec::new(), Vec::new(), Vec::new()];
    for list in &mut lists {
        let len = r.take_u32("concrete description count")? as usize;
        list.reserve(len);
        for _ in 0..len {
            let id = r.take_u32("concrete description id")?;
            let text = strings
                .get(id as usize)
                .ok_or(WireError::InvalidValue {
                    what: "string id",
                    value: u64::from(id),
                })?
                .clone();
            list.push(text);
        }
    }
    let [concrete_triggers, concrete_contexts, concrete_effects] = lists;
    let msr_count = r.take_u32("msr count")? as usize;
    let mut msrs = Vec::with_capacity(msr_count);
    for _ in 0..msr_count {
        msrs.push(r.take::<MsrRef>()?);
    }
    Ok(Annotation {
        triggers,
        contexts,
        effects,
        concrete_triggers,
        concrete_contexts,
        concrete_effects,
        msrs,
        complex_conditions,
    })
}

fn take_column<T: rememberr_model::WireDecode>(
    r: &mut WireReader<'_>,
    count: usize,
) -> Result<Vec<T>, WireError> {
    let mut column = Vec::with_capacity(count);
    for _ in 0..count {
        column.push(r.take::<T>()?);
    }
    Ok(column)
}

fn take_u32_column(
    r: &mut WireReader<'_>,
    count: usize,
    what: &'static str,
) -> Result<Vec<u32>, WireError> {
    let mut column = Vec::with_capacity(count);
    for _ in 0..count {
        column.push(r.take_u32(what)?);
    }
    Ok(column)
}

fn take_bitmap(
    r: &mut WireReader<'_>,
    count: usize,
    what: &'static str,
) -> Result<Vec<bool>, WireError> {
    let bytes = r.take_bytes(count.div_ceil(8), what)?;
    Ok((0..count)
        .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect())
}

fn resolve(strings: &[String], id: u32) -> Result<&str, PersistError> {
    strings
        .get(id as usize)
        .map(String::as_str)
        .ok_or_else(|| corrupt(format!("string id {id} out of range ({})", strings.len())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{load, save_as, SnapshotFormat};
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
    use rememberr_model::{Context, Effect, MsrName, Trigger};

    /// A deduplicated database with hand-attached annotations and
    /// fixed-in steppings, so every optional column is exercised. (The
    /// real classifier runs in the integration suite; a core unit test
    /// cannot depend on the classify crate without a cycle.)
    fn annotated_db(scale: f64) -> Database {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let base = Database::from_documents(&corpus.structured);
        let stats = base.dedup_stats();
        let mut entries = base.entries().to_vec();
        for (i, e) in entries.iter_mut().enumerate() {
            if i % 2 == 0 {
                let mut builder = Annotation::builder()
                    .trigger(Trigger::Reset, "a warm reset")
                    .context(Context::Smm, "while in SMM")
                    .effect(Effect::Hang, "the processor hangs")
                    .msr(MsrRef::canonical(MsrName::McStatus));
                if i % 6 == 0 {
                    builder = builder.complex_conditions();
                }
                e.annotation = Some(builder.build());
            }
            if i % 3 == 0 {
                e.fixed_in = Some(format!("stepping {}", i % 5));
            }
        }
        let mut db = Database::new();
        db.extend(entries);
        db.restore_dedup_stats(stats);
        db
    }

    fn binary_bytes(db: &Database) -> Vec<u8> {
        let mut buf = Vec::new();
        save_as(db, &mut buf, SnapshotFormat::Binary).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_everything_including_annotations() {
        let db = annotated_db(0.05);
        assert!(db.entries().iter().any(|e| e.annotation.is_some()));
        let bytes = binary_bytes(&db);
        let back = load(bytes.as_slice()).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.dedup_stats(), db.dedup_stats());
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let back = load(binary_bytes(&db).as_slice()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn chunk_boundary_counts_roundtrip() {
        // One over and one under a chunk boundary, plus an exact multiple.
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.15));
        let full = Database::from_documents(&corpus.structured);
        for count in [
            CHUNK_ENTRIES - 1,
            CHUNK_ENTRIES,
            CHUNK_ENTRIES + 1,
            full.len().min(2 * CHUNK_ENTRIES),
        ] {
            let mut db = Database::new();
            db.extend(full.entries()[..count].to_vec());
            let back = load(binary_bytes(&db).as_slice()).unwrap();
            assert_eq!(back, db, "count {count}");
        }
    }

    #[test]
    fn string_table_deduplicates() {
        let db = annotated_db(0.1);
        let table = StringTable::build(db.entries());
        let total: usize = db
            .entries()
            .iter()
            .map(|e| {
                5 + e.annotation.as_ref().map_or(0, |a| {
                    a.concrete_triggers.len() + a.concrete_contexts.len() + a.concrete_effects.len()
                })
            })
            .sum();
        assert!(
            table.strings.len() < total,
            "table {} should collapse {total} field occurrences",
            table.strings.len()
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let db = annotated_db(0.03);
        let mut bytes = binary_bytes(&db);
        bytes[0] = b'X';
        // Without the magic the stream falls through to the JSONL parser,
        // which rejects it (bad header, or invalid UTF-8 from `read_line`).
        let err = load(bytes.as_slice()).unwrap_err();
        assert!(
            matches!(err, PersistError::BadHeader(_) | PersistError::Io(_)),
            "expected rejection, got {err}"
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let db = annotated_db(0.03);
        let mut bytes = binary_bytes(&db);
        bytes[4] = 99;
        assert!(matches!(
            load(bytes.as_slice()),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_flipped_payload_byte_via_checksum() {
        let db = annotated_db(0.03);
        let mut bytes = binary_bytes(&db);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = load(bytes.as_slice()).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(msg) if msg.contains("checksum")),
            "expected checksum rejection, got {err}"
        );
    }

    #[test]
    fn rejects_truncated_section() {
        let db = annotated_db(0.03);
        let bytes = binary_bytes(&db);
        let err = load(&bytes[..bytes.len() - 20]).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(_)),
            "expected corrupt, got {err}"
        );
    }

    #[test]
    fn rejects_entry_count_mismatch_as_truncated() {
        let db = annotated_db(0.03);
        let mut bytes = binary_bytes(&db);
        // Forge the header's entry count (bytes 16.. hold the first header
        // field after magic+version+section length) and re-stamp its
        // checksum so the count check, not the checksum, fires.
        let announced = db.len() as u64 + 7;
        bytes[16..24].copy_from_slice(&announced.to_le_bytes());
        let header_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let header_payload = bytes[16..16 + header_len].to_vec();
        let checksum_pos = bytes.len() - 24;
        bytes[checksum_pos..checksum_pos + 8]
            .copy_from_slice(&fnv1a64(&header_payload).to_le_bytes());
        assert!(matches!(
            load(bytes.as_slice()),
            Err(PersistError::Truncated { expected, found })
                if expected == db.len() + 7 && found == db.len()
        ));
    }
}
