//! Ground-truth evaluation of the pipeline.
//!
//! The original study could not measure its own extraction or dedup
//! accuracy — there was nothing to compare against. The synthetic corpus
//! ships ground truth, so this module scores:
//!
//! * **deduplication** — pairwise precision/recall of "same bug" decisions
//!   and exact cluster-count agreement;
//! * **classification** — per-category precision/recall/F1 of annotations
//!   against the true labels.

use std::collections::HashMap;

use rememberr_docgen::GroundTruth;
use rememberr_model::{Category, ErratumId, UniqueKey};
use serde::{Deserialize, Serialize};

use crate::db::Database;

/// Precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Prf {
    /// Precision: `tp / (tp + fp)`; 1 if there are no positives.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: `tp / (tp + fn)`; 1 if there is nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accumulates another count triple.
    pub fn add(&mut self, other: Prf) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// Result of evaluating duplicate keying against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DedupEvaluation {
    /// Pairwise same-bug decision quality.
    pub pairs: Prf,
    /// Clusters the database produced.
    pub predicted_clusters: usize,
    /// True unique bugs.
    pub true_clusters: usize,
}

/// Maps each database entry to its true bug key.
///
/// Name-collision identifiers are ambiguous (two bugs share one id); those
/// entries are skipped, exactly as a human analyst would set them aside.
fn truth_keys(db: &Database, truth: &GroundTruth) -> Vec<(usize, UniqueKey)> {
    let mut out = Vec::with_capacity(db.len());
    // Count listings per id so collisions can be skipped.
    let mut id_claims: HashMap<ErratumId, Vec<UniqueKey>> = HashMap::new();
    for bug in &truth.bugs {
        for occ in &bug.occurrences {
            id_claims.entry(occ.id()).or_default().push(bug.key);
        }
    }
    for (i, entry) in db.entries().iter().enumerate() {
        // Unknown ids and collisions are skipped.
        if let Some([key]) = id_claims.get(&entry.id()).map(Vec::as_slice) {
            out.push((i, *key));
        }
    }
    out
}

/// Scores duplicate keying against ground truth.
///
/// Pairwise scoring considers every pair of (unambiguous) entries: a true
/// positive is a pair the database keys together that the truth also keys
/// together.
pub fn evaluate_dedup(db: &Database, truth: &GroundTruth) -> DedupEvaluation {
    let mapped = truth_keys(db, truth);
    let mut pairs = Prf::default();
    for (a_idx, (ia, ka)) in mapped.iter().enumerate() {
        let ea = &db.entries()[*ia];
        for (ib, kb) in mapped.iter().skip(a_idx + 1) {
            let eb = &db.entries()[*ib];
            let predicted_same = ea.key.is_some() && ea.key == eb.key;
            let truly_same = ka == kb;
            match (predicted_same, truly_same) {
                (true, true) => pairs.tp += 1,
                (true, false) => pairs.fp += 1,
                (false, true) => pairs.fn_ += 1,
                (false, false) => {}
            }
        }
    }
    DedupEvaluation {
        pairs,
        predicted_clusters: db.unique_count(),
        true_clusters: truth.bugs.len(),
    }
}

/// Result of evaluating annotations against ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClassificationEvaluation {
    /// Per-category counts, indexed by [`Category::dense_index`].
    pub per_category: Vec<Prf>,
    /// Aggregate over all categories (micro-average).
    pub overall: Prf,
    /// Entries that were compared (annotated and unambiguous).
    pub compared_entries: usize,
}

impl ClassificationEvaluation {
    /// The counts for one category.
    pub fn category(&self, category: Category) -> Prf {
        self.per_category[category.dense_index()]
    }
}

/// Scores entry annotations against the true labels.
///
/// Entries without an annotation or with ambiguous (collided) identifiers
/// are skipped.
pub fn evaluate_classification(db: &Database, truth: &GroundTruth) -> ClassificationEvaluation {
    let mut per_category = vec![Prf::default(); Category::COUNT];
    let mut compared = 0usize;

    let mut by_key: HashMap<UniqueKey, usize> = HashMap::new();
    for (i, bug) in truth.bugs.iter().enumerate() {
        by_key.insert(bug.key, i);
    }
    let mapped = truth_keys(db, truth);
    for (idx, true_key) in mapped {
        let entry = &db.entries()[idx];
        let Some(ann) = entry.annotation.as_ref() else {
            continue;
        };
        let bug = &truth.bugs[by_key[&true_key]];
        let want = &bug.profile.annotation;
        compared += 1;
        for category in Category::all() {
            let (predicted, actual) = match category {
                Category::Trigger(t) => (ann.triggers.contains(t), want.triggers.contains(t)),
                Category::Context(c) => (ann.contexts.contains(c), want.contexts.contains(c)),
                Category::Effect(e) => (ann.effects.contains(e), want.effects.contains(e)),
            };
            let slot = &mut per_category[category.dense_index()];
            match (predicted, actual) {
                (true, true) => slot.tp += 1,
                (true, false) => slot.fp += 1,
                (false, true) => slot.fn_ += 1,
                (false, false) => {}
            }
        }
    }

    let mut overall = Prf::default();
    for prf in &per_category {
        overall.add(*prf);
    }
    ClassificationEvaluation {
        per_category,
        overall,
        compared_entries: compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dedup::DedupStrategy;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    #[test]
    fn prf_math() {
        let prf = Prf {
            tp: 8,
            fp: 2,
            fn_: 4,
        };
        assert!((prf.precision() - 0.8).abs() < 1e-12);
        assert!((prf.recall() - 8.0 / 12.0).abs() < 1e-12);
        assert!(prf.f1() > 0.7 && prf.f1() < 0.8);
        let empty = Prf::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);
    }

    #[test]
    fn default_dedup_is_perfect_on_synthetic_corpus() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.08));
        let db = Database::from_documents(&corpus.structured);
        let eval = evaluate_dedup(&db, &corpus.truth);
        assert_eq!(eval.predicted_clusters, eval.true_clusters);
        assert_eq!(eval.pairs.fp, 0, "false merges");
        assert_eq!(eval.pairs.fn_, 0, "missed duplicates");
    }

    #[test]
    fn exact_title_only_misses_near_duplicates() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.3));
        let db = Database::from_documents_with(&corpus.structured, DedupStrategy::ExactTitleOnly);
        let eval = evaluate_dedup(&db, &corpus.truth);
        // The ablation baseline over-splits: near-duplicate listings stay
        // apart, giving missed pairs and extra clusters.
        assert!(eval.pairs.fn_ > 0);
        assert!(eval.predicted_clusters > eval.true_clusters);
        assert_eq!(eval.pairs.fp, 0);
    }

    #[test]
    fn perfect_annotations_score_one() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let mut db = Database::from_documents(&corpus.structured);
        for bug in &corpus.truth.bugs {
            db.annotate_cluster(bug.occurrences[0].id(), bug.profile.annotation.clone());
        }
        let eval = evaluate_classification(&db, &corpus.truth);
        assert!(eval.compared_entries > 0);
        assert_eq!(eval.overall.fp, 0);
        assert_eq!(eval.overall.fn_, 0);
        assert_eq!(eval.overall.f1(), 1.0);
    }

    #[test]
    fn wrong_annotations_are_penalized() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let mut db = Database::from_documents(&corpus.structured);
        // Annotate everything with an empty annotation: all true categories
        // become false negatives.
        for bug in &corpus.truth.bugs {
            db.annotate_cluster(bug.occurrences[0].id(), Default::default());
        }
        let eval = evaluate_classification(&db, &corpus.truth);
        assert_eq!(eval.overall.fp, 0);
        assert!(eval.overall.fn_ > 0);
        assert!(eval.overall.recall() < 0.1);
    }

    #[test]
    fn unannotated_entries_are_skipped() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let db = Database::from_documents(&corpus.structured);
        let eval = evaluate_classification(&db, &corpus.truth);
        assert_eq!(eval.compared_entries, 0);
        assert_eq!(eval.overall.f1(), 1.0); // vacuous truth
    }
}
