//! The RemembERR database: annotated microprocessor errata.
//!
//! This crate is the Rust counterpart of the paper's primary artifact: a
//! database of errata entries with
//!
//! * **duplicate keying** ([`assign_keys`], [`DedupStrategy`]): AMD errata
//!   cluster by their vendor-global numbers; Intel errata cluster by exact
//!   normalized titles plus a similarity cascade standing in for the
//!   study's manual near-duplicate matching (Section IV-A);
//! * **provenance** (approximate disclosure dates from revision
//!   histories, Section IV-B1);
//! * **annotations** (triggers/contexts/effects, attached per cluster);
//! * **queries** ([`Query`]) over entries or unique bugs, served by
//!   posting-list intersection ([`QueryIndex`]) with the full scan kept as
//!   the correctness oracle ([`QueryEngine`]);
//! * **persistence** ([`save`]/[`load`], JSON Lines);
//! * **evaluation** against the synthetic corpus's ground truth
//!   ([`evaluate_dedup`], [`evaluate_classification`]) — something the
//!   original study could not do.
//!
//! # Examples
//!
//! ```
//! use rememberr::{Database, Query};
//! use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
//! use rememberr_model::Vendor;
//!
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
//! let db = Database::from_documents(&corpus.structured);
//!
//! let intel_unique = Query::new().vendor(Vendor::Intel).unique_only().run(&db);
//! assert_eq!(intel_unique.len(), db.unique_count_for(Vendor::Intel));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod candidates;
mod db;
mod dedup;
mod entry;
mod evaluate;
mod index;
mod persist;
mod persist_bin;
mod query;

pub use candidates::CandidateGen;
pub use db::Database;
pub use dedup::{
    assign_keys, assign_keys_analyzed, assign_keys_with, DedupStats, DedupStrategy,
    DEFAULT_SIMILARITY_THRESHOLD,
};
pub use entry::DbEntry;
pub use evaluate::{
    evaluate_classification, evaluate_dedup, ClassificationEvaluation, DedupEvaluation, Prf,
};
pub use index::{QueryEngine, QueryIndex};
pub use persist::{load, save, save_as, PersistError, SnapshotFormat, FORMAT, VERSION};
pub use persist_bin::{BIN_FORMAT, BIN_VERSION};
pub use query::Query;
