//! End-to-end classification of a database.
//!
//! Mirrors the study's workflow (Section V-A1):
//!
//! 1. merge identical unique errata (annotation happens once per cluster);
//! 2. auto-decide erratum-category pairs with the rule library;
//! 3. route the remaining pairs through the four-eyes process;
//! 4. attach the final annotations to every cluster member.

use std::collections::HashMap;

use rememberr::Database;
use rememberr_docgen::GroundTruth;
use rememberr_model::{Annotation, Category, ErratumId, UniqueKey};
use rememberr_textkit::AnalyzedCorpus;
use serde::{Deserialize, Serialize};

/// Concrete-snippet placeholder for categories added by human reviewers,
/// who assign an abstract category without quoting erratum text.
const HUMAN_SNIPPET: &str = "[four-eyes]";

use crate::auto::{classify_prepared_with, prepare, MatcherKind};
use crate::foureyes::{run_four_eyes_over, FourEyesConfig, FourEyesOutcome, HumanItem};
use crate::rules::Rules;

/// Who answers the pairs the relevance filter could not decide.
#[derive(Debug, Clone, Copy)]
pub enum HumanOracle<'a> {
    /// Nobody: undecided pairs default to "not relevant" (pure-auto mode).
    None,
    /// Simulated annotators reading ground truth through a noise model.
    Simulated(&'a GroundTruth),
}

/// Workload statistics of a classification run (the Section V-A1 numbers:
/// `1128 x 60 = 67,680` raw decisions, reduced to 2,064 per human).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionStats {
    /// Unique errata classified.
    pub unique_errata: usize,
    /// Raw decisions per human before filtering (`unique x 60`).
    pub raw_decisions: usize,
    /// Decisions resolved automatically by the relevance filter.
    pub auto_decided: usize,
    /// Decisions left for each human.
    pub human_decisions: usize,
}

impl DecisionStats {
    /// Fraction of raw decisions eliminated by the filter.
    pub fn reduction(&self) -> f64 {
        if self.raw_decisions == 0 {
            return 0.0;
        }
        1.0 - self.human_decisions as f64 / self.raw_decisions as f64
    }
}

/// Result of classifying a database.
#[derive(Debug, Clone)]
pub struct ClassificationRun {
    /// Workload statistics.
    pub stats: DecisionStats,
    /// The four-eyes simulation output (when an oracle was available).
    pub four_eyes: Option<FourEyesOutcome>,
}

/// Classifies every cluster of the database in place with the default
/// (indexed) rule matcher. See [`classify_database_with`].
pub fn classify_database(
    db: &mut Database,
    rules: &Rules,
    oracle: HumanOracle<'_>,
    config: &FourEyesConfig,
) -> ClassificationRun {
    classify_database_with(db, rules, oracle, config, MatcherKind::default())
}

/// Classifies every cluster of the database in place.
///
/// Returns workload statistics and, when `oracle` is
/// [`HumanOracle::Simulated`], the four-eyes step reports that regenerate
/// Figures 8 and 9.
///
/// The `matcher` choice ([`MatcherKind`]) selects how the rule library is
/// evaluated; both kinds produce byte-identical databases and statistics.
pub fn classify_database_with(
    db: &mut Database,
    rules: &Rules,
    oracle: HumanOracle<'_>,
    config: &FourEyesConfig,
    matcher: MatcherKind,
) -> ClassificationRun {
    classify_database_impl(db, rules, oracle, config, matcher, None)
}

/// [`classify_database_with`] over a database whose entries were already
/// tokenized into an [`AnalyzedCorpus`] (index `i` of the corpus must hold
/// the preparation of entry `i`'s full text, as produced by
/// `Database::from_documents_analyzed`). The rule stage borrows each
/// representative's prepared text from the corpus instead of re-tokenizing
/// it, which is what makes the single-pass pipeline single-pass.
pub fn classify_database_analyzed(
    db: &mut Database,
    rules: &Rules,
    oracle: HumanOracle<'_>,
    config: &FourEyesConfig,
    matcher: MatcherKind,
    corpus: &AnalyzedCorpus,
) -> ClassificationRun {
    assert_eq!(
        corpus.len(),
        db.entries().len(),
        "analyzed corpus must align with the database entries"
    );
    classify_database_impl(db, rules, oracle, config, matcher, Some(corpus))
}

fn classify_database_impl(
    db: &mut Database,
    rules: &Rules,
    oracle: HumanOracle<'_>,
    config: &FourEyesConfig,
    matcher: MatcherKind,
    corpus: Option<&AnalyzedCorpus>,
) -> ClassificationRun {
    let _span = rememberr_obs::span!("classify.database");
    // One representative per cluster ("we merge identical unique errata").
    let representatives: Vec<(ErratumId, UniqueKey)> = db
        .unique_entries()
        .iter()
        .map(|e| (e.id(), e.key.expect("deduplicated database")))
        .collect();

    // Identifiers can collide across vendors; `Database::entry` resolves a
    // collision to the first occurrence, so the positional index does the
    // same. The positions also address the analyzed corpus, which is
    // aligned with the entry slice.
    let mut index_of: HashMap<ErratumId, usize> = HashMap::new();
    for (i, entry) in db.entries().iter().enumerate() {
        index_of.entry(entry.id()).or_insert(i);
    }
    let rep_entries: Vec<usize> = representatives.iter().map(|(id, _)| index_of[id]).collect();

    let mut annotations: HashMap<UniqueKey, Annotation> = HashMap::new();
    let mut human_items: Vec<HumanItem> = Vec::new();
    let mut auto_decided = 0usize;

    // Ground-truth lookup for the simulated annotators.
    let truth_by_id: HashMap<ErratumId, &rememberr_docgen::TrueBug> = match oracle {
        HumanOracle::Simulated(truth) => {
            let mut map = HashMap::new();
            for bug in &truth.bugs {
                for occ in &bug.occurrences {
                    map.insert(occ.id(), bug);
                }
            }
            map
        }
        HumanOracle::None => HashMap::new(),
    };

    // Rule classification is pure per representative, so it fans out across
    // workers; everything order-sensitive below (annotation bookkeeping,
    // human-item collection, the seeded four-eyes simulation) consumes the
    // results sequentially in representative order, keeping the run
    // identical at every worker count.
    let autos = {
        let _span = rememberr_obs::span!("classify.rules");
        rememberr_par::par_map(&rep_entries, |&i| {
            let entry = &db.entries()[i];
            match corpus {
                Some(corpus) => {
                    classify_prepared_with(rules, &entry.erratum, corpus.text(i), matcher)
                }
                None => {
                    classify_prepared_with(rules, &entry.erratum, &prepare(&entry.erratum), matcher)
                }
            }
        })
    };

    for ((id, key), auto) in representatives.iter().zip(autos) {
        auto_decided += auto.auto_decided;
        annotations.insert(*key, auto.annotation);

        if let HumanOracle::Simulated(_) = oracle {
            if let Some(bug) = truth_by_id.get(id) {
                let want = &bug.profile.annotation;
                for category in auto.needs_human {
                    let truth = match category {
                        Category::Trigger(t) => want.triggers.contains(t),
                        Category::Context(c) => want.contexts.contains(c),
                        Category::Effect(e) => want.effects.contains(e),
                    };
                    human_items.push(HumanItem {
                        id: *id,
                        category,
                        truth,
                    });
                }
            }
        }
    }

    // Four-eyes resolution of the undecided pairs.
    let four_eyes = match oracle {
        HumanOracle::Simulated(_) => {
            // Batch over the full unique-errata population: Figure 8 counts
            // every classified erratum, not only those needing human items.
            let population: Vec<ErratumId> = representatives.iter().map(|(id, _)| *id).collect();
            let outcome = {
                let _span = rememberr_obs::span!("classify.four_eyes");
                run_four_eyes_over(config, &population, &human_items)
            };
            let key_of: HashMap<ErratumId, UniqueKey> = representatives.iter().copied().collect();
            for resolution in &outcome.resolutions {
                if !resolution.relevant {
                    continue;
                }
                let key = key_of[&resolution.id];
                let ann = annotations.get_mut(&key).expect("annotated representative");
                // Human-added categories carry no text snippet; a visible
                // placeholder keeps the concrete lists parallel AND survives
                // the Table VII render/parse round-trip (an empty string
                // would vanish on re-parse).
                match resolution.category {
                    Category::Trigger(t) => {
                        if ann.triggers.insert(t) {
                            ann.concrete_triggers.push(HUMAN_SNIPPET.to_string());
                        }
                    }
                    Category::Context(c) => {
                        if ann.contexts.insert(c) {
                            ann.concrete_contexts.push(HUMAN_SNIPPET.to_string());
                        }
                    }
                    Category::Effect(e) => {
                        if ann.effects.insert(e) {
                            ann.concrete_effects.push(HUMAN_SNIPPET.to_string());
                        }
                    }
                }
            }
            Some(outcome)
        }
        HumanOracle::None => None,
    };

    // Attach to every cluster member (by key: identifiers can collide).
    for (_, key) in &representatives {
        let ann = annotations.remove(key).expect("annotation present");
        db.annotate_key(*key, ann);
    }

    let unique_errata = representatives.len();
    let stats = DecisionStats {
        unique_errata,
        raw_decisions: unique_errata * Category::COUNT,
        auto_decided,
        human_decisions: human_items.len(),
    };
    // The paper's 67,680 -> 2,064 workload reduction, as live counters.
    rememberr_obs::count("classify.raw_decisions", stats.raw_decisions as u64);
    rememberr_obs::count("classify.relevance_eliminations", stats.auto_decided as u64);
    rememberr_obs::count("classify.human_decisions", stats.human_decisions as u64);
    if let Some(outcome) = &four_eyes {
        rememberr_obs::count("classify.four_eyes_steps", outcome.steps.len() as u64);
        rememberr_obs::count(
            "classify.four_eyes_resolutions",
            outcome.resolutions.len() as u64,
        );
    }
    ClassificationRun { stats, four_eyes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr::evaluate_classification;
    use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

    fn classified(scale: f64) -> (SyntheticCorpus, Database, ClassificationRun) {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let mut db = Database::from_documents(&corpus.structured);
        let rules = Rules::standard();
        let run = classify_database(
            &mut db,
            &rules,
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        (corpus, db, run)
    }

    #[test]
    fn every_entry_gets_annotated() {
        let (_, db, _) = classified(0.05);
        assert!(db.entries().iter().all(|e| e.annotation.is_some()));
    }

    #[test]
    fn decision_stats_add_up() {
        let (_, _, run) = classified(0.05);
        assert_eq!(
            run.stats.auto_decided + run.stats.human_decisions,
            run.stats.raw_decisions
        );
        assert!(run.stats.reduction() > 0.9, "{:?}", run.stats);
    }

    #[test]
    fn classification_quality_is_high() {
        let (corpus, db, _) = classified(0.1);
        let eval = evaluate_classification(&db, &corpus.truth);
        assert!(eval.compared_entries > 0);
        let f1 = eval.overall.f1();
        assert!(f1 > 0.75, "overall F1 {f1}");
    }

    #[test]
    fn pure_auto_mode_still_annotates() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let mut db = Database::from_documents(&corpus.structured);
        let rules = Rules::standard();
        let run = classify_database(
            &mut db,
            &rules,
            HumanOracle::None,
            &FourEyesConfig::default(),
        );
        assert!(run.four_eyes.is_none());
        assert_eq!(run.stats.human_decisions, 0);
        assert!(db.entries().iter().all(|e| e.annotation.is_some()));
    }

    #[test]
    fn four_eyes_reports_cover_all_unique_errata_with_human_items() {
        let (_, _, run) = classified(0.1);
        let outcome = run.four_eyes.expect("simulated oracle");
        assert_eq!(outcome.steps.len(), 7);
        assert_eq!(outcome.resolutions.len(), run.stats.human_decisions,);
    }

    #[test]
    fn matchers_produce_identical_databases() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let rules = Rules::standard();
        let mut runs = Vec::new();
        for matcher in [MatcherKind::Indexed, MatcherKind::Exhaustive] {
            let mut db = Database::from_documents(&corpus.structured);
            let run = classify_database_with(
                &mut db,
                &rules,
                HumanOracle::Simulated(&corpus.truth),
                &FourEyesConfig::default(),
                matcher,
            );
            runs.push((db, run.stats));
        }
        let (db_a, stats_a) = &runs[0];
        let (db_b, stats_b) = &runs[1];
        assert_eq!(stats_a, stats_b);
        assert_eq!(db_a.entries(), db_b.entries());
    }

    #[test]
    fn analyzed_and_per_stage_classification_agree() {
        use rememberr_model::Vendor;
        use rememberr_textkit::DocText;

        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let rules = Rules::standard();

        let mut legacy = Database::from_documents(&corpus.structured);
        let legacy_run = classify_database_with(
            &mut legacy,
            &rules,
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
            MatcherKind::default(),
        );

        let mut analyzed = Database::from_documents(&corpus.structured);
        let arena = AnalyzedCorpus::analyze(analyzed.entries(), |e| DocText {
            text: e.erratum.full_text(),
            title_len: e.erratum.title.len(),
            analyze_title: e.vendor() == Vendor::Intel,
        });
        let analyzed_run = classify_database_analyzed(
            &mut analyzed,
            &rules,
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
            MatcherKind::default(),
            &arena,
        );

        assert_eq!(legacy_run.stats, analyzed_run.stats);
        assert_eq!(legacy.entries(), analyzed.entries());
    }

    #[test]
    fn cluster_members_share_annotations() {
        let (_, db, _) = classified(0.08);
        for rep in db.unique_entries() {
            let key = rep.key.unwrap();
            let ann = rep.annotation.as_ref().unwrap();
            for member in db.cluster(key) {
                assert_eq!(member.annotation.as_ref(), Some(ann));
            }
        }
    }
}
