//! Classification of errata into the RemembERR taxonomy.
//!
//! Reproduces the study's software-assisted classification (Section V-A1):
//!
//! * [`Rules`] — the pattern library (strong rules classify automatically,
//!   weak cues defer to humans), also powering the syntax-highlighting
//!   assist;
//! * [`classify_erratum`] / [`Decision`] — the relevance filter that cut
//!   67,680 decisions per human down to 2,064;
//! * [`run_four_eyes`] — the two-annotators-plus-discussion simulation
//!   whose step reports regenerate Figures 8 and 9;
//! * [`classify_database`] — the end-to-end pipeline attaching annotations
//!   to every cluster;
//! * [`percent_agreement`] / [`cohens_kappa`] — agreement statistics.
//!
//! # Examples
//!
//! ```
//! use rememberr::Database;
//! use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
//! use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
//!
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.03));
//! let mut db = Database::from_documents(&corpus.structured);
//! let run = classify_database(
//!     &mut db,
//!     &Rules::standard(),
//!     HumanOracle::Simulated(&corpus.truth),
//!     &FourEyesConfig::default(),
//! );
//! assert!(run.stats.reduction() > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod agreement;
mod auto;
mod foureyes;
mod pipeline;
mod rules;

pub use agreement::{cohens_kappa, percent_agreement};
pub use auto::{
    classify_erratum, classify_erratum_with, classify_prepared_with, decide, prepare,
    AutoClassification, Decision, MatcherKind,
};
pub use foureyes::{
    run_four_eyes, run_four_eyes_over, FourEyesConfig, FourEyesOutcome, HumanItem, Resolution,
    StepReport,
};
pub use pipeline::{
    classify_database, classify_database_analyzed, classify_database_with, ClassificationRun,
    DecisionStats, HumanOracle,
};
pub use rules::Rules;
