//! The rule library: phrase patterns per abstract category.
//!
//! Two tiers per category:
//!
//! * **strong** patterns are specific enough to classify automatically
//!   (the paper: "some errata contain expressions that are specific enough
//!   to be classified automatically using regular expressions");
//! * **weak** patterns only indicate that the category *might* apply — the
//!   erratum-category pair then needs a human decision (the paper's
//!   filtering reduced 67,680 decisions per human to 2,064).
//!
//! The same patterns drive the syntax-highlighting assist
//! ([`rememberr_textkit::highlights`]) used during manual classification.

use rememberr_model::Category;
use rememberr_textkit::{Pattern, PatternSet, RuleMatcher};

/// The compiled rule library.
///
/// Compilation pre-groups rules per category (so per-category lookups are
/// index reads, not scans over the whole library) and builds one shared
/// [`RuleMatcher`] over strong + weak + complex patterns, in that order, so
/// the whole library matches against an erratum in a single indexed pass.
#[derive(Debug, Clone)]
pub struct Rules {
    strong: Vec<(Category, Pattern)>,
    weak: Vec<(Category, Pattern)>,
    complex: Vec<Pattern>,
    /// Per-category indices into `strong` (`Category::dense_index` keyed),
    /// in library order.
    strong_by_cat: Vec<Vec<usize>>,
    /// Per-category indices into `weak`, in library order.
    weak_by_cat: Vec<Vec<usize>>,
    /// Indexed matcher over `strong ++ weak ++ complex`; a strong rule's
    /// matcher id is its `strong` index, a weak rule's is
    /// `strong.len() + weak index`, a complex marker's is
    /// `strong.len() + weak.len() + complex index`.
    matcher: RuleMatcher,
}

/// `(category code, DSL pattern)` rows; compiled by [`Rules::standard`].
const STRONG_RULES: &[(&str, &str)] = &[
    // --- Triggers: memory boundaries -----------------------------------
    ("Trg_MBR_cbr", "cache line boundary"),
    ("Trg_MBR_cbr", "straddles <1> cache lines"),
    ("Trg_MBR_cbr", "spanning a cache line"),
    ("Trg_MBR_pgb", "page boundary"),
    ("Trg_MBR_mbr", "canonical <2> boundary"),
    ("Trg_MBR_mbr", "memory map boundary"),
    ("Trg_MBR_mbr", "canonical address boundary"),
    // --- Triggers: memory operations ------------------------------------
    ("Trg_MOP_mmp", "memory-mapped"),
    ("Trg_MOP_atp", "locked atomic"),
    ("Trg_MOP_atp", "transactional memory"),
    ("Trg_MOP_atp", "atomic operation|operations"),
    ("Trg_MOP_fen", "serializing instruction"),
    ("Trg_MOP_fen", "memory fence"),
    ("Trg_MOP_fen", "mfence"),
    ("Trg_MOP_seg", "segment mode|modes|configuration|limit"),
    ("Trg_MOP_ptw", "page table walk|walks"),
    ("Trg_MOP_ptw", "hardware page walk"),
    ("Trg_MOP_nst", "nested page|paging"),
    ("Trg_MOP_nst", "nested page tables"),
    ("Trg_MOP_flc", "cache line is flushed"),
    ("Trg_MOP_flc", "clflush"),
    ("Trg_MOP_flc", "tlb entry|flush"),
    ("Trg_MOP_flc", "flushing a cache"),
    ("Trg_MOP_spe", "speculative|speculatively|speculation"),
    // --- Triggers: exceptions and faults --------------------------------
    ("Trg_FLT_ovf", "counter overflow|overflows"),
    ("Trg_FLT_ovf", "overflow of an internal counter"),
    ("Trg_FLT_tmr", "timer event|interrupt"),
    ("Trg_FLT_tmr", "expiration of a timer"),
    ("Trg_FLT_mca", "machine check <2> is being delivered"),
    ("Trg_FLT_mca", "machine check event is logged"),
    ("Trg_FLT_ill", "undefined opcode"),
    ("Trg_FLT_ill", "illegal instruction"),
    // --- Triggers: privilege transitions --------------------------------
    ("Trg_PRV_ret", "resumes from system management"),
    ("Trg_PRV_ret", "rsm instruction"),
    ("Trg_PRV_ret", "resuming from system management"),
    ("Trg_PRV_vmt", "vm entry|exit"),
    ("Trg_PRV_vmt", "between the hypervisor and a guest"),
    ("Trg_PRV_vmt", "transitions between hypervisor and guest"),
    ("Trg_PRV_vmt", "transition between the hypervisor"),
    // --- Triggers: dynamic configuration --------------------------------
    ("Trg_CFG_pag", "paging mechanism|modes"),
    ("Trg_CFG_pag", "paging is enabled or disabled"),
    ("Trg_CFG_pag", "enabling or disabling paging"),
    ("Trg_CFG_vmc", "vmcs"),
    ("Trg_CFG_vmc", "virtual machine control"),
    ("Trg_CFG_wrg", "writes a specific value"),
    ("Trg_CFG_wrg", "register is programmed"),
    ("Trg_CFG_wrg", "msr write"),
    ("Trg_CFG_wrg", "msr configuration"),
    ("Trg_CFG_wrg", "writing certain model specific"),
    ("Trg_CFG_wrg", "reserved configuration register"),
    ("Trg_CFG_wrg", "changes the operating configuration"),
    // --- Triggers: power -----------------------------------------------------
    ("Trg_POW_pwc", "power state transition"),
    ("Trg_POW_pwc", "c6"),
    ("Trg_POW_pwc", "deep sleep"),
    ("Trg_POW_pwc", "enters|entering a deep sleep state"),
    ("Trg_POW_pwc", "resumes|resuming from <2> c6|power"),
    ("Trg_POW_tht", "throttling|throttles|throttle"),
    ("Trg_POW_tht", "thermal"),
    ("Trg_POW_tht", "power supply"),
    // --- Triggers: external inputs --------------------------------------
    ("Trg_EXT_rst", "warm|cold reset"),
    ("Trg_EXT_rst", "reset sequence|sequences"),
    ("Trg_EXT_pci", "pcie traffic"),
    ("Trg_EXT_pci", "pcie link retraining|retrains"),
    ("Trg_EXT_pci", "ongoing pcie"),
    ("Trg_EXT_usb", "usb controller|device"),
    ("Trg_EXT_ram", "dram configuration"),
    ("Trg_EXT_ram", "ddr"),
    ("Trg_EXT_iom", "iommu"),
    ("Trg_EXT_bus", "system bus"),
    ("Trg_EXT_bus", "hypertransport"),
    // --- Triggers: features ---------------------------------------------------
    ("Trg_FEA_fpu", "x87"),
    ("Trg_FEA_fpu", "fsave|fnsave|fstenv|fnstenv"),
    ("Trg_FEA_fpu", "floating-point"),
    ("Trg_FEA_dbg", "breakpoint|breakpoints"),
    ("Trg_FEA_dbg", "debug register|registers|features"),
    ("Trg_FEA_dbg", "single-stepping"),
    ("Trg_FEA_cid", "cpuid"),
    ("Trg_FEA_cid", "design identification"),
    ("Trg_FEA_mon", "mwait"),
    ("Trg_FEA_mon", "monitor and mwait"),
    ("Trg_FEA_trc", "trace packet|packets|messages"),
    ("Trg_FEA_trc", "branch trace"),
    ("Trg_FEA_trc", "processor trace"),
    ("Trg_FEA_cus", "sse"),
    ("Trg_FEA_cus", "vector instructions"),
    ("Trg_FEA_cus", "mmx"),
    // --- Contexts --------------------------------------------------------------
    ("Ctx_PRV_boo", "bios initialization"),
    ("Ctx_PRV_boo", "system is booting"),
    ("Ctx_PRV_vmg", "virtual machine guest"),
    ("Ctx_PRV_vmg", "virtualized guest"),
    ("Ctx_PRV_vmg", "guest environment"),
    ("Ctx_PRV_rea", "real-address mode"),
    ("Ctx_PRV_rea", "real mode"),
    ("Ctx_PRV_rea", "virtual-8086"),
    ("Ctx_PRV_vmh", "operating as a hypervisor"),
    ("Ctx_PRV_vmh", "vmx root"),
    ("Ctx_PRV_smm", "while in system management"),
    ("Ctx_PRV_smm", "smm execution"),
    ("Ctx_FEA_sec", "sgx|svm"),
    ("Ctx_FEA_sec", "security feature"),
    ("Ctx_FEA_sec", "memory encryption"),
    ("Ctx_FEA_sgc", "single-core"),
    ("Ctx_FEA_sgc", "one core is active"),
    ("Ctx_PHY_pkg", "package types|configurations"),
    ("Ctx_PHY_pkg", "package-specific"),
    ("Ctx_PHY_tmp", "operating temperatures"),
    ("Ctx_PHY_tmp", "temperature conditions"),
    ("Ctx_PHY_vol", "voltage|voltages"),
    // --- Effects ---------------------------------------------------------------
    ("Eff_HNG_unp", "unpredictable"),
    ("Eff_HNG_hng", "hang|hangs"),
    ("Eff_HNG_hng", "unresponsive"),
    ("Eff_HNG_crh", "crash|crashes"),
    ("Eff_HNG_crh", "unexpected shutdown"),
    ("Eff_HNG_boo", "boot failure"),
    ("Eff_HNG_boo", "fail to boot"),
    ("Eff_HNG_boo", "prevent the system from booting"),
    ("Eff_FLT_mca", "signal a machine check"),
    ("Eff_FLT_mca", "erroneous machine check"),
    ("Eff_FLT_mca", "machine check exception may"),
    ("Eff_FLT_mca", "unexpected machine check"),
    ("Eff_FLT_unc", "uncorrectable"),
    ("Eff_FLT_fsp", "spurious"),
    ("Eff_FLT_fms", "fail to deliver"),
    ("Eff_FLT_fms", "may not be delivered"),
    ("Eff_FLT_fms", "suppress a required"),
    ("Eff_FLT_fms", "exception may be missing"),
    ("Eff_FLT_fid", "fault identifier"),
    ("Eff_FLT_fid", "faults in the wrong order"),
    ("Eff_FLT_fid", "wrong order"),
    (
        "Eff_CRP_prf",
        "performance counter|counters|monitoring|events",
    ),
    ("Eff_CRP_prf", "over-count"),
    ("Eff_CRP_reg", "saved incorrectly"),
    ("Eff_CRP_reg", "corrupt a model specific"),
    ("Eff_CRP_reg", "stale msr"),
    ("Eff_CRP_reg", "register may contain an incorrect"),
    ("Eff_CRP_reg", "corrupted value"),
    ("Eff_EXT_pci", "degrade the pcie"),
    ("Eff_EXT_pci", "pcie transaction errors"),
    ("Eff_EXT_pci", "observable on the pcie"),
    ("Eff_EXT_pci", "malformed transactions"),
    ("Eff_EXT_usb", "drop usb"),
    ("Eff_EXT_usb", "usb transactions|device errors"),
    ("Eff_EXT_usb", "observable on the usb"),
    ("Eff_EXT_usb", "dropped transactions"),
    ("Eff_EXT_mmd", "audio|graphics|display|multimedia"),
    ("Eff_EXT_ram", "abnormally with dram"),
    ("Eff_EXT_ram", "memory interface"),
    ("Eff_EXT_ram", "abnormal interaction with dram"),
    ("Eff_EXT_pow", "power consumption"),
    ("Eff_EXT_pow", "fail to reach the requested power"),
    ("Eff_EXT_pow", "power state entry"),
];

/// Weak, ambiguous cues: the category *might* apply; a human must decide.
const WEAK_RULES: &[(&str, &str)] = &[
    ("Trg_FLT_mca", "machine check"),
    ("Eff_FLT_mca", "machine check"),
    ("Trg_CFG_wrg", "register"),
    ("Eff_CRP_reg", "register"),
    ("Trg_EXT_rst", "reset"),
    ("Trg_POW_pwc", "power"),
    ("Eff_EXT_pow", "power"),
    ("Trg_EXT_pci", "pcie|pci"),
    ("Eff_EXT_pci", "pcie|pci"),
    ("Trg_EXT_usb", "usb"),
    ("Eff_EXT_usb", "usb"),
    ("Trg_EXT_ram", "dram|memory"),
    ("Eff_EXT_ram", "dram|memory"),
    ("Ctx_PRV_boo", "boot*"),
    ("Eff_HNG_boo", "boot*"),
    ("Ctx_PRV_smm", "smm"),
    ("Trg_PRV_ret", "smm"),
    ("Ctx_PRV_vmh", "hypervisor"),
    ("Trg_PRV_vmt", "hypervisor|guest"),
    ("Ctx_PRV_vmg", "guest"),
];

/// Patterns marking "complex set of conditions" errata.
const COMPLEX_RULES: &[&str] = &[
    "highly specific <4> conditions",
    "complex set of conditions",
    "detailed set of internal timing",
];

impl Rules {
    /// Compiles the standard rule library.
    ///
    /// # Panics
    ///
    /// Panics if a built-in pattern fails to compile (checked by tests).
    pub fn standard() -> Self {
        Self::compile(STRONG_RULES, WEAK_RULES, COMPLEX_RULES).expect("standard library compiles")
    }

    /// Compiles a rule library from `(category code, DSL pattern)` rows,
    /// pre-grouping rules per category and building the shared indexed
    /// matcher over the whole library.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending row when a category code or
    /// pattern fails to compile.
    pub fn compile(
        strong_rows: &[(&str, &str)],
        weak_rows: &[(&str, &str)],
        complex_rows: &[&str],
    ) -> Result<Self, String> {
        let parse_rows = |rows: &[(&str, &str)]| -> Result<Vec<(Category, Pattern)>, String> {
            rows.iter()
                .map(|(code, src)| {
                    let category: Category = code
                        .parse()
                        .map_err(|_| format!("bad category code {code}"))?;
                    let pattern =
                        Pattern::parse(src).map_err(|e| format!("bad pattern {src:?}: {e}"))?;
                    Ok((category, pattern))
                })
                .collect()
        };
        let strong = parse_rows(strong_rows)?;
        let weak = parse_rows(weak_rows)?;
        let complex: Vec<Pattern> = complex_rows
            .iter()
            .map(|src| Pattern::parse(src).map_err(|e| format!("bad pattern {src:?}: {e}")))
            .collect::<Result<_, _>>()?;

        let group = |rules: &[(Category, Pattern)]| -> Vec<Vec<usize>> {
            let mut by_cat = vec![Vec::new(); Category::COUNT];
            for (i, (category, _)) in rules.iter().enumerate() {
                by_cat[category.dense_index()].push(i);
            }
            by_cat
        };
        let strong_by_cat = group(&strong);
        let weak_by_cat = group(&weak);
        let matcher = RuleMatcher::compile(
            strong
                .iter()
                .map(|(_, p)| p)
                .chain(weak.iter().map(|(_, p)| p))
                .chain(complex.iter())
                .cloned(),
        );
        Ok(Self {
            strong,
            weak,
            complex,
            strong_by_cat,
            weak_by_cat,
            matcher,
        })
    }

    /// Strong rules for a category (pre-grouped at compile time).
    pub fn strong_for(&self, category: Category) -> impl Iterator<Item = &Pattern> {
        self.strong_by_cat[category.dense_index()]
            .iter()
            .map(move |&i| &self.strong[i].1)
    }

    /// Weak rules for a category (pre-grouped at compile time).
    pub fn weak_for(&self, category: Category) -> impl Iterator<Item = &Pattern> {
        self.weak_by_cat[category.dense_index()]
            .iter()
            .map(move |&i| &self.weak[i].1)
    }

    /// The shared indexed matcher over the whole library.
    pub fn matcher(&self) -> &RuleMatcher {
        &self.matcher
    }

    /// Matcher ids of a category's strong rules, in library order (equal to
    /// indices into [`Rules::strong`]).
    pub(crate) fn strong_ids_for(&self, category: Category) -> &[usize] {
        &self.strong_by_cat[category.dense_index()]
    }

    /// Matcher ids of a category's weak rules, in library order.
    pub(crate) fn weak_ids_for(&self, category: Category) -> impl Iterator<Item = usize> + '_ {
        let offset = self.strong.len();
        self.weak_by_cat[category.dense_index()]
            .iter()
            .map(move |&i| offset + i)
    }

    /// Matcher ids of the complex-conditions markers.
    pub(crate) fn complex_ids(&self) -> std::ops::Range<usize> {
        let offset = self.strong.len() + self.weak.len();
        offset..offset + self.complex.len()
    }

    /// All strong rules.
    pub fn strong(&self) -> &[(Category, Pattern)] {
        &self.strong
    }

    /// All weak rules.
    pub fn weak(&self) -> &[(Category, Pattern)] {
        &self.weak
    }

    /// The complex-conditions markers.
    pub fn complex(&self) -> &[Pattern] {
        &self.complex
    }

    /// Builds the highlight pattern set (strong rules labelled by category
    /// code) for the syntax-highlighting assist.
    ///
    /// Pattern `i` of the set is `self.strong()[i]`, which is also pattern
    /// id `i` of [`Rules::matcher`] (the matcher compiles strong rules
    /// first, in library order) — so a matcher pass over a text can prune
    /// the set's patterns losslessly before span extraction.
    pub fn highlight_set(&self) -> PatternSet {
        let mut set = PatternSet::new();
        for (category, pattern) in &self.strong {
            set.add(category.code(), pattern.clone());
        }
        set
    }
}

impl Default for Rules {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::{Context, Effect, Trigger};

    #[test]
    fn all_rules_compile() {
        let rules = Rules::standard();
        assert!(rules.strong().len() > 100);
        assert!(!rules.weak().is_empty());
        assert_eq!(rules.complex().len(), 3);
    }

    #[test]
    fn every_category_has_at_least_one_strong_rule() {
        let rules = Rules::standard();
        for category in Category::all() {
            assert!(
                rules.strong_for(category).count() >= 1,
                "no strong rule for {category}"
            );
        }
    }

    #[test]
    fn rules_match_representative_phrases() {
        let rules = Rules::standard();
        let cases: &[(Category, &str)] = &[
            (
                Category::Trigger(Trigger::PowerStateChange),
                "the core resumes from the C6 power state",
            ),
            (
                Category::Trigger(Trigger::Throttling),
                "thermal throttling engages",
            ),
            (
                Category::Trigger(Trigger::ConfigRegister),
                "software writes a specific value to a configuration register",
            ),
            (Category::Trigger(Trigger::Reset), "a warm reset is applied"),
            (
                Category::Context(Context::VmGuest),
                "while running as a virtual machine guest",
            ),
            (
                Category::Context(Context::RealMode),
                "in real-address mode or virtual-8086 mode",
            ),
            (Category::Effect(Effect::Hang), "the processor may hang"),
            (
                Category::Effect(Effect::MsrValue),
                "the value may be saved incorrectly",
            ),
            (
                Category::Effect(Effect::MachineCheck),
                "may signal a machine check exception",
            ),
        ];
        for (category, text) in cases {
            let hit = rules.strong_for(*category).any(|p| p.matches(text));
            assert!(hit, "{category} should match {text:?}");
        }
    }

    #[test]
    fn highlight_set_has_category_labels() {
        let rules = Rules::standard();
        let set = rules.highlight_set();
        assert_eq!(set.len(), rules.strong().len());
        let prepared = rememberr_textkit::PreparedText::new("a warm reset occurs");
        assert_eq!(set.matching_labels(&prepared), vec!["Trg_EXT_rst"]);
    }

    #[test]
    fn highlight_set_indices_are_matcher_ids() {
        // The assist prunes the highlight set with a matcher pass, which
        // is only sound if set index i and matcher id i are the same
        // pattern. Check behavioral agreement over texts matching every
        // strong rule's own source (via its first literal alternative).
        let rules = Rules::standard();
        let set = rules.highlight_set();
        let matcher = rules.matcher();
        for (_, pattern) in rules.strong() {
            let text = rememberr_textkit::PreparedText::from_string(
                pattern.source().replace(['|', '*', '<', '>'], " "),
            );
            let spans = set.find_spans(&text);
            let matches = matcher.match_doc(&text);
            let pruned = set.find_spans_filtered(&text, |id| matches.is_match(id));
            assert_eq!(spans, pruned, "pattern {:?}", pattern.source());
        }
    }

    #[test]
    fn per_category_groups_cover_the_whole_library_in_order() {
        let rules = Rules::standard();
        // The pre-grouped per-category iterators must agree with a fresh
        // filter over the flat library (the pre-PR implementation).
        for category in Category::all() {
            let grouped: Vec<&Pattern> = rules.strong_for(category).collect();
            let filtered: Vec<&Pattern> = rules
                .strong()
                .iter()
                .filter(|(c, _)| *c == category)
                .map(|(_, p)| p)
                .collect();
            assert_eq!(grouped, filtered, "strong rules for {category}");
            let grouped: Vec<&Pattern> = rules.weak_for(category).collect();
            let filtered: Vec<&Pattern> = rules
                .weak()
                .iter()
                .filter(|(c, _)| *c == category)
                .map(|(_, p)| p)
                .collect();
            assert_eq!(grouped, filtered, "weak rules for {category}");
        }
    }

    #[test]
    fn matcher_ids_line_up_with_the_library() {
        let rules = Rules::standard();
        let total = rules.strong().len() + rules.weak().len() + rules.complex().len();
        assert_eq!(rules.matcher().len(), total);
        for category in Category::all() {
            for (&id, (_, p)) in rules
                .strong_ids_for(category)
                .iter()
                .zip(rules.strong().iter().filter(|(c, _)| *c == category))
            {
                assert_eq!(rules.matcher().patterns()[id].source(), p.source());
            }
            for (id, p) in rules.weak_ids_for(category).zip(rules.weak_for(category)) {
                assert_eq!(rules.matcher().patterns()[id].source(), p.source());
            }
        }
        for (id, p) in rules.complex_ids().zip(rules.complex()) {
            assert_eq!(rules.matcher().patterns()[id].source(), p.source());
        }
    }

    #[test]
    fn compile_rejects_bad_rows() {
        assert!(Rules::compile(&[("Not_A_Cat", "x")], &[], &[]).is_err());
        assert!(Rules::compile(&[("Trg_EXT_rst", "<x>")], &[], &[]).is_err());
        assert!(Rules::compile(&[], &[], &["<2>"]).is_err());
    }

    #[test]
    fn complex_marker_matches_docgen_preamble() {
        let rules = Rules::standard();
        let marker = rememberr_docgen::complex_conditions_marker();
        assert!(rules.complex().iter().any(|p| p.matches(marker)));
    }
}
