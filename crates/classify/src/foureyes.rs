//! Simulation of the study's four-eyes manual classification.
//!
//! Two researchers independently classified the filtered erratum-category
//! pairs, then resolved mismatches in discussion, iterating in seven
//! successive batches per design group (Figure 8 shows the cumulative
//! errata per step, Figure 9 the pre-discussion agreement, generally above
//! 80% and improving as the category definitions sharpened).
//!
//! The simulation models each annotator as ground truth corrupted by an
//! error rate that decays per step (learning), and discussion as a
//! near-perfect resolver. The outputs are the per-step statistics
//! (regenerating Figures 8 and 9) and the resolved decisions.

use rand::{Rng, SeedableRng};
use rememberr_model::{Category, ErratumId};
use serde::{Deserialize, Serialize};

use crate::agreement::{cohens_kappa, percent_agreement};

/// RNG for the annotator simulation (stable across `rand` versions).
type SimRng = rand_chacha::ChaCha8Rng;

/// Configuration of the four-eyes simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FourEyesConfig {
    /// Number of discussion steps (the study used 7).
    pub steps: usize,
    /// Initial per-decision error probability of annotator A.
    pub error_a: f64,
    /// Initial per-decision error probability of annotator B.
    pub error_b: f64,
    /// Multiplicative per-step decay of both error rates (learning).
    pub decay: f64,
    /// Probability that discussion resolves a mismatch incorrectly.
    pub discussion_error: f64,
    /// Fraction of all errata classified in each step (normalized
    /// internally; the study's batches grew over time).
    pub step_shares: Vec<f64>,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for FourEyesConfig {
    fn default() -> Self {
        Self {
            steps: 7,
            error_a: 0.13,
            error_b: 0.11,
            decay: 0.90,
            discussion_error: 0.02,
            step_shares: vec![0.04, 0.07, 0.12, 0.17, 0.20, 0.20, 0.20],
            seed: 0x4EE5,
        }
    }
}

/// One erratum-category pair requiring a human decision, with the answer a
/// perfectly informed annotator would give.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HumanItem {
    /// The erratum (one representative per unique bug).
    pub id: ErratumId,
    /// The category under decision.
    pub category: Category,
    /// Ground-truth relevance.
    pub truth: bool,
}

/// Statistics of one discussion step (one Figure 8/9 data point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// 1-based step number.
    pub step: usize,
    /// Errata classified in this step.
    pub errata: usize,
    /// Cumulative errata through this step (Figure 8).
    pub cumulative_errata: usize,
    /// Pair decisions made per human in this step.
    pub decisions: usize,
    /// Pre-discussion agreement (Figure 9).
    pub agreement: f64,
    /// Cohen's kappa for the step.
    pub kappa: f64,
}

/// A resolved decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The erratum.
    pub id: ErratumId,
    /// The category decided on.
    pub category: Category,
    /// The final (post-discussion) decision.
    pub relevant: bool,
}

/// Output of the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FourEyesOutcome {
    /// Per-step statistics.
    pub steps: Vec<StepReport>,
    /// All resolved decisions.
    pub resolutions: Vec<Resolution>,
    /// Total decisions per human.
    pub decisions_per_human: usize,
}

/// Runs the four-eyes simulation over the items needing human judgement.
///
/// Items are grouped by erratum; errata are split over the steps according
/// to `config.step_shares`. Only errata carrying at least one item appear
/// in the step counts; use [`run_four_eyes_over`] to batch over the full
/// classified population (the paper's Figure 8 counts every classified
/// erratum, including those the filter resolved entirely).
pub fn run_four_eyes(config: &FourEyesConfig, items: &[HumanItem]) -> FourEyesOutcome {
    let ids: Vec<ErratumId> = {
        let mut ids = Vec::new();
        for item in items {
            if ids.last() != Some(&item.id) {
                ids.push(item.id);
            }
        }
        ids
    };
    run_four_eyes_over(config, &ids, items)
}

/// Like [`run_four_eyes`], but batches over an explicit erratum population:
/// every id in `errata_in_order` counts toward the per-step errata totals,
/// whether or not it carries human items.
pub fn run_four_eyes_over(
    config: &FourEyesConfig,
    errata_in_order: &[ErratumId],
    items: &[HumanItem],
) -> FourEyesOutcome {
    let mut rng = SimRng::seed_from_u64(config.seed);

    // Group items per erratum, preserving the population order.
    let mut errata: Vec<(ErratumId, Vec<&HumanItem>)> =
        errata_in_order.iter().map(|&id| (id, Vec::new())).collect();
    let mut index: std::collections::HashMap<ErratumId, usize> = errata
        .iter()
        .enumerate()
        .map(|(i, (id, _))| (*id, i))
        .collect();
    for item in items {
        match index.get(&item.id) {
            Some(&i) => errata[i].1.push(item),
            None => {
                // Item for an erratum outside the stated population:
                // append it so no decision is dropped.
                index.insert(item.id, errata.len());
                errata.push((item.id, vec![item]));
            }
        }
    }

    // Batch boundaries.
    let share_total: f64 = config.step_shares.iter().sum();
    let mut boundaries = Vec::with_capacity(config.steps);
    let mut acc = 0.0;
    for s in 0..config.steps {
        acc += config.step_shares.get(s).copied().unwrap_or(0.0) / share_total.max(1e-12);
        boundaries.push(((errata.len() as f64) * acc).round() as usize);
    }
    if let Some(last) = boundaries.last_mut() {
        *last = errata.len();
    }

    let mut steps = Vec::with_capacity(config.steps);
    let mut resolutions = Vec::with_capacity(items.len());
    let mut cursor = 0usize;
    let mut cumulative = 0usize;
    let mut decisions_per_human = 0usize;

    for (s, &end) in boundaries.iter().enumerate() {
        let batch = &errata[cursor..end.max(cursor)];
        let ea = config.error_a * config.decay.powi(s as i32);
        let eb = config.error_b * config.decay.powi(s as i32);

        let mut answers_a = Vec::new();
        let mut answers_b = Vec::new();
        let mut batch_items = Vec::new();
        for (_, group) in batch {
            for item in group {
                let a = item.truth ^ rng.random_bool(ea);
                let b = item.truth ^ rng.random_bool(eb);
                answers_a.push(a);
                answers_b.push(b);
                batch_items.push(**item);
            }
        }

        for ((item, &a), &b) in batch_items.iter().zip(&answers_a).zip(&answers_b) {
            let relevant = if a == b {
                a // agreement, possibly agreeing on a mistake
            } else {
                // Discussion: almost always lands on the truth.
                item.truth ^ rng.random_bool(config.discussion_error)
            };
            resolutions.push(Resolution {
                id: item.id,
                category: item.category,
                relevant,
            });
        }

        cumulative += batch.len();
        decisions_per_human += batch_items.len();
        steps.push(StepReport {
            step: s + 1,
            errata: batch.len(),
            cumulative_errata: cumulative,
            decisions: batch_items.len(),
            agreement: percent_agreement(&answers_a, &answers_b),
            kappa: cohens_kappa(&answers_a, &answers_b),
        });
        cursor = end.max(cursor);
    }

    FourEyesOutcome {
        steps,
        resolutions,
        decisions_per_human,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::{Design, Trigger};

    fn items(n: usize) -> Vec<HumanItem> {
        (0..n)
            .map(|i| HumanItem {
                id: ErratumId::new(Design::Intel6, (i / 3) as u32 + 1),
                category: Category::Trigger(Trigger::ALL[i % 10]),
                truth: i % 4 == 0,
            })
            .collect()
    }

    #[test]
    fn all_items_resolved_once() {
        let config = FourEyesConfig::default();
        let out = run_four_eyes(&config, &items(600));
        assert_eq!(out.resolutions.len(), 600);
        assert_eq!(out.decisions_per_human, 600);
        assert_eq!(out.steps.len(), config.steps);
        assert_eq!(out.steps.last().unwrap().cumulative_errata, 200);
    }

    #[test]
    fn cumulative_errata_is_monotone() {
        let out = run_four_eyes(&FourEyesConfig::default(), &items(900));
        for pair in out.steps.windows(2) {
            assert!(pair[0].cumulative_errata <= pair[1].cumulative_errata);
        }
    }

    #[test]
    fn agreement_is_generally_above_eighty_percent() {
        let out = run_four_eyes(&FourEyesConfig::default(), &items(3000));
        let above = out.steps.iter().filter(|s| s.agreement > 0.8).count();
        assert!(above >= out.steps.len() - 1, "{:?}", out.steps);
    }

    #[test]
    fn agreement_improves_with_learning() {
        let out = run_four_eyes(&FourEyesConfig::default(), &items(6000));
        let first = out.steps.first().unwrap().agreement;
        let last = out.steps.last().unwrap().agreement;
        assert!(last > first, "first {first}, last {last}");
    }

    #[test]
    fn resolutions_are_mostly_correct() {
        let data = items(4000);
        let out = run_four_eyes(&FourEyesConfig::default(), &data);
        let correct = out
            .resolutions
            .iter()
            .zip(&data)
            .filter(|(r, item)| r.relevant == item.truth)
            .count();
        let accuracy = correct as f64 / data.len() as f64;
        assert!(accuracy > 0.97, "{accuracy}");
    }

    #[test]
    fn zero_error_gives_full_agreement_and_accuracy() {
        let config = FourEyesConfig {
            error_a: 0.0,
            error_b: 0.0,
            discussion_error: 0.0,
            ..FourEyesConfig::default()
        };
        let data = items(300);
        let out = run_four_eyes(&config, &data);
        for step in &out.steps {
            assert_eq!(step.agreement, 1.0);
        }
        assert!(out
            .resolutions
            .iter()
            .zip(&data)
            .all(|(r, item)| r.relevant == item.truth));
    }

    #[test]
    fn empty_input() {
        let out = run_four_eyes(&FourEyesConfig::default(), &[]);
        assert!(out.resolutions.is_empty());
        assert_eq!(out.steps.len(), FourEyesConfig::default().steps);
        assert!(out.steps.iter().all(|s| s.decisions == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let data = items(500);
        let a = run_four_eyes(&FourEyesConfig::default(), &data);
        let b = run_four_eyes(&FourEyesConfig::default(), &data);
        assert_eq!(a, b);
        let other = FourEyesConfig {
            seed: 99,
            ..FourEyesConfig::default()
        };
        let c = run_four_eyes(&other, &data);
        assert_ne!(a.resolutions, c.resolutions);
    }
}

#[cfg(test)]
mod population_tests {
    use super::*;
    use rememberr_model::{Design, Trigger};

    #[test]
    fn population_batching_counts_item_free_errata() {
        // 100 errata, only the first 10 carry human items: Figure 8's
        // cumulative curve must still reach 100.
        let population: Vec<ErratumId> = (1..=100)
            .map(|n| ErratumId::new(Design::Intel6, n))
            .collect();
        let items: Vec<HumanItem> = (1..=10)
            .map(|n| HumanItem {
                id: ErratumId::new(Design::Intel6, n),
                category: Category::Trigger(Trigger::Reset),
                truth: n % 2 == 0,
            })
            .collect();
        let out = run_four_eyes_over(&FourEyesConfig::default(), &population, &items);
        assert_eq!(out.steps.last().unwrap().cumulative_errata, 100);
        assert_eq!(out.resolutions.len(), 10);
        assert_eq!(out.decisions_per_human, 10);
    }

    #[test]
    fn out_of_population_items_are_still_resolved() {
        let population = vec![ErratumId::new(Design::Intel6, 1)];
        let stray = HumanItem {
            id: ErratumId::new(Design::Intel7_8, 9),
            category: Category::Trigger(Trigger::Pcie),
            truth: true,
        };
        let out = run_four_eyes_over(&FourEyesConfig::default(), &population, &[stray]);
        assert_eq!(out.resolutions.len(), 1);
        assert_eq!(out.steps.last().unwrap().cumulative_errata, 2);
    }
}
