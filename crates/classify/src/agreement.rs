//! Inter-annotator agreement statistics.

/// Fraction of identical decisions between two annotators.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn percent_agreement(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "decision vectors must align");
    if a.is_empty() {
        return 1.0;
    }
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

/// Cohen's kappa: agreement corrected for chance.
///
/// Returns 1.0 for perfect agreement, 0.0 for chance-level agreement, and
/// negative values for worse-than-chance. Degenerate distributions (both
/// annotators constant) yield 1.0 when they agree everywhere and 0.0
/// otherwise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cohens_kappa(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "decision vectors must align");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let po = percent_agreement(a, b);
    let pa_true = a.iter().filter(|&&x| x).count() as f64 / n as f64;
    let pb_true = b.iter().filter(|&&x| x).count() as f64 / n as f64;
    let pe = pa_true * pb_true + (1.0 - pa_true) * (1.0 - pb_true);
    if (1.0 - pe).abs() < 1e-12 {
        return if (po - 1.0).abs() < 1e-12 { 1.0 } else { 0.0 };
    }
    (po - pe) / (1.0 - pe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let a = [true, false, true];
        assert_eq!(percent_agreement(&a, &a), 1.0);
        let b = [true, false, false, true];
        assert_eq!(cohens_kappa(&b, &b), 1.0);
    }

    #[test]
    fn total_disagreement() {
        let a = [true, false];
        let b = [false, true];
        assert_eq!(percent_agreement(&a, &b), 0.0);
        assert!(cohens_kappa(&a, &b) < 0.0);
    }

    #[test]
    fn kappa_corrects_for_chance() {
        // 90% raw agreement driven mostly by a dominant class.
        let a: Vec<bool> = (0..100).map(|i| i < 95).collect();
        let b: Vec<bool> = (0..100).map(|i| i < 90).collect();
        let po = percent_agreement(&a, &b);
        let k = cohens_kappa(&a, &b);
        assert!(po > 0.9);
        assert!(k < po, "kappa {k} should be below raw agreement {po}");
    }

    #[test]
    fn degenerate_distributions() {
        let all_true = [true, true, true];
        assert_eq!(cohens_kappa(&all_true, &all_true), 1.0);
        let a = [true, true];
        let b = [true, false];
        let k = cohens_kappa(&a, &b);
        assert!(k <= 0.0, "{k}");
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(percent_agreement(&[], &[]), 1.0);
        assert_eq!(cohens_kappa(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        percent_agreement(&[true], &[]);
    }
}
