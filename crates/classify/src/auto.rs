//! Automatic classification of errata.

use std::fmt;
use std::str::FromStr;

use rememberr_extract::scan_msr_refs;
use rememberr_model::{Annotation, Category, Erratum};
use rememberr_textkit::PreparedText;

use crate::rules::Rules;

/// The outcome of the relevance filter for one erratum-category pair.
///
/// The paper reduces `1128 x 60 = 67,680` per-human decisions to 2,064 by
/// filtering pairs that are "clearly relevant" or "clearly irrelevant" with
/// conservative regular expressions; only the rest needs human judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// A strong rule matched: the category applies.
    AutoRelevant,
    /// No rule matched at all: the category does not apply.
    AutoIrrelevant,
    /// Only a weak cue matched: a human must decide.
    NeedsHuman,
}

/// How the rule library is matched against an erratum.
///
/// Both matchers produce byte-identical classifications (annotations,
/// snippets, decision statistics); they differ only in how much positional
/// pattern-evaluation work they pay for. Mirrors the dedup pipeline's
/// `CandidateGen` oracle split (`--dedup-candidates`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MatcherKind {
    /// One indexed pass over the whole library via the shared
    /// [`rememberr_textkit::RuleMatcher`]: only patterns whose anchor token
    /// is present in the erratum are positionally evaluated, and each
    /// evaluation yields decision and snippet span together.
    #[default]
    Indexed,
    /// The original pattern-by-pattern positional scan, kept as the
    /// correctness oracle (`--classify-matcher exhaustive`).
    Exhaustive,
}

impl FromStr for MatcherKind {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "indexed" => Ok(MatcherKind::Indexed),
            "exhaustive" => Ok(MatcherKind::Exhaustive),
            other => Err(format!(
                "invalid rule matcher {other:?} (expected \"indexed\" or \"exhaustive\")"
            )),
        }
    }
}

impl fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatcherKind::Indexed => "indexed",
            MatcherKind::Exhaustive => "exhaustive",
        })
    }
}

/// Counter name for a strong-rule hit, split by category kind so the
/// metrics snapshot shows where the rule library fires.
fn rule_fired_counter(category: Category) -> &'static str {
    match category {
        Category::Trigger(_) => "classify.trigger_rules_fired",
        Category::Context(_) => "classify.context_rules_fired",
        Category::Effect(_) => "classify.effect_rules_fired",
    }
}

/// Classifies one erratum-category pair.
pub fn decide(rules: &Rules, text: &PreparedText, category: Category) -> Decision {
    if rules.strong_for(category).any(|p| p.is_match(text)) {
        Decision::AutoRelevant
    } else if rules.weak_for(category).any(|p| p.is_match(text)) {
        Decision::NeedsHuman
    } else {
        Decision::AutoIrrelevant
    }
}

/// Prepares the classification text of an erratum (all prose fields).
///
/// The prepared text takes ownership of the joined prose, so snippet
/// extraction slices the same allocation instead of rebuilding it.
pub fn prepare(erratum: &Erratum) -> PreparedText {
    PreparedText::from_string(erratum.full_text())
}

/// The automatic classification of one erratum: resolved categories plus
/// the pairs needing human judgement.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoClassification {
    /// Annotation from auto-relevant categories only.
    pub annotation: Annotation,
    /// Categories whose decision is [`Decision::NeedsHuman`].
    pub needs_human: Vec<Category>,
    /// Total number of pairs auto-decided (relevant + irrelevant).
    pub auto_decided: usize,
}

/// One category's resolution: the relevance decision plus, when a strong
/// rule fired, the concrete snippet it matched.
enum Resolved {
    Relevant(String),
    Irrelevant,
    Human,
}

/// Runs the rule library over one erratum with the default (indexed)
/// matcher. See [`classify_erratum_with`].
pub fn classify_erratum(rules: &Rules, erratum: &Erratum) -> AutoClassification {
    classify_erratum_with(rules, erratum, MatcherKind::default())
}

/// Runs the rule library over one erratum.
///
/// Concrete-level snippets are filled with the text regions the strong
/// rules matched; MSR references found in the description are attached; the
/// "complex set of conditions" flag is set when a marker matches.
///
/// Both [`MatcherKind`]s produce identical output; they record their
/// positional-evaluation effort in the `classify.pattern_evals` /
/// `classify.patterns_pruned` counters.
pub fn classify_erratum_with(
    rules: &Rules,
    erratum: &Erratum,
    matcher: MatcherKind,
) -> AutoClassification {
    classify_prepared_with(rules, erratum, &prepare(erratum), matcher)
}

/// [`classify_erratum_with`] over text that is already tokenized, so
/// callers holding the erratum's [`PreparedText`] — the single-pass
/// pipeline borrows it from an [`rememberr_textkit::AnalyzedCorpus`] — skip
/// the re-tokenization. `text` must be the preparation of
/// `erratum.full_text()`; snippets are sliced out of it.
pub fn classify_prepared_with(
    rules: &Rules,
    erratum: &Erratum,
    text: &PreparedText,
    matcher: MatcherKind,
) -> AutoClassification {
    let mut annotation = Annotation::new();
    let mut needs_human = Vec::new();
    let mut auto_decided = 0usize;

    let complex = match matcher {
        MatcherKind::Indexed => {
            let matches = rules.matcher().match_doc(text);
            rememberr_obs::count("classify.pattern_evals", matches.evaluated);
            rememberr_obs::count("classify.patterns_pruned", matches.pruned);
            for category in Category::all() {
                let resolved = if let Some(span) = rules
                    .strong_ids_for(category)
                    .iter()
                    .find_map(|&id| matches.first_span(id))
                {
                    // Decision and snippet come from the same pass: the
                    // match set already holds the first span of the first
                    // matching strong rule.
                    Resolved::Relevant(text.snippet(span).to_string())
                } else if rules.weak_ids_for(category).any(|id| matches.is_match(id)) {
                    Resolved::Human
                } else {
                    Resolved::Irrelevant
                };
                apply(
                    resolved,
                    category,
                    &mut annotation,
                    &mut needs_human,
                    &mut auto_decided,
                );
            }
            rules.complex_ids().any(|id| matches.is_match(id))
        }
        MatcherKind::Exhaustive => {
            // The original shape: every category filters the library and
            // scans pattern-by-pattern, then re-scans to cut the snippet.
            let mut evals = 0u64;
            for category in Category::all() {
                let mut matched = false;
                for p in rules.strong_for(category) {
                    evals += 1;
                    if p.is_match(text) {
                        matched = true;
                        break;
                    }
                }
                let resolved = if matched {
                    let mut snippet = None;
                    for p in rules.strong_for(category) {
                        evals += 1;
                        if let Some(span) = p.find_in(text).first() {
                            snippet = Some(text.snippet(*span).to_string());
                            break;
                        }
                    }
                    Resolved::Relevant(snippet.unwrap_or_default())
                } else {
                    let mut human = false;
                    for p in rules.weak_for(category) {
                        evals += 1;
                        if p.is_match(text) {
                            human = true;
                            break;
                        }
                    }
                    if human {
                        Resolved::Human
                    } else {
                        Resolved::Irrelevant
                    }
                };
                apply(
                    resolved,
                    category,
                    &mut annotation,
                    &mut needs_human,
                    &mut auto_decided,
                );
            }
            let mut complex = false;
            for p in rules.complex() {
                evals += 1;
                if p.is_match(text) {
                    complex = true;
                    break;
                }
            }
            rememberr_obs::count("classify.pattern_evals", evals);
            complex
        }
    };

    annotation.msrs = scan_msr_refs(&erratum.description);
    annotation.complex_conditions = complex;

    AutoClassification {
        annotation,
        needs_human,
        auto_decided,
    }
}

/// Folds one category's resolution into the classification under way.
fn apply(
    resolved: Resolved,
    category: Category,
    annotation: &mut Annotation,
    needs_human: &mut Vec<Category>,
    auto_decided: &mut usize,
) {
    match resolved {
        Resolved::Relevant(snippet) => {
            *auto_decided += 1;
            rememberr_obs::count(rule_fired_counter(category), 1);
            match category {
                Category::Trigger(t) => {
                    annotation.triggers.insert(t);
                    annotation.concrete_triggers.push(snippet);
                }
                Category::Context(c) => {
                    annotation.contexts.insert(c);
                    annotation.concrete_contexts.push(snippet);
                }
                Category::Effect(e) => {
                    annotation.effects.insert(e);
                    annotation.concrete_effects.push(snippet);
                }
            }
        }
        Resolved::Irrelevant => *auto_decided += 1,
        Resolved::Human => needs_human.push(category),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::{Context, Design, Effect, ErratumId, MsrName, Trigger};

    fn erratum(description: &str, title: &str) -> Erratum {
        Erratum {
            id: ErratumId::new(Design::Intel6, 1),
            title: title.to_string(),
            description: description.to_string(),
            implications: String::new(),
            workaround: "None identified.".to_string(),
            status: "No fix planned.".to_string(),
        }
    }

    #[test]
    fn matcher_kind_parses_and_displays() {
        assert_eq!("indexed".parse::<MatcherKind>(), Ok(MatcherKind::Indexed));
        assert_eq!(
            "exhaustive".parse::<MatcherKind>(),
            Ok(MatcherKind::Exhaustive)
        );
        assert!("fast".parse::<MatcherKind>().is_err());
        assert_eq!(MatcherKind::default(), MatcherKind::Indexed);
        assert_eq!(MatcherKind::Indexed.to_string(), "indexed");
        assert_eq!(MatcherKind::Exhaustive.to_string(), "exhaustive");
    }

    #[test]
    fn classifies_the_fdp_erratum() {
        // The paper's Table I / Table VII example.
        let e = erratum(
            "Execution of the FSAVE, FNSAVE, FSTENV, or FNSTENV instructions in \
             real-address mode or virtual-8086 mode may save an incorrect value for the \
             x87 FDP. The value may be saved incorrectly.",
            "X87 FDP Value May be Saved Incorrectly",
        );
        let rules = Rules::standard();
        let out = classify_erratum(&rules, &e);
        assert!(out.annotation.triggers.contains(Trigger::FloatingPoint));
        assert!(out.annotation.contexts.contains(Context::RealMode));
        assert!(out.annotation.effects.contains(Effect::MsrValue));
    }

    #[test]
    fn both_matchers_agree_erratum_by_erratum() {
        let rules = Rules::standard();
        let cases = [
            erratum(
                "Execution of the FSAVE, FNSAVE, FSTENV, or FNSTENV instructions in \
                 real-address mode or virtual-8086 mode may save an incorrect value for \
                 the x87 FDP. The value may be saved incorrectly.",
                "X87 FDP Value May be Saved Incorrectly",
            ),
            erratum("After a warm reset is applied the processor may hang.", "T"),
            erratum("A machine check occurred somewhere.", "T"),
            erratum(
                "Under a highly specific and detailed set of internal timing conditions, \
                 the processor may hang.",
                "T",
            ),
            erratum("Nothing of note happens here.", "T"),
        ];
        for e in &cases {
            let indexed = classify_erratum_with(&rules, e, MatcherKind::Indexed);
            let exhaustive = classify_erratum_with(&rules, e, MatcherKind::Exhaustive);
            assert_eq!(indexed, exhaustive, "divergence on {:?}", e.description);
        }
    }

    #[test]
    fn snippets_are_taken_from_the_text() {
        let e = erratum("After a warm reset is applied the processor may hang.", "T");
        let out = classify_erratum(&Rules::standard(), &e);
        assert!(out.annotation.triggers.contains(Trigger::Reset));
        assert!(out
            .annotation
            .concrete_triggers
            .iter()
            .any(|s| s.contains("warm reset")));
    }

    #[test]
    fn msr_refs_are_attached() {
        let e = erratum(
            "The MCx_STATUS register (MSR 0x401) may contain an incorrect value.",
            "T",
        );
        let out = classify_erratum(&Rules::standard(), &e);
        assert_eq!(out.annotation.msrs.len(), 1);
        assert_eq!(out.annotation.msrs[0].name, MsrName::McStatus);
    }

    #[test]
    fn complex_conditions_flag() {
        let e = erratum(
            "Under a highly specific and detailed set of internal timing conditions, \
             the processor may hang.",
            "T",
        );
        let out = classify_erratum(&Rules::standard(), &e);
        assert!(out.annotation.complex_conditions);
    }

    #[test]
    fn weak_cues_defer_to_humans() {
        // "machine check" alone is ambiguous between trigger and effect.
        let e = erratum("A machine check occurred somewhere.", "T");
        let rules = Rules::standard();
        let out = classify_erratum(&rules, &e);
        assert!(out
            .needs_human
            .contains(&Category::Trigger(Trigger::MachineCheck)));
        assert!(out
            .needs_human
            .contains(&Category::Effect(Effect::MachineCheck)));
    }

    #[test]
    fn decisions_partition_all_sixty_categories() {
        let e = erratum("Nothing of note happens here.", "T");
        let out = classify_erratum(&Rules::standard(), &e);
        assert_eq!(out.auto_decided + out.needs_human.len(), Category::COUNT);
    }

    #[test]
    fn strong_match_wins_over_weak() {
        let e = erratum("A warm reset is applied.", "T");
        let rules = Rules::standard();
        let text = prepare(&e);
        assert_eq!(
            decide(&rules, &text, Category::Trigger(Trigger::Reset)),
            Decision::AutoRelevant
        );
    }

    #[test]
    fn indexed_matcher_prunes_most_of_the_library() {
        let e = erratum("After a warm reset is applied the processor may hang.", "T");
        let rules = Rules::standard();
        rememberr_obs::reset();
        rememberr_obs::enable();
        let _ = classify_erratum_with(&rules, &e, MatcherKind::Indexed);
        let indexed = rememberr_obs::snapshot();
        rememberr_obs::reset();
        let _ = classify_erratum_with(&rules, &e, MatcherKind::Exhaustive);
        let exhaustive = rememberr_obs::snapshot();
        rememberr_obs::disable();
        rememberr_obs::reset();

        let indexed_evals = indexed.counters["classify.pattern_evals"];
        let exhaustive_evals = exhaustive.counters["classify.pattern_evals"];
        let pruned = indexed.counters["classify.patterns_pruned"];
        let library = rules.matcher().len() as u64;
        assert_eq!(indexed_evals + pruned, library);
        assert!(
            indexed_evals * 10 <= exhaustive_evals,
            "indexed {indexed_evals} vs exhaustive {exhaustive_evals} evals"
        );
        assert!(!exhaustive.counters.contains_key("classify.patterns_pruned"));
    }
}
