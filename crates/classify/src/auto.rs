//! Automatic classification of errata.

use rememberr_extract::scan_msr_refs;
use rememberr_model::{Annotation, Category, Erratum};
use rememberr_textkit::PreparedText;

use crate::rules::Rules;

/// The outcome of the relevance filter for one erratum-category pair.
///
/// The paper reduces `1128 x 60 = 67,680` per-human decisions to 2,064 by
/// filtering pairs that are "clearly relevant" or "clearly irrelevant" with
/// conservative regular expressions; only the rest needs human judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// A strong rule matched: the category applies.
    AutoRelevant,
    /// No rule matched at all: the category does not apply.
    AutoIrrelevant,
    /// Only a weak cue matched: a human must decide.
    NeedsHuman,
}

/// Counter name for a strong-rule hit, split by category kind so the
/// metrics snapshot shows where the rule library fires.
fn rule_fired_counter(category: Category) -> &'static str {
    match category {
        Category::Trigger(_) => "classify.trigger_rules_fired",
        Category::Context(_) => "classify.context_rules_fired",
        Category::Effect(_) => "classify.effect_rules_fired",
    }
}

/// Classifies one erratum-category pair.
pub fn decide(rules: &Rules, text: &PreparedText, category: Category) -> Decision {
    if rules.strong_for(category).any(|p| p.is_match(text)) {
        Decision::AutoRelevant
    } else if rules.weak_for(category).any(|p| p.is_match(text)) {
        Decision::NeedsHuman
    } else {
        Decision::AutoIrrelevant
    }
}

/// Prepares the classification text of an erratum (all prose fields).
pub fn prepare(erratum: &Erratum) -> PreparedText {
    PreparedText::new(&erratum.full_text())
}

/// The automatic classification of one erratum: resolved categories plus
/// the pairs needing human judgement.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoClassification {
    /// Annotation from auto-relevant categories only.
    pub annotation: Annotation,
    /// Categories whose decision is [`Decision::NeedsHuman`].
    pub needs_human: Vec<Category>,
    /// Total number of pairs auto-decided (relevant + irrelevant).
    pub auto_decided: usize,
}

/// Runs the rule library over one erratum.
///
/// Concrete-level snippets are filled with the text regions the strong
/// rules matched; MSR references found in the description are attached; the
/// "complex set of conditions" flag is set when a marker matches.
pub fn classify_erratum(rules: &Rules, erratum: &Erratum) -> AutoClassification {
    let text = prepare(erratum);
    let mut annotation = Annotation::new();
    let mut needs_human = Vec::new();
    let mut auto_decided = 0usize;

    let full = erratum.full_text();
    for category in Category::all() {
        match decide(rules, &text, category) {
            Decision::AutoRelevant => {
                auto_decided += 1;
                rememberr_obs::count(rule_fired_counter(category), 1);
                let snippet = rules
                    .strong_for(category)
                    .find_map(|p| {
                        p.find_in(&text)
                            .first()
                            .map(|span| full[span.start..span.end].to_string())
                    })
                    .unwrap_or_default();
                match category {
                    Category::Trigger(t) => {
                        annotation.triggers.insert(t);
                        annotation.concrete_triggers.push(snippet);
                    }
                    Category::Context(c) => {
                        annotation.contexts.insert(c);
                        annotation.concrete_contexts.push(snippet);
                    }
                    Category::Effect(e) => {
                        annotation.effects.insert(e);
                        annotation.concrete_effects.push(snippet);
                    }
                }
            }
            Decision::AutoIrrelevant => auto_decided += 1,
            Decision::NeedsHuman => needs_human.push(category),
        }
    }

    annotation.msrs = scan_msr_refs(&erratum.description);
    annotation.complex_conditions = rules.complex().iter().any(|p| p.is_match(&text));

    AutoClassification {
        annotation,
        needs_human,
        auto_decided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::{Context, Design, Effect, ErratumId, MsrName, Trigger};

    fn erratum(description: &str, title: &str) -> Erratum {
        Erratum {
            id: ErratumId::new(Design::Intel6, 1),
            title: title.to_string(),
            description: description.to_string(),
            implications: String::new(),
            workaround: "None identified.".to_string(),
            status: "No fix planned.".to_string(),
        }
    }

    #[test]
    fn classifies_the_fdp_erratum() {
        // The paper's Table I / Table VII example.
        let e = erratum(
            "Execution of the FSAVE, FNSAVE, FSTENV, or FNSTENV instructions in \
             real-address mode or virtual-8086 mode may save an incorrect value for the \
             x87 FDP. The value may be saved incorrectly.",
            "X87 FDP Value May be Saved Incorrectly",
        );
        let rules = Rules::standard();
        let out = classify_erratum(&rules, &e);
        assert!(out.annotation.triggers.contains(Trigger::FloatingPoint));
        assert!(out.annotation.contexts.contains(Context::RealMode));
        assert!(out.annotation.effects.contains(Effect::MsrValue));
    }

    #[test]
    fn snippets_are_taken_from_the_text() {
        let e = erratum("After a warm reset is applied the processor may hang.", "T");
        let out = classify_erratum(&Rules::standard(), &e);
        assert!(out.annotation.triggers.contains(Trigger::Reset));
        assert!(out
            .annotation
            .concrete_triggers
            .iter()
            .any(|s| s.contains("warm reset")));
    }

    #[test]
    fn msr_refs_are_attached() {
        let e = erratum(
            "The MCx_STATUS register (MSR 0x401) may contain an incorrect value.",
            "T",
        );
        let out = classify_erratum(&Rules::standard(), &e);
        assert_eq!(out.annotation.msrs.len(), 1);
        assert_eq!(out.annotation.msrs[0].name, MsrName::McStatus);
    }

    #[test]
    fn complex_conditions_flag() {
        let e = erratum(
            "Under a highly specific and detailed set of internal timing conditions, \
             the processor may hang.",
            "T",
        );
        let out = classify_erratum(&Rules::standard(), &e);
        assert!(out.annotation.complex_conditions);
    }

    #[test]
    fn weak_cues_defer_to_humans() {
        // "machine check" alone is ambiguous between trigger and effect.
        let e = erratum("A machine check occurred somewhere.", "T");
        let rules = Rules::standard();
        let out = classify_erratum(&rules, &e);
        assert!(out
            .needs_human
            .contains(&Category::Trigger(Trigger::MachineCheck)));
        assert!(out
            .needs_human
            .contains(&Category::Effect(Effect::MachineCheck)));
    }

    #[test]
    fn decisions_partition_all_sixty_categories() {
        let e = erratum("Nothing of note happens here.", "T");
        let out = classify_erratum(&Rules::standard(), &e);
        assert_eq!(out.auto_decided + out.needs_human.len(), Category::COUNT);
    }

    #[test]
    fn strong_match_wins_over_weak() {
        let e = erratum("A warm reset is applied.", "T");
        let rules = Rules::standard();
        let text = prepare(&e);
        assert_eq!(
            decide(&rules, &text, Category::Trigger(Trigger::Reset)),
            Decision::AutoRelevant
        );
    }
}
