//! Failure injection: the extraction pipeline must degrade gracefully —
//! return errors, never panic — on corrupted page streams.

use proptest::prelude::*;
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_extract::extract_document;
use rememberr_model::Design;

fn sample_text() -> (Design, String) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.02));
    let rendered = &corpus.rendered[0];
    (rendered.design, rendered.text.clone())
}

/// A corpus-level mutation applied to the text.
#[derive(Debug, Clone)]
enum Mutation {
    DeleteLine(usize),
    DuplicateLine(usize),
    TruncateAt(usize),
    SwapLines(usize, usize),
    InsertGarbage(usize),
    DropFormFeeds,
}

fn mutate(text: &str, mutation: &Mutation) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return text.to_string();
    }
    match mutation {
        Mutation::DeleteLine(i) => {
            let i = i % lines.len();
            lines.remove(i);
            lines.join("\n")
        }
        Mutation::DuplicateLine(i) => {
            let i = i % lines.len();
            lines.insert(i, lines[i]);
            lines.join("\n")
        }
        Mutation::TruncateAt(i) => {
            let i = i % lines.len();
            lines.truncate(i.max(1));
            lines.join("\n")
        }
        Mutation::SwapLines(i, j) => {
            let (i, j) = (i % lines.len(), j % lines.len());
            lines.swap(i, j);
            lines.join("\n")
        }
        Mutation::InsertGarbage(i) => {
            let i = i % lines.len();
            lines.insert(i, "@@ % garbage ## line 0x??");
            lines.join("\n")
        }
        Mutation::DropFormFeeds => text.replace('\u{c}', "\n"),
    }
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..5_000).prop_map(Mutation::DeleteLine),
        (0usize..5_000).prop_map(Mutation::DuplicateLine),
        (0usize..5_000).prop_map(Mutation::TruncateAt),
        ((0usize..5_000), (0usize..5_000)).prop_map(|(a, b)| Mutation::SwapLines(a, b)),
        (0usize..5_000).prop_map(Mutation::InsertGarbage),
        Just(Mutation::DropFormFeeds),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn mutated_documents_never_panic(mutations in prop::collection::vec(mutation_strategy(), 1..6)) {
        let (design, original) = sample_text();
        let mut text = original;
        for m in &mutations {
            text = mutate(&text, m);
        }
        // Ok or Err are both acceptable; panics are not.
        let _ = extract_document(design, &text);
    }

    #[test]
    fn arbitrary_bytes_never_panic(text in "[\\x20-\\x7e\\n\\x0c]{0,2000}") {
        let _ = extract_document(Design::Intel6, &text);
    }
}

#[test]
fn single_line_deletions_usually_still_extract() {
    // Deleting one mid-document content line must not collapse extraction:
    // either it still succeeds or it fails with a clean error.
    let (design, original) = sample_text();
    let lines: Vec<&str> = original.lines().collect();
    let mut successes = 0usize;
    let step = (lines.len() / 40).max(1);
    let mut attempts = 0usize;
    for i in (0..lines.len()).step_by(step) {
        let mut mutated: Vec<&str> = lines.clone();
        mutated.remove(i);
        let text = mutated.join("\n");
        attempts += 1;
        if extract_document(design, &text).is_ok() {
            successes += 1;
        }
    }
    assert!(
        successes * 2 >= attempts,
        "only {successes}/{attempts} single-deletion variants extracted"
    );
}
