//! Document-defect detection ("errata in errata", Section IV-A).
//!
//! After parsing, the extraction pipeline cross-checks the document against
//! itself and reports every inconsistency class the paper catalogued:
//! double-added revision claims, errata missing from the revision summary,
//! reused erratum names, missing/duplicated fields, erroneous MSR numbers,
//! and intra-document duplicate candidates.

use rememberr_model::{Design, ErrataDocument, ErratumId, MsrRef};
use rememberr_textkit::title_similarity;
use serde::{Deserialize, Serialize};

use crate::errata_parse::ParsedErratum;
use crate::msrscan::inconsistent_refs;

/// Title-similarity threshold above which two same-document errata are
/// flagged as intra-document duplicate candidates even when their bodies
/// differ. Body-identical pairs are always flagged; the high bar here keeps
/// qualifier-only title collisions between distinct bugs out of the report.
pub const INTRA_DOC_SIMILARITY: f64 = 0.9;

/// Defects detected while extracting one document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractionReport {
    /// Erratum numbers claimed as added by more than one revision.
    pub double_added: Vec<ErratumId>,
    /// Errata present in the document but absent from every revision's
    /// added-list.
    pub unmentioned: Vec<ErratumId>,
    /// Numbers that identify two different errata in the same document.
    pub name_collisions: Vec<(Design, u32)>,
    /// Errata missing an expected field (field label in the second slot).
    pub missing_fields: Vec<(ErratumId, String)>,
    /// Errata with a duplicated field (field label in the second slot).
    pub duplicate_fields: Vec<(ErratumId, String)>,
    /// MSR references whose printed number contradicts the registry.
    pub inconsistent_msrs: Vec<(ErratumId, MsrRef)>,
    /// Same-document pairs with near-identical titles or identical bodies.
    pub intra_doc_duplicates: Vec<(Design, u32, u32)>,
    /// Errata whose status field and the summary table of changes disagree
    /// (status says fixed but no table row, or a row without the status).
    pub status_summary_mismatches: Vec<ErratumId>,
}

impl ExtractionReport {
    /// Total number of detected defect instances.
    pub fn total(&self) -> usize {
        self.double_added.len()
            + self.unmentioned.len()
            + self.name_collisions.len()
            + self.missing_fields.len()
            + self.duplicate_fields.len()
            + self.inconsistent_msrs.len()
            + self.intra_doc_duplicates.len()
            + self.status_summary_mismatches.len()
    }

    /// Publishes one counter per defect class to the metrics registry
    /// (`extract.defect_*`). Called once per extracted document, so corpus
    /// counters are the sums over all documents.
    pub fn count_metrics(&self) {
        use rememberr_obs::count;
        count(
            "extract.defect_double_added",
            self.double_added.len() as u64,
        );
        count("extract.defect_unmentioned", self.unmentioned.len() as u64);
        count(
            "extract.defect_name_collisions",
            self.name_collisions.len() as u64,
        );
        count(
            "extract.defect_missing_fields",
            self.missing_fields.len() as u64,
        );
        count(
            "extract.defect_duplicate_fields",
            self.duplicate_fields.len() as u64,
        );
        count(
            "extract.defect_inconsistent_msrs",
            self.inconsistent_msrs.len() as u64,
        );
        count(
            "extract.defect_intra_doc_duplicates",
            self.intra_doc_duplicates.len() as u64,
        );
        count(
            "extract.defect_status_summary_mismatches",
            self.status_summary_mismatches.len() as u64,
        );
    }

    /// Merges another report (for corpus-level aggregation).
    pub fn merge(&mut self, other: ExtractionReport) {
        self.double_added.extend(other.double_added);
        self.unmentioned.extend(other.unmentioned);
        self.name_collisions.extend(other.name_collisions);
        self.missing_fields.extend(other.missing_fields);
        self.duplicate_fields.extend(other.duplicate_fields);
        self.inconsistent_msrs.extend(other.inconsistent_msrs);
        self.intra_doc_duplicates.extend(other.intra_doc_duplicates);
        self.status_summary_mismatches
            .extend(other.status_summary_mismatches);
    }
}

/// Inspects a parsed document and produces its defect report.
pub fn detect_defects(doc: &ErrataDocument, parsed: &[ParsedErratum]) -> ExtractionReport {
    let design = doc.design;
    let mut report = ExtractionReport::default();

    // Double-added: a number in the added-list of two or more revisions.
    let mut claim_count: std::collections::BTreeMap<u32, usize> = Default::default();
    for rev in &doc.revisions {
        let mut seen_in_rev = std::collections::BTreeSet::new();
        for &n in &rev.added {
            if seen_in_rev.insert(n) {
                *claim_count.entry(n).or_default() += 1;
            }
        }
    }
    for (&n, &count) in &claim_count {
        if count >= 2 {
            report.double_added.push(ErratumId::new(design, n));
        }
    }

    // Unmentioned: listed erratum never claimed by any revision.
    for e in &doc.errata {
        if !claim_count.contains_key(&e.id.number) {
            report.unmentioned.push(e.id);
        }
    }
    report.unmentioned.dedup();

    // Name collisions: the same number used by two different errata.
    let mut by_number: std::collections::BTreeMap<u32, usize> = Default::default();
    for e in &doc.errata {
        *by_number.entry(e.id.number).or_default() += 1;
    }
    for (&n, &count) in &by_number {
        if count >= 2 {
            report.name_collisions.push((design, n));
        }
    }

    // Field defects from the parser.
    for p in parsed {
        for &label in &p.missing_fields {
            report
                .missing_fields
                .push((p.erratum.id, label.to_string()));
        }
        for &label in &p.duplicated_fields {
            report
                .duplicate_fields
                .push((p.erratum.id, label.to_string()));
        }
    }

    // Inconsistent MSR numbers.
    for e in &doc.errata {
        for bad in inconsistent_refs(&e.description) {
            report.inconsistent_msrs.push((e.id, bad));
        }
    }

    // Status field vs summary-table cross-check.
    for e in &doc.errata {
        let status_fixed =
            rememberr_model::FixStatus::classify(&e.status) == rememberr_model::FixStatus::Fixed;
        let in_table = doc.fixed_in(e.id.number).is_some();
        if status_fixed != in_table {
            report.status_summary_mismatches.push(e.id);
        }
    }

    // Intra-document duplicate candidates.
    for (i, a) in doc.errata.iter().enumerate() {
        for b in doc.errata.iter().skip(i + 1) {
            if a.id.number == b.id.number {
                continue; // that is a name collision, not a duplicate pair
            }
            let near_title = title_similarity(&a.title, &b.title) >= INTRA_DOC_SIMILARITY;
            let same_body = a.description == b.description;
            if near_title || same_body {
                report.intra_doc_duplicates.push((
                    design,
                    a.id.number.min(b.id.number),
                    a.id.number.max(b.id.number),
                ));
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::{Date, Erratum, Revision};

    fn erratum(design: Design, n: u32, title: &str, description: &str) -> Erratum {
        Erratum {
            id: ErratumId::new(design, n),
            title: title.to_string(),
            description: description.to_string(),
            implications: "System may hang.".to_string(),
            workaround: "None identified.".to_string(),
            status: "No fix planned.".to_string(),
        }
    }

    fn doc_with(errata: Vec<Erratum>, revisions: Vec<Revision>) -> ErrataDocument {
        ErrataDocument {
            design: Design::Intel6,
            revisions,
            errata,
            fix_summary: Vec::new(),
        }
    }

    fn rev(number: u32, added: Vec<u32>) -> Revision {
        Revision {
            number,
            date: Date::new(2016, 1, 15).unwrap(),
            added,
        }
    }

    #[test]
    fn detects_double_added_and_unmentioned() {
        let doc = doc_with(
            vec![
                erratum(Design::Intel6, 1, "Title one", "d1"),
                erratum(Design::Intel6, 2, "Completely different", "d2"),
            ],
            vec![rev(1, vec![1]), rev(2, vec![1])],
        );
        let report = detect_defects(&doc, &[]);
        assert_eq!(report.double_added, vec![ErratumId::new(Design::Intel6, 1)]);
        assert_eq!(report.unmentioned, vec![ErratumId::new(Design::Intel6, 2)]);
    }

    #[test]
    fn repeat_within_one_revision_is_not_double_added() {
        let doc = doc_with(
            vec![erratum(Design::Intel6, 1, "Title", "d")],
            vec![rev(1, vec![1, 1])],
        );
        let report = detect_defects(&doc, &[]);
        assert!(report.double_added.is_empty());
    }

    #[test]
    fn detects_name_collision() {
        let doc = doc_with(
            vec![
                erratum(Design::Intel6, 143, "First unrelated thing", "a"),
                erratum(Design::Intel6, 143, "Second unrelated thing", "b"),
            ],
            vec![rev(1, vec![143])],
        );
        let report = detect_defects(&doc, &[]);
        assert_eq!(report.name_collisions, vec![(Design::Intel6, 143)]);
        // A collision is not also counted as an intra-document duplicate.
        assert!(report.intra_doc_duplicates.is_empty());
    }

    #[test]
    fn detects_intra_doc_duplicates() {
        let doc = doc_with(
            vec![
                // Same body, varied title: always flagged.
                erratum(
                    Design::Intel6,
                    1,
                    "A Warm Reset May Cause the Processor to Hang",
                    "same body",
                ),
                erratum(
                    Design::Intel6,
                    9,
                    "A Warm Reset Might Cause the Processor to Hang in Some Cases",
                    "same body",
                ),
                // Near-identical titles, different bodies: flagged by the
                // high-similarity rule.
                erratum(Design::Intel6, 3, "USB Transfers May Drop Packets", "b1"),
                erratum(Design::Intel6, 7, "USB Transfers Might Drop Packets", "b2"),
                // Merely related titles with different bodies: not flagged.
                erratum(
                    Design::Intel6,
                    5,
                    "USB Controllers May Reset Unexpectedly",
                    "b3",
                ),
            ],
            vec![rev(1, vec![1, 3, 5, 7, 9])],
        );
        let report = detect_defects(&doc, &[]);
        assert_eq!(
            report.intra_doc_duplicates,
            vec![(Design::Intel6, 1, 9), (Design::Intel6, 3, 7)]
        );
    }

    #[test]
    fn detects_identical_bodies() {
        let doc = doc_with(
            vec![
                erratum(Design::Intel6, 1, "Totally unrelated title A", "same body"),
                erratum(Design::Intel6, 2, "Very different subject B", "same body"),
            ],
            vec![rev(1, vec![1, 2])],
        );
        let report = detect_defects(&doc, &[]);
        assert_eq!(report.intra_doc_duplicates.len(), 1);
    }

    #[test]
    fn detects_inconsistent_msr() {
        let doc = doc_with(
            vec![erratum(
                Design::Intel6,
                1,
                "Title",
                "The TSC register (MSR 0x5010) may stop counting.",
            )],
            vec![rev(1, vec![1])],
        );
        let report = detect_defects(&doc, &[]);
        assert_eq!(report.inconsistent_msrs.len(), 1);
    }

    #[test]
    fn status_summary_cross_check() {
        use rememberr_model::FixedIn;
        let mut fixed = erratum(Design::Intel6, 1, "Title one", "d1");
        fixed.status =
            "For the steppings affected, refer to the Summary Table of Changes.".to_string();
        let unfixed = erratum(Design::Intel6, 2, "Totally different", "d2");
        let mut doc = doc_with(vec![fixed, unfixed], vec![rev(1, vec![1, 2])]);
        // Consistent: erratum 1 fixed with a table row.
        doc.fix_summary = vec![FixedIn {
            number: 1,
            stepping: "C0".into(),
        }];
        assert!(detect_defects(&doc, &[])
            .status_summary_mismatches
            .is_empty());
        // Missing row for a fixed status.
        doc.fix_summary.clear();
        assert_eq!(
            detect_defects(&doc, &[]).status_summary_mismatches,
            vec![ErratumId::new(Design::Intel6, 1)]
        );
        // Spurious row for an unfixed status.
        doc.fix_summary = vec![
            FixedIn {
                number: 1,
                stepping: "C0".into(),
            },
            FixedIn {
                number: 2,
                stepping: "C0".into(),
            },
        ];
        assert_eq!(
            detect_defects(&doc, &[]).status_summary_mismatches,
            vec![ErratumId::new(Design::Intel6, 2)]
        );
    }

    #[test]
    fn merge_and_total() {
        let mut a = ExtractionReport::default();
        a.double_added.push(ErratumId::new(Design::Intel6, 1));
        let mut b = ExtractionReport::default();
        b.unmentioned.push(ErratumId::new(Design::Intel6, 2));
        a.merge(b);
        assert_eq!(a.total(), 2);
    }
}
