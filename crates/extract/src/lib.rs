//! Extraction of structured errata from rendered page streams.
//!
//! This crate replaces the original study's `pdftotext` + `camelot` +
//! ad-hoc-Python layer: it depaginates the text stream, reassembles wrapped
//! and hyphenated lines, parses the revision-history table and every
//! erratum block, and cross-checks the result against itself to surface the
//! "errata in errata" defect classes the paper catalogues (double-added
//! revision claims, errata missing from revision summaries, reused names,
//! missing/duplicated fields, erroneous MSR numbers, intra-document
//! duplicates).
//!
//! # Examples
//!
//! ```
//! use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
//! use rememberr_extract::extract_document;
//!
//! # fn main() -> Result<(), rememberr_extract::ExtractError> {
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.02));
//! let first = &corpus.rendered[0];
//! let extracted = extract_document(first.design, &first.text)?;
//! assert_eq!(extracted.document.design, first.design);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod errata_parse;
mod error;
mod msrscan;
mod pipeline;
mod report;
mod revtable;
mod scanner;
mod summary;

pub use errata_parse::{parse_errata, ParsedErratum};
pub use error::ExtractError;
pub use msrscan::{inconsistent_refs, scan_msr_refs};
pub use pipeline::{
    extract_corpus, extract_document, ExtractedDocument, ERRATA_HEADING, REVISION_HEADING,
    SUMMARY_HEADING,
};
pub use report::{detect_defects, ExtractionReport, INTRA_DOC_SIMILARITY};
pub use revtable::{parse_added_numbers, parse_revision_table};
pub use scanner::{depaginate, section_after, section_between};
pub use summary::parse_fix_summary;
