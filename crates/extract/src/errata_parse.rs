//! Parsing erratum blocks from the content line stream.
//!
//! A block looks like:
//!
//! ```text
//! SKL095  Writing Certain Model Specific Registers May Cause the
//!         Processor to Hang
//! Problem: When software writes a specific value to a configuration reg-
//!          ister while thermal throttling engages, the processor may ...
//! Implication: System may hang or reset.
//! Workaround: It is possible for the BIOS to contain a workaround ...
//! Status: No fix planned.
//! ```
//!
//! Blocks are separated by blank lines; field and title text wraps onto
//! indented continuation lines with hyphenation, undone by
//! [`rememberr_textkit::reflow`].

use rememberr_model::{Design, Erratum, ErratumId};
use rememberr_textkit::{reflow_counted, ReflowStats};

use crate::error::ExtractError;

/// Field labels, in document order.
const FIELD_LABELS: [&str; 4] = ["Problem", "Implication", "Workaround", "Status"];

/// A parsed erratum plus parse-level observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedErratum {
    /// The reconstructed erratum.
    pub erratum: Erratum,
    /// Labels of fields that appeared more than once (defect).
    pub duplicated_fields: Vec<&'static str>,
    /// Labels of expected fields that were absent (defect).
    pub missing_fields: Vec<&'static str>,
}

/// Accumulates one field's wrapped lines.
#[derive(Debug, Default)]
struct Block {
    id_form: String,
    title_lines: Vec<String>,
    /// `(label, lines)` in order of appearance; duplicates kept.
    fields: Vec<(&'static str, Vec<String>)>,
}

impl Block {
    fn finish(self, design: Design) -> Result<ParsedErratum, ExtractError> {
        let id = ErratumId::parse_document_form(design, &self.id_form).map_err(|_| {
            ExtractError::BadErratumHeader {
                line: self.id_form.clone(),
            }
        })?;
        let mut repairs = ReflowStats::default();
        let (title, title_stats) = reflow_counted(&self.title_lines);
        repairs.merge(title_stats);

        let mut duplicated = Vec::new();
        let mut take = |label: &'static str| -> String {
            let mut found: Option<String> = None;
            for (l, lines) in &self.fields {
                if *l == label {
                    if found.is_some() {
                        duplicated.push(label);
                    } else {
                        let (text, stats) = reflow_counted(lines);
                        repairs.merge(stats);
                        found = Some(text);
                    }
                }
            }
            found.unwrap_or_default()
        };
        let description = take("Problem");
        let implications = take("Implication");
        let workaround = take("Workaround");
        let status = take("Status");

        rememberr_obs::count("extract.lines_repaired", repairs.lines_joined as u64);
        rememberr_obs::count("extract.dehyphenations", repairs.dehyphenations as u64);

        let mut missing = Vec::new();
        for (label, value) in [
            ("Problem", &description),
            ("Implication", &implications),
            ("Workaround", &workaround),
            ("Status", &status),
        ] {
            if value.is_empty() {
                missing.push(label);
            }
        }

        Ok(ParsedErratum {
            erratum: Erratum {
                id,
                title,
                description,
                implications,
                workaround,
                status,
            },
            duplicated_fields: duplicated,
            missing_fields: missing,
        })
    }
}

/// Returns the field label if the line opens a field section.
fn field_label(line: &str) -> Option<(&'static str, &str)> {
    for label in FIELD_LABELS {
        if let Some(rest) = line.strip_prefix(label) {
            if let Some(text) = rest.strip_prefix(": ") {
                return Some((label, text));
            }
        }
    }
    None
}

/// Parses all erratum blocks from the lines of the errata section.
///
/// An empty section yields an empty list (young documents may list no
/// errata yet).
///
/// # Errors
///
/// Returns [`ExtractError::BadErratumHeader`] for an unparsable header.
pub fn parse_errata(design: Design, lines: &[String]) -> Result<Vec<ParsedErratum>, ExtractError> {
    let mut out = Vec::new();
    let mut block: Option<Block> = None;
    let mut in_title = false;

    for line in lines {
        if line.trim().is_empty() {
            if let Some(b) = block.take() {
                out.push(b.finish(design)?);
            }
            in_title = false;
            continue;
        }
        if line.starts_with(char::is_whitespace) {
            // Continuation of the current accumulation.
            let Some(b) = block.as_mut() else {
                // Stray indentation outside a block: dropped rather than
                // failing the document (a recovery, so it is counted).
                rememberr_obs::count("extract.recovered_errors", 1);
                continue;
            };
            let trimmed = line.trim_start().to_string();
            if in_title {
                b.title_lines.push(trimmed);
            } else if let Some((_, field_lines)) = b.fields.last_mut() {
                field_lines.push(trimmed);
            } else {
                b.title_lines.push(trimmed);
            }
            continue;
        }
        if let Some((label, text)) = field_label(line) {
            let Some(b) = block.as_mut() else {
                return Err(ExtractError::BadErratumHeader { line: line.clone() });
            };
            in_title = false;
            b.fields.push((label, vec![text.to_string()]));
            continue;
        }
        // A new erratum header: "<id>  <title...>".
        if let Some(b) = block.take() {
            out.push(b.finish(design)?);
        }
        let Some((id_form, title_start)) = line.split_once("  ") else {
            return Err(ExtractError::BadErratumHeader { line: line.clone() });
        };
        block = Some(Block {
            id_form: id_form.trim().to_string(),
            title_lines: vec![title_start.trim_start().to_string()],
            fields: Vec::new(),
        });
        in_title = true;
    }
    if let Some(b) = block.take() {
        out.push(b.finish(design)?);
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_single_block() {
        let parsed = parse_errata(
            Design::Intel6,
            &lines(&[
                "SKL095  Writing Certain Model Specific Registers May Cause the",
                "        Processor to Hang",
                "Problem: When software writes a specific value to a configuration reg-",
                "         ister, the processor may not behave as expected.",
                "Implication: System may hang or reset.",
                "Workaround: None identified.",
                "Status: No fix planned.",
            ]),
        )
        .unwrap();
        assert_eq!(parsed.len(), 1);
        let e = &parsed[0].erratum;
        assert_eq!(e.id.number, 95);
        assert_eq!(
            e.title,
            "Writing Certain Model Specific Registers May Cause the Processor to Hang"
        );
        assert!(e.description.contains("configuration register,"));
        assert_eq!(e.status, "No fix planned.");
        assert!(parsed[0].duplicated_fields.is_empty());
        assert!(parsed[0].missing_fields.is_empty());
    }

    #[test]
    fn multiple_blocks_separated_by_blanks() {
        let parsed = parse_errata(
            Design::Amd19h,
            &lines(&[
                "1361  Processor May Hang",
                "Problem: A problem.",
                "Status: No fix planned.",
                "",
                "1362  Processor May Also Hang",
                "Problem: Another problem.",
                "Status: No fix planned.",
            ]),
        )
        .unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].erratum.id.number, 1361);
        assert_eq!(parsed[1].erratum.id.number, 1362);
    }

    #[test]
    fn missing_fields_are_reported() {
        let parsed = parse_errata(
            Design::Amd19h,
            &lines(&[
                "1361  Title here",
                "Problem: Text.",
                "Status: No fix planned.",
            ]),
        )
        .unwrap();
        assert_eq!(parsed[0].missing_fields, vec!["Implication", "Workaround"]);
    }

    #[test]
    fn duplicated_fields_are_reported_and_first_wins() {
        let parsed = parse_errata(
            Design::Amd19h,
            &lines(&[
                "1361  Title here",
                "Problem: Text.",
                "Workaround: First.",
                "Workaround: Second.",
                "Status: No fix planned.",
            ]),
        )
        .unwrap();
        assert_eq!(parsed[0].duplicated_fields, vec!["Workaround"]);
        assert_eq!(parsed[0].erratum.workaround, "First.");
    }

    #[test]
    fn dehyphenation_in_fields() {
        let parsed = parse_errata(
            Design::Intel6,
            &lines(&[
                "SKL001  A Title",
                "Problem: the MCx_STA-",
                "         TUS register may contain an incorrect value.",
            ]),
        )
        .unwrap();
        assert!(parsed[0]
            .erratum
            .description
            .contains("MCx_STATUS register"));
    }

    #[test]
    fn bad_header_is_an_error() {
        assert!(parse_errata(Design::Intel6, &lines(&["nonsense-without-id"])).is_err());
        assert!(parse_errata(Design::Intel6, &lines(&["XYZ9  Title"])).is_err());
        // Field before any header.
        assert!(parse_errata(Design::Intel6, &lines(&["Problem: orphan field."])).is_err());
    }

    #[test]
    fn empty_section_yields_no_errata() {
        assert!(parse_errata(Design::Intel6, &lines(&["", ""]))
            .unwrap()
            .is_empty());
    }
}
