//! Page-stream scanning: strips pagination artifacts and recovers the
//! continuous content line stream.
//!
//! Rendered documents (like PDF-extracted text) consist of pages separated
//! by form feeds, each carrying a running header (document reference line
//! plus a blank) and a footer (a blank plus a `Page N of M` line). Content
//! blocks flow across page boundaries, so the scanner's output is the
//! seamless concatenation of all pages' content lines.

use crate::error::ExtractError;

/// Splits a page stream into pages and strips headers/footers.
///
/// # Errors
///
/// Returns [`ExtractError::MalformedPage`] if a page is too short to carry
/// the two header lines and two footer lines.
pub fn depaginate(text: &str) -> Result<Vec<String>, ExtractError> {
    let mut content = Vec::new();
    let mut pages = 0u64;
    for (page_no, page) in text.split('\u{c}').enumerate() {
        let mut lines: Vec<&str> = page.split('\n').collect();
        // A trailing newline produces one empty trailing element.
        if lines.last() == Some(&"") {
            lines.pop();
        }
        if lines.len() < 4 {
            return Err(ExtractError::MalformedPage { page: page_no });
        }
        // Header: reference line + blank. Footer: blank + "Page N of M".
        let body = &lines[2..lines.len() - 2];
        content.extend(body.iter().map(|l| l.to_string()));
        pages += 1;
    }
    rememberr_obs::count("extract.pages_scanned", pages);
    Ok(content)
}

/// Splits content lines at a heading line, returning the lines after it.
///
/// # Errors
///
/// Returns [`ExtractError::MissingSection`] if the heading never occurs.
pub fn section_after<'a>(
    lines: &'a [String],
    heading: &'static str,
) -> Result<&'a [String], ExtractError> {
    let idx = lines
        .iter()
        .position(|l| l.trim() == heading)
        .ok_or(ExtractError::MissingSection { heading })?;
    Ok(&lines[idx + 1..])
}

/// Returns the lines of a section: everything after `heading` up to (not
/// including) the line matching `until`, or the rest if `until` is absent.
pub fn section_between<'a>(
    lines: &'a [String],
    heading: &'static str,
    until: &'static str,
) -> Result<&'a [String], ExtractError> {
    let after = section_after(lines, heading)?;
    let end = after
        .iter()
        .position(|l| l.trim() == until)
        .unwrap_or(after.len());
    Ok(&after[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(header: &str, body: &[&str], footer: &str) -> String {
        let mut s = String::new();
        s.push_str(header);
        s.push('\n');
        s.push('\n');
        for line in body {
            s.push_str(line);
            s.push('\n');
        }
        s.push('\n');
        s.push_str(footer);
        s.push('\n');
        s
    }

    #[test]
    fn strips_headers_and_footers() {
        let p1 = page("REF  Update", &["alpha", "beta"], "Page 1 of 2");
        let p2 = page("REF  Update", &["gamma"], "Page 2 of 2");
        let text = format!("{p1}\u{c}{p2}");
        let content = depaginate(&text).unwrap();
        assert_eq!(content, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn content_flows_across_pages() {
        // A block split across a page boundary reassembles seamlessly.
        let p1 = page("H", &["ID  Title", "Problem: first part"], "Page 1 of 2");
        let p2 = page("H", &["         second part"], "Page 2 of 2");
        let text = format!("{p1}\u{c}{p2}");
        let content = depaginate(&text).unwrap();
        assert_eq!(content[1], "Problem: first part");
        assert_eq!(content[2], "         second part");
    }

    #[test]
    fn malformed_page_rejected() {
        let err = depaginate("x\ny\n").unwrap_err();
        assert_eq!(err, ExtractError::MalformedPage { page: 0 });
    }

    #[test]
    fn section_extraction() {
        let lines: Vec<String> = ["a", "HEAD", "b", "c", "TAIL", "d"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(section_after(&lines, "HEAD").unwrap().len(), 4);
        let mid = section_between(&lines, "HEAD", "TAIL").unwrap();
        assert_eq!(mid, &["b".to_string(), "c".to_string()][..]);
        assert!(section_after(&lines, "NOPE").is_err());
        // Missing terminator: rest of the document.
        let rest = section_between(&lines, "TAIL", "NOPE").unwrap();
        assert_eq!(rest, &["d".to_string()][..]);
    }
}
