//! End-to-end document extraction.

use rememberr_model::{Design, ErrataDocument};

use crate::errata_parse::parse_errata;
use crate::error::ExtractError;
use crate::report::{detect_defects, ExtractionReport};
use crate::revtable::parse_revision_table;
use crate::scanner::{depaginate, section_after, section_between};
use crate::summary::parse_fix_summary;

/// Heading opening the revision-history table (matches the renderer).
pub const REVISION_HEADING: &str = "REVISION HISTORY";

/// Heading opening the errata listing (matches the renderer).
pub const ERRATA_HEADING: &str = "ERRATA DETAILS";

/// Heading opening the summary table of changes (matches the renderer).
pub const SUMMARY_HEADING: &str = "SUMMARY TABLE OF CHANGES";

/// The result of extracting one document.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedDocument {
    /// The reconstructed structured document.
    pub document: ErrataDocument,
    /// Defects detected during extraction.
    pub report: ExtractionReport,
}

/// Extracts a structured document from a page stream.
///
/// # Errors
///
/// Returns an [`ExtractError`] if the stream is structurally unparsable;
/// *content* defects (missing fields, wrong MSR numbers, contradictory
/// revision logs) never fail extraction — they are repaired where possible
/// and reported in [`ExtractedDocument::report`].
pub fn extract_document(design: Design, text: &str) -> Result<ExtractedDocument, ExtractError> {
    let _span = rememberr_obs::span!("extract.document", "{design}");
    let lines = depaginate(text)?;
    // The summary table is optional in older streams: fall back to parsing
    // the revision table up to the errata heading.
    let has_summary = lines.iter().any(|l| l.trim() == SUMMARY_HEADING);
    let rev_end = if has_summary {
        SUMMARY_HEADING
    } else {
        ERRATA_HEADING
    };
    let rev_lines = section_between(&lines, REVISION_HEADING, rev_end)?;
    let revisions = parse_revision_table(design, rev_lines)?;
    let fix_summary = if has_summary {
        let summary_lines = section_between(&lines, SUMMARY_HEADING, ERRATA_HEADING)?;
        parse_fix_summary(design, summary_lines)
    } else {
        Vec::new()
    };
    let errata_lines = section_after(&lines, ERRATA_HEADING)?;
    let parsed = parse_errata(design, errata_lines)?;

    let document = ErrataDocument {
        design,
        revisions,
        errata: parsed.iter().map(|p| p.erratum.clone()).collect(),
        fix_summary,
    };
    let report = detect_defects(&document, &parsed);
    report.count_metrics();
    Ok(ExtractedDocument { document, report })
}

/// Extracts a whole corpus of rendered documents.
///
/// Documents are independent, so extraction fans out across workers;
/// results come back in input order and the defect reports merge in that
/// same order, so the output is identical at every worker count.
///
/// Returns the structured documents (in input order) and the merged defect
/// report.
///
/// # Errors
///
/// Fails with the error of the first (in input order) structurally
/// unparsable document. Unlike the historical sequential loop, later
/// documents may already have been parsed when that error is reported.
pub fn extract_corpus<'a, I>(
    rendered: I,
) -> Result<(Vec<ErrataDocument>, ExtractionReport), ExtractError>
where
    I: IntoIterator<Item = (Design, &'a str)>,
{
    let _span = rememberr_obs::span!("extract.corpus");
    let inputs: Vec<(Design, &str)> = rendered.into_iter().collect();
    let results = rememberr_par::par_map(&inputs, |&(design, text)| extract_document(design, text));
    let mut documents = Vec::with_capacity(inputs.len());
    let mut report = ExtractionReport::default();
    for result in results {
        let extracted = result?;
        documents.push(extracted.document);
        report.merge(extracted.report);
    }
    Ok((documents, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_docgen::{render_document, CorpusSpec, SyntheticCorpus};

    #[test]
    fn roundtrip_small_corpus_structure() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        for (rendered, structured) in corpus.rendered.iter().zip(&corpus.structured) {
            let extracted = extract_document(rendered.design, &rendered.text).unwrap();
            assert_eq!(extracted.document.design, structured.design);
            assert_eq!(
                extracted.document.errata.len(),
                structured.errata.len(),
                "{}",
                rendered.design
            );
            assert_eq!(
                extracted.document.revisions.len(),
                structured.revisions.len()
            );
        }
    }

    #[test]
    fn roundtrip_recovers_titles_and_fields() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        let mut checked = 0usize;
        for (rendered, structured) in corpus.rendered.iter().zip(&corpus.structured) {
            let extracted = extract_document(rendered.design, &rendered.text).unwrap();
            for (got, want) in extracted.document.errata.iter().zip(&structured.errata) {
                assert_eq!(got.id, want.id);
                assert_eq!(got.title, want.title, "{}", want.id);
                assert_eq!(got.description, want.description, "{}", want.id);
                assert_eq!(got.workaround, want.workaround, "{}", want.id);
                assert_eq!(got.status, want.status, "{}", want.id);
                checked += 1;
            }
        }
        assert!(checked > 50, "only {checked} errata checked");
    }

    #[test]
    fn roundtrip_recovers_revision_added_lists() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.05));
        for (rendered, structured) in corpus.rendered.iter().zip(&corpus.structured) {
            let extracted = extract_document(rendered.design, &rendered.text).unwrap();
            for (got, want) in extracted
                .document
                .revisions
                .iter()
                .zip(&structured.revisions)
            {
                assert_eq!(got.number, want.number);
                assert_eq!(
                    got.added, want.added,
                    "{} rev {}",
                    rendered.design, want.number
                );
                // Dates survive at month resolution.
                assert_eq!(got.date.year(), want.date.year());
                assert_eq!(got.date.month(), want.date.month());
            }
        }
    }

    #[test]
    fn defect_detection_matches_injected_counts_on_paper_corpus() {
        let spec = CorpusSpec::paper();
        let corpus = SyntheticCorpus::generate(&spec);
        let (_, report) =
            extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str()))).unwrap();

        let injected = &corpus.truth.defects;
        // Every injected double-add is detected.
        for id in &injected.double_added {
            assert!(report.double_added.contains(id), "{id} missed");
        }
        // Every injected unmentioned erratum is detected.
        for id in &injected.unmentioned {
            assert!(report.unmentioned.contains(id), "{id} missed");
        }
        // The AAJ143-style collision is found.
        for c in &injected.name_collisions {
            assert!(report.name_collisions.contains(c), "{c:?} missed");
        }
        // Wrong MSR numbers are flagged.
        for id in &injected.wrong_msr {
            assert!(
                report.inconsistent_msrs.iter().any(|(e, _)| e == id),
                "{id} missed"
            );
        }
        // Missing/duplicate fields.
        let missing_injected = injected
            .field_defects
            .iter()
            .filter(|(_, k)| !matches!(k, rememberr_docgen::FieldDefect::DuplicateWorkaround))
            .count();
        assert!(report.missing_fields.len() >= missing_injected);
        let dup_injected = injected
            .field_defects
            .iter()
            .filter(|(_, k)| matches!(k, rememberr_docgen::FieldDefect::DuplicateWorkaround))
            .count();
        assert_eq!(report.duplicate_fields.len(), dup_injected);
        // Intra-document duplicates: all injected pairs recovered.
        for pair in &injected.intra_doc_pairs {
            assert!(
                report.intra_doc_duplicates.contains(pair),
                "{pair:?} missed"
            );
        }
    }

    #[test]
    fn garbage_input_fails_cleanly() {
        assert!(extract_document(Design::Intel6, "").is_err());
        assert!(extract_document(
            Design::Intel6,
            "just\nsome\nrandom\ntext\nwithout\nstructure\n"
        )
        .is_err());
    }

    #[test]
    fn rendered_document_roundtrip_on_paper_scale_sample() {
        // Spot-check a full-scale document (the largest Intel one).
        let corpus = SyntheticCorpus::paper();
        let doc = &corpus.structured[0];
        let rendered = render_document(doc, &corpus.truth.defects);
        let extracted = extract_document(doc.design, &rendered.text).unwrap();
        assert_eq!(extracted.document.errata.len(), doc.errata.len());
    }
}
