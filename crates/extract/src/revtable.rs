//! Parsing the revision-history table.
//!
//! Rendered tables look like:
//!
//! ```text
//! Rev   Date             Description
//! 1     August 2015      Initial release. Added errata SKL001-SKL057.
//! 2     October 2015     Added errata SKL058-SKL064.
//! 3     December 2015    Added erratum SKL065. Editorial changes.
//! ```
//!
//! Rows may wrap onto indented continuation lines. Dates are printed at
//! month resolution, which is exactly the precision the original study had
//! to work with; parsed dates use the mid-month convention.

use rememberr_model::{Date, Design, Revision};
use rememberr_textkit::reflow_counted;

use crate::error::ExtractError;

/// Parses the revision table rows that follow the section heading.
///
/// Consumes lines until the first blank line. The `Rev Date Description`
/// column-header line is skipped if present.
///
/// # Errors
///
/// Returns [`ExtractError::BadRevisionRow`] for a row whose revision number
/// or date cannot be parsed.
pub fn parse_revision_table(
    design: Design,
    lines: &[String],
) -> Result<Vec<Revision>, ExtractError> {
    let mut rows: Vec<(u32, Date, Vec<String>)> = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            break;
        }
        if line.starts_with("Rev") {
            continue; // column header
        }
        if line.starts_with(char::is_whitespace) {
            // Continuation of the previous row's (wrapped) description.
            match rows.last_mut() {
                Some((_, _, desc_lines)) => {
                    desc_lines.push(line.trim().to_string());
                }
                None => {
                    return Err(ExtractError::BadRevisionRow { line: line.clone() });
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let bad = || ExtractError::BadRevisionRow { line: line.clone() };
        let rev: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month = it.next().ok_or_else(bad)?;
        let year = it.next().ok_or_else(bad)?;
        let date = Date::parse_document_style(&format!("{month} {year}"))
            .map_err(|_| ExtractError::BadDate { line: line.clone() })?;
        let first: String = it.collect::<Vec<_>>().join(" ");
        rows.push((rev, date, vec![first]));
    }

    Ok(rows
        .into_iter()
        .map(|(number, date, desc_lines)| {
            // Reflow undoes the renderer's hyphenation before number
            // extraction (long added-lists wrap mid-range).
            let (desc, repairs) = reflow_counted(&desc_lines);
            rememberr_obs::count("extract.lines_repaired", repairs.lines_joined as u64);
            rememberr_obs::count("extract.dehyphenations", repairs.dehyphenations as u64);
            Revision {
                number,
                date,
                added: parse_added_numbers(design, &desc),
            }
        })
        .collect())
}

/// Extracts the erratum numbers from an `Added errata ...` description.
///
/// Handles singular/plural forms, comma-separated lists and ranges, in the
/// document's identifier form (Intel prefix or bare AMD number). Hyphenation
/// artifacts (stray spaces inside a range) are tolerated.
pub fn parse_added_numbers(design: Design, description: &str) -> Vec<u32> {
    let Some(pos) = description.find("Added errat") else {
        return Vec::new();
    };
    let after = &description[pos..];
    // Skip "Added errata " or "Added erratum ".
    let list_start = match after.find(' ') {
        Some(first_space) => match after[first_space + 1..].find(' ') {
            Some(second) => first_space + 1 + second + 1,
            None => return Vec::new(),
        },
        None => return Vec::new(),
    };
    let list = &after[list_start..];
    let list = list.split('.').next().unwrap_or(list);

    let mut numbers = Vec::new();
    for part in list.split(',') {
        // Remove hyphenation-artifact spaces within a single id or range.
        let compact: String = part.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.is_empty() {
            continue;
        }
        if let Some((a, b)) = split_range(design, &compact) {
            if a <= b && b - a < 10_000 {
                numbers.extend(a..=b);
            } else {
                // Corrupted range endpoint: skipped instead of allocating
                // gigabytes — a counted recovery.
                rememberr_obs::count("extract.recovered_errors", 1);
            }
        } else if let Some(n) = parse_id_form(design, &compact) {
            numbers.push(n);
        } else {
            // An identifier that fits neither the range nor the single-id
            // document form (e.g. a wrong-design prefix): skipped.
            rememberr_obs::count("extract.recovered_errors", 1);
        }
    }
    numbers.sort_unstable();
    numbers.dedup();
    numbers
}

/// Parses a single identifier in document form, e.g. `SKL095` or `1361`.
fn parse_id_form(design: Design, s: &str) -> Option<u32> {
    let prefix = design.erratum_prefix();
    let rest = s.strip_prefix(prefix)?;
    rest.parse().ok()
}

/// Splits `A-B` ranges; both endpoints must parse in the document form.
fn split_range(design: Design, s: &str) -> Option<(u32, u32)> {
    let prefix = design.erratum_prefix();
    // Find a '-' that is not part of the prefix (prefixes are alphabetic,
    // so any '-' splits the two identifiers).
    for (i, c) in s.char_indices() {
        if c == '-' && i > prefix.len() {
            let a = parse_id_form(design, &s[..i])?;
            let b = parse_id_form(design, &s[i + 1..])?;
            return Some((a, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_simple_table() {
        let table = lines(&[
            "Rev   Date             Description",
            "1     August 2015      Initial release. Added errata SKL001-SKL003.",
            "2     October 2015     Added erratum SKL004.",
            "",
            "ignored",
        ]);
        let revs = parse_revision_table(Design::Intel6, &table).unwrap();
        assert_eq!(revs.len(), 2);
        assert_eq!(revs[0].number, 1);
        assert_eq!(revs[0].date, Date::new(2015, 8, 15).unwrap());
        assert_eq!(revs[0].added, vec![1, 2, 3]);
        assert_eq!(revs[1].added, vec![4]);
    }

    #[test]
    fn continuation_lines_join() {
        // The renderer hyphenates mid-identifier (never adjacent to the
        // natural range hyphen); reflow undoes exactly that.
        let table = lines(&[
            "1     August 2015      Initial release. Added errata SKL0-",
            "                       01-SKL003, SKL007.",
        ]);
        let revs = parse_revision_table(Design::Intel6, &table).unwrap();
        assert_eq!(revs[0].added, vec![1, 2, 3, 7]);
    }

    #[test]
    fn unwrapped_continuations_also_join() {
        // A continuation starting a fresh identifier (line broke at a
        // space) survives.
        let table = lines(&[
            "1     August 2015      Initial release. Added errata SKL001-SKL003,",
            "                       SKL007.",
        ]);
        let revs = parse_revision_table(Design::Intel6, &table).unwrap();
        assert_eq!(revs[0].added, vec![1, 2, 3, 7]);
    }

    #[test]
    fn amd_plain_numbers() {
        let table = lines(&["3     June 2021        Added errata 1327, 1329, 1340-1342."]);
        let revs = parse_revision_table(Design::Amd19h, &table).unwrap();
        assert_eq!(revs[0].added, vec![1327, 1329, 1340, 1341, 1342]);
    }

    #[test]
    fn editorial_rows_have_no_numbers() {
        let table = lines(&["4     July 2021        Editorial changes only."]);
        let revs = parse_revision_table(Design::Amd19h, &table).unwrap();
        assert!(revs[0].added.is_empty());
    }

    #[test]
    fn bad_rows_error() {
        let table = lines(&["xyz   August 2015      Added erratum SKL001."]);
        assert!(parse_revision_table(Design::Intel6, &table).is_err());
        let orphan = lines(&["    continuation without a row"]);
        assert!(parse_revision_table(Design::Intel6, &orphan).is_err());
        let bad_date = lines(&["1     Augternber 2015  X."]);
        assert!(parse_revision_table(Design::Intel6, &bad_date).is_err());
    }

    #[test]
    fn wrong_prefix_ids_are_skipped() {
        let revs = parse_revision_table(
            Design::Intel6,
            &lines(&["1     August 2015      Added errata ADL001, SKL002."]),
        )
        .unwrap();
        assert_eq!(revs[0].added, vec![2]);
    }

    #[test]
    fn insane_ranges_are_ignored() {
        // Range parsing must not allocate gigabytes on corrupted input.
        let revs = parse_revision_table(
            Design::Amd19h,
            &lines(&["1     August 2015      Added errata 1-4000000000."]),
        )
        .unwrap();
        assert!(revs[0].added.is_empty());
    }
}
