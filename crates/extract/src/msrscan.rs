//! Scanning erratum prose for MSR references and validating their numbers.
//!
//! Errata print register names together with their MSR numbers ("the
//! MCx_STATUS register (MSR 0x401)"). Three errata across three documents
//! carry *wrong* numbers (Section IV-A); this scanner recovers every
//! reference and flags inconsistent ones against the registry in
//! [`rememberr_model::MsrName`].

use rememberr_model::{MsrName, MsrRef};

/// Finds all `<NAME> register (MSR 0x<hex>)` references in `text`.
///
/// Unknown register names are skipped; the returned references may be
/// inconsistent (check [`MsrRef::is_consistent`]).
pub fn scan_msr_refs(text: &str) -> Vec<MsrRef> {
    let mut out = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = text[search_from..].find("(MSR 0x") {
        let num_start = search_from + rel + "(MSR 0x".len();
        let rest = &text[num_start..];
        let hex_len = rest.bytes().take_while(|b| b.is_ascii_hexdigit()).count();
        let claimed = u32::from_str_radix(&rest[..hex_len], 16).ok();
        // Look backwards for the register name: the token before " register".
        let before = &text[..search_from + rel];
        let name = before
            .trim_end()
            .strip_suffix("register")
            .map(str::trim_end)
            .and_then(|s| s.rsplit(|c: char| c.is_whitespace()).next())
            .and_then(MsrName::lookup);
        if let (Some(name), Some(claimed_address)) = (name, claimed) {
            out.push(MsrRef {
                name,
                claimed_address,
            });
        }
        search_from = num_start + hex_len;
    }
    out
}

/// Returns only the references whose printed numbers are wrong.
pub fn inconsistent_refs(text: &str) -> Vec<MsrRef> {
    scan_msr_refs(text)
        .into_iter()
        .filter(|r| !r.is_consistent())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_reference() {
        let refs =
            scan_msr_refs("The MCx_STATUS register (MSR 0x401) may contain an incorrect value.");
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].name, MsrName::McStatus);
        assert_eq!(refs[0].claimed_address, 0x401);
        assert!(refs[0].is_consistent());
    }

    #[test]
    fn finds_multiple_references() {
        let text = "The APERF register (MSR 0xE8) and the MPERF register (MSR 0xE7) drift.";
        let refs = scan_msr_refs(text);
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].name, MsrName::Aperf);
        assert_eq!(refs[1].name, MsrName::Mperf);
    }

    #[test]
    fn flags_wrong_numbers() {
        let text = "The TSC register (MSR 0x5010) may stop.";
        let bad = inconsistent_refs(text);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, MsrName::Tsc);
        assert!(!bad[0].is_consistent());
    }

    #[test]
    fn banked_windows_are_consistent() {
        let text = "The MCx_STATUS register (MSR 0x429) logged the event."; // bank 10
        assert!(inconsistent_refs(text).is_empty());
    }

    #[test]
    fn unknown_names_are_skipped() {
        let refs = scan_msr_refs("The FOO_BAR register (MSR 0x123) is fictional.");
        assert!(refs.is_empty());
    }

    #[test]
    fn tolerates_missing_pieces() {
        assert!(scan_msr_refs("(MSR 0x...) nothing before").is_empty());
        assert!(scan_msr_refs("no references at all").is_empty());
        assert!(scan_msr_refs("register (MSR 0x)").is_empty());
    }
}
