//! Parsing the "Summary Table of Changes" (fixed errata and steppings).
//!
//! Intel status fields defer to this table ("For the steppings affected,
//! refer to the Summary Table of Changes" — Table I of the paper); parsing
//! it lets the pipeline cross-check status claims against the table.

use rememberr_model::{Design, ErratumId, FixedIn};

/// Parses the summary-table rows that follow the section heading.
///
/// Rows look like `SKL012     C0`. The column-header line and the
/// no-fixes placeholder sentence are skipped; parsing stops at the first
/// blank line. Unparsable rows are skipped (the table is advisory — the
/// cross-check in [`crate::detect_defects`] reports inconsistencies).
pub fn parse_fix_summary(design: Design, lines: &[String]) -> Vec<FixedIn> {
    let mut out = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            break;
        }
        if line.starts_with("Erratum") || line.starts_with("No errata") {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(id_form), Some(stepping)) = (it.next(), it.next()) else {
            // A row too short to carry an id and a stepping: skipped, since
            // the table is advisory — but counted as a recovery.
            rememberr_obs::count("extract.recovered_errors", 1);
            continue;
        };
        if let Ok(id) = ErratumId::parse_document_form(design, id_form) {
            out.push(FixedIn {
                number: id.number,
                stepping: stepping.to_string(),
            });
        } else {
            rememberr_obs::count("extract.recovered_errors", 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_rows() {
        let rows = parse_fix_summary(
            Design::Intel6,
            &lines(&[
                "Erratum    Fixed in stepping",
                "SKL012     C0",
                "SKL095     D0",
                "",
                "ignored",
            ]),
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].number, 12);
        assert_eq!(rows[0].stepping, "C0");
        assert_eq!(rows[1].number, 95);
    }

    #[test]
    fn empty_table_placeholder() {
        let rows = parse_fix_summary(
            Design::Amd19h,
            &lines(&["No errata have been fixed in later steppings.", ""]),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn amd_plain_numbers() {
        let rows = parse_fix_summary(Design::Amd19h, &lines(&["1361       B2"]));
        assert_eq!(rows[0].number, 1361);
        assert_eq!(rows[0].stepping, "B2");
    }

    #[test]
    fn garbage_rows_are_skipped() {
        let rows = parse_fix_summary(
            Design::Intel6,
            &lines(&["???", "SKL00x     C0", "SKL007     C0"]),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].number, 7);
    }
}
