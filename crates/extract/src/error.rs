//! Error type for the extraction pipeline.

use std::fmt;

/// Errors produced while extracting a document from its page stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExtractError {
    /// A required section heading was not found.
    MissingSection {
        /// The heading that was expected.
        heading: &'static str,
    },
    /// A revision-table row could not be parsed.
    BadRevisionRow {
        /// The offending line.
        line: String,
    },
    /// A revision-table row carries an unparsable date (distinguished from
    /// [`ExtractError::BadRevisionRow`] so date-format drift in source
    /// documents is diagnosable separately from structural damage).
    BadDate {
        /// The offending line.
        line: String,
    },
    /// An erratum header line could not be parsed.
    BadErratumHeader {
        /// The offending line.
        line: String,
    },
    /// The page stream is structurally malformed (e.g. a page too short to
    /// carry a header and footer).
    MalformedPage {
        /// Zero-based page index.
        page: usize,
    },
    /// The document contains no errata at all.
    EmptyDocument,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::MissingSection { heading } => {
                write!(f, "missing section heading {heading:?}")
            }
            ExtractError::BadRevisionRow { line } => {
                write!(f, "cannot parse revision row {line:?}")
            }
            ExtractError::BadDate { line } => {
                write!(f, "cannot parse revision date in {line:?}")
            }
            ExtractError::BadErratumHeader { line } => {
                write!(f, "cannot parse erratum header {line:?}")
            }
            ExtractError::MalformedPage { page } => write!(f, "malformed page {page}"),
            ExtractError::EmptyDocument => write!(f, "document lists no errata"),
        }
    }
}

impl std::error::Error for ExtractError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errors = [
            ExtractError::MissingSection { heading: "X" },
            ExtractError::BadRevisionRow { line: "??".into() },
            ExtractError::BadDate { line: "??".into() },
            ExtractError::BadErratumHeader { line: "??".into() },
            ExtractError::MalformedPage { page: 3 },
            ExtractError::EmptyDocument,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<ExtractError>();
    }
}
