//! Text-processing substrate for the RemembERR pipeline.
//!
//! The original study used Python NLP/PDF tooling (`pdftotext`, `camelot`,
//! regular expressions); this crate provides the equivalent building blocks
//! from scratch:
//!
//! * [`tokenize`] / [`word_tokens`] — offset-preserving tokenization of
//!   erratum prose, aware of numbers, hex constants and register names;
//! * [`normalize`] / [`normalized_key`] — stopword removal and light
//!   stemming for duplicate detection;
//! * [`levenshtein`], [`jaccard`], [`cosine`], [`title_similarity`] — the
//!   similarity metrics behind the Intel duplicate-detection cascade;
//! * [`Interner`] / [`Signature`] / [`candidate_pairs`] — interned
//!   per-title similarity signatures and the threshold-derived inverted
//!   token index that generates dedup candidate pairs without enumerating
//!   all pairs;
//! * [`Pattern`] / [`PatternSet`] — a token-phrase pattern engine replacing
//!   the paper's regex rules;
//! * [`RuleMatcher`] — an indexed multi-pattern engine that matches a whole
//!   pattern library against a [`PreparedText`] in one pass, pruning
//!   patterns whose anchor token is absent;
//! * [`AnalyzedCorpus`] / [`AnalyzedDoc`] — the single-pass analysis arena:
//!   tokenizes, normalizes and stems each document's title/text exactly
//!   once (in parallel, with deterministic interned ids) and hands out the
//!   views every downstream stage consumes;
//! * [`highlights`] — the syntax-highlighting assist used during manual
//!   classification;
//! * [`wrap`] / [`reflow`] — document line rendering and its inverse.
//!
//! # Examples
//!
//! ```
//! use rememberr_textkit::{Pattern, title_similarity};
//!
//! # fn main() -> Result<(), rememberr_textkit::PatternError> {
//! let p = Pattern::parse("machine check <2> exception")?;
//! assert!(p.matches("a Machine Check Architecture exception occurs"));
//!
//! let s = title_similarity(
//!     "X87 FDP Value May be Saved Incorrectly",
//!     "x87 FDP Values Might Be Saved Incorrectly",
//! );
//! assert!(s > 0.9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::unnecessary_to_owned)]
#![deny(clippy::redundant_clone)]

mod corpus;
mod highlight;
mod index;
mod intern;
mod matcher;
mod ngram;
mod normalize;
mod pattern;
mod similarity;
mod tokenize;
mod wrap;

pub use corpus::{AnalyzedCorpus, AnalyzedDoc, DocText};
pub use highlight::{
    highlights, highlights_prepared, highlights_prepared_filtered, render_ansi, render_markup,
    Highlight,
};
pub use index::{candidate_pairs, Candidates, Signature};
pub use intern::Interner;
pub use matcher::{MatchSet, RuleMatcher};
pub use ngram::{char_ngrams, shingle_similarity, token_ngrams};
pub use normalize::{is_stopword, normalize, normalized_key, stem, stem_owned};
pub use pattern::{Pattern, PatternError, PatternSet, PreparedText, Span};
pub use similarity::{
    cosine, jaccard, levenshtein, levenshtein_similarity, title_similarity, ThresholdCheck,
    TitleKey,
};
pub use tokenize::{tokenize, word_tokens, Token, TokenKind};
pub use wrap::{reflow, reflow_counted, wrap, ReflowStats};
