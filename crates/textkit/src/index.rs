//! Interned similarity signatures and sublinear candidate generation.
//!
//! The dedup cascade's inner loop compares titles pairwise. A [`Signature`]
//! precomputes everything a comparison needs over interned `u32` ids —
//! sorted distinct token ids (Jaccard), a token-count vector (cosine), a
//! cached bigram multiset (shingles) and the joined normalized form
//! (Levenshtein) — so scoring a candidate allocates nothing.
//!
//! [`candidate_pairs`] replaces all-pairs enumeration with a classic
//! set-similarity-join index: an inverted token index plus prefix and
//! length filters derived from the composite-similarity threshold. The
//! filters are *lossless*: every pair whose composite similarity can reach
//! the threshold is generated (see the module tests for the property-based
//! proof obligation); only pairs that provably cannot pass are pruned.

use std::collections::{BTreeSet, HashMap};

use crate::intern::Interner;
use crate::similarity::{
    composite, decide_threshold, levenshtein_similarity, ThresholdCheck, TitleKey,
};

/// Sentinel marking a single-token "bigram" (a 1-shingle, mirroring
/// [`crate::token_ngrams`]'s behavior on sequences shorter than `n`).
const UNIGRAM: u32 = u32::MAX;

/// A title's full similarity signature over interned token ids.
///
/// Built once per cluster via a shared [`Interner`]; every pairwise
/// operation is then a sorted-slice merge over `u32`s with zero
/// per-comparison allocation. [`Signature::similarity`] is bit-for-bit
/// identical to [`TitleKey::similarity`] on the same titles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Sorted distinct token ids (the Jaccard operand).
    token_ids: Vec<u32>,
    /// Sorted `(token id, occurrence count)` pairs (the cosine operand).
    token_counts: Vec<(u32, u32)>,
    /// Sorted adjacent-token id pairs, duplicates kept (the shingle
    /// operand); a single-token title stores `(id, UNIGRAM)`.
    bigrams: Vec<(u32, u32)>,
    /// Normalized tokens joined with single spaces (the Levenshtein
    /// operand).
    joined: String,
}

impl Signature {
    /// Normalizes `title` and interns its tokens into a signature.
    #[must_use]
    pub fn new(title: &str, interner: &mut Interner) -> Self {
        Self::from_title_key(&TitleKey::new(title), interner)
    }

    /// Builds the signature from an already-normalized [`TitleKey`],
    /// avoiding re-normalization when the key is cached elsewhere.
    #[must_use]
    pub fn from_title_key(key: &TitleKey, interner: &mut Interner) -> Self {
        let joined = key.joined().to_string();
        let in_order: Vec<u32> = joined
            .split(' ')
            .filter(|t| !t.is_empty())
            .map(|t| interner.intern(t))
            .collect();

        let mut token_ids = in_order.clone();
        token_ids.sort_unstable();
        token_ids.dedup();

        let mut token_counts: Vec<(u32, u32)> = Vec::with_capacity(token_ids.len());
        for &id in &in_order {
            match token_counts.binary_search_by_key(&id, |&(t, _)| t) {
                Ok(pos) => token_counts[pos].1 += 1,
                Err(pos) => token_counts.insert(pos, (id, 1)),
            }
        }

        let mut bigrams: Vec<(u32, u32)> = if in_order.len() == 1 {
            vec![(in_order[0], UNIGRAM)]
        } else {
            in_order.windows(2).map(|w| (w[0], w[1])).collect()
        };
        bigrams.sort_unstable();

        Self {
            token_ids,
            token_counts,
            bigrams,
            joined,
        }
    }

    /// Sorted distinct token ids.
    #[must_use]
    pub fn token_ids(&self) -> &[u32] {
        &self.token_ids
    }

    /// The joined normalized form (the Levenshtein operand).
    #[must_use]
    pub fn joined(&self) -> &str {
        &self.joined
    }

    /// Sorted adjacent-token id pairs, duplicates kept (the shingle
    /// operand); a single-token title stores one pair whose second id is a
    /// `u32::MAX` sentinel.
    #[must_use]
    pub fn bigrams(&self) -> &[(u32, u32)] {
        &self.bigrams
    }

    /// Token-set Jaccard similarity; identical to [`crate::jaccard`] over
    /// the normalized token sets of the original titles.
    #[must_use]
    pub fn jaccard(&self, other: &Self) -> f64 {
        let inter = sorted_intersection(&self.token_ids, &other.token_ids);
        let union = self.token_ids.len() + other.token_ids.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Term-frequency cosine similarity; equal to [`crate::cosine`] over
    /// the normalized token sequences up to floating-point summation order.
    #[must_use]
    pub fn cosine(&self, other: &Self) -> f64 {
        if self.token_counts.is_empty() && other.token_counts.is_empty() {
            return 1.0;
        }
        let (mut i, mut j, mut dot) = (0usize, 0usize, 0.0f64);
        while i < self.token_counts.len() && j < other.token_counts.len() {
            let (ta, va) = self.token_counts[i];
            let (tb, vb) = other.token_counts[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += f64::from(va) * f64::from(vb);
                    i += 1;
                    j += 1;
                }
            }
        }
        let norm = |counts: &[(u32, u32)]| {
            counts
                .iter()
                .map(|&(_, v)| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt()
        };
        let (na, nb) = (norm(&self.token_counts), norm(&other.token_counts));
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        dot / (na * nb)
    }

    /// Jaccard similarity of the distinct bigram shingle sets; identical to
    /// [`crate::shingle_similarity`] with `n = 2` on the original titles.
    #[must_use]
    pub fn bigram_jaccard(&self, other: &Self) -> f64 {
        let inter = sorted_distinct_intersection(&self.bigrams, &other.bigrams);
        let da = count_distinct(&self.bigrams);
        let db = count_distinct(&other.bigrams);
        if da == 0 && db == 0 {
            return 1.0;
        }
        let union = da + db - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Composite similarity; bit-for-bit identical to
    /// [`TitleKey::similarity`] (and [`crate::title_similarity`]) on the
    /// original titles.
    #[must_use]
    pub fn similarity(&self, other: &Self) -> f64 {
        let l = levenshtein_similarity(&self.joined, &other.joined);
        composite(self.jaccard(other), l)
    }

    /// Decides `self.similarity(other) >= threshold` exactly, preferring
    /// constant-time distance bounds and falling back to the banded
    /// Levenshtein dynamic program (whose cutoff is derived from the
    /// threshold) only when the bounds straddle the threshold.
    #[must_use]
    pub fn similarity_at_least(&self, other: &Self, threshold: f64) -> ThresholdCheck {
        decide_threshold(self.jaccard(other), &self.joined, &other.joined, threshold)
    }
}

/// Size of the intersection of two sorted deduplicated slices.
fn sorted_intersection(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Distinct elements of a sorted slice (duplicates allowed in the input).
fn count_distinct(a: &[(u32, u32)]) -> usize {
    let mut n = 0;
    let mut last = None;
    for &x in a {
        if Some(x) != last {
            n += 1;
            last = Some(x);
        }
    }
    n
}

/// Size of the distinct intersection of two sorted multiset slices.
fn sorted_distinct_intersection(a: &[(u32, u32)], b: &[(u32, u32)]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    let mut last = None;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if Some(a[i]) != last {
                    n += 1;
                    last = Some(a[i]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Candidate pairs produced by [`candidate_pairs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidates {
    /// Candidate index pairs `(i, j)` with `i < j`, sorted.
    pub pairs: Vec<(usize, usize)>,
    /// Pairs the filters excluded without scoring.
    pub pruned: usize,
}

/// The smallest token-set Jaccard a pair can have and still reach
/// `threshold` composite similarity (Levenshtein similarity is at most 1,
/// so `0.6 * j + 0.4 >= threshold` is necessary). The small epsilon absorbs
/// floating-point slop conservatively — it can only *admit* extra
/// candidates, never drop one.
fn jaccard_floor(threshold: f64) -> f64 {
    (threshold - 0.4) / 0.6 - 1e-9
}

/// Generates every index pair `(i, j)`, `i < j`, whose signatures could
/// score at or above `threshold` composite similarity, using an inverted
/// token index with prefix and length filters instead of enumerating all
/// `n * (n - 1) / 2` pairs.
///
/// # Losslessness
///
/// A pair passing the threshold needs Jaccard `j >= floor` (see
/// [`jaccard_floor`]), hence token overlap `o >= ceil(floor * |x|)` for
/// both records — so the first `|x| - o + 1` tokens of either record (in
/// *any* fixed token order; we use rarest-first to keep posting lists
/// short) must contain a shared token, by pigeonhole. Each record is
/// indexed under **all** its tokens and probes only that prefix, so every
/// potentially-passing pair is found. Records with empty token sets pair
/// only with each other (their Jaccard against any non-empty set is 0) and
/// are handled by a dedicated bucket. When the threshold makes the floor
/// non-positive, no token-based pruning is sound and all pairs are
/// returned.
#[must_use]
pub fn candidate_pairs(signatures: &[&Signature], threshold: f64) -> Candidates {
    let n = signatures.len();
    let total = n * n.saturating_sub(1) / 2;
    let floor = jaccard_floor(threshold);
    if floor <= 0.0 {
        let mut pairs = Vec::with_capacity(total);
        for i in 0..n {
            for j in i + 1..n {
                pairs.push((i, j));
            }
        }
        return Candidates { pairs, pruned: 0 };
    }

    // Rarest-first token order: document frequency within this collection,
    // ties broken by id — deterministic, and it keeps probed posting lists
    // short because shared *rare* tokens identify candidates fastest.
    let mut df: HashMap<u32, u32> = HashMap::new();
    for sig in signatures {
        for &t in sig.token_ids() {
            *df.entry(t).or_insert(0) += 1;
        }
    }
    let rarity = |t: u32| (df.get(&t).copied().unwrap_or(0), t);

    let mut postings: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut empties: Vec<usize> = Vec::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut probe: Vec<u32> = Vec::new();
    for (i, sig) in signatures.iter().enumerate() {
        let a = sig.token_ids().len();
        if a == 0 {
            for &e in &empties {
                pairs.push((e, i));
            }
            empties.push(i);
            continue;
        }
        // Minimum token overlap any passing partner must share with us.
        let o_min = ((floor * a as f64 - 1e-9).ceil() as usize).max(1);
        probe.clear();
        probe.extend_from_slice(sig.token_ids());
        probe.sort_unstable_by_key(|&t| rarity(t));
        probe.truncate(a - o_min + 1);

        let mut partners: BTreeSet<usize> = BTreeSet::new();
        for t in &probe {
            if let Some(list) = postings.get(t) {
                for &j in list {
                    let b = signatures[j].token_ids().len();
                    let (small, large) = (a.min(b), a.max(b));
                    // Length filter: overlap <= small, so small >= floor * large.
                    if small as f64 + 1e-9 >= floor * large as f64 {
                        partners.insert(j);
                    }
                }
            }
        }
        for j in partners {
            pairs.push((j, i));
        }
        for &t in sig.token_ids() {
            postings.entry(t).or_default().push(i);
        }
    }
    pairs.sort_unstable();
    Candidates {
        pruned: total - pairs.len(),
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cosine, jaccard, normalize, shingle_similarity, title_similarity};
    use proptest::prelude::*;

    fn sigs(titles: &[&str]) -> (Vec<Signature>, Interner) {
        let mut interner = Interner::new();
        let sigs = titles
            .iter()
            .map(|t| Signature::new(t, &mut interner))
            .collect();
        (sigs, interner)
    }

    #[test]
    fn signature_similarity_is_bit_identical_to_title_key() {
        let titles = [
            "X87 FDP Value May be Saved Incorrectly",
            "x87 FDP Values Might Be Saved Incorrectly",
            "Processor May Hang When Switching Between Caches",
            "",
            "the of and",
        ];
        let (s, _) = sigs(&titles);
        for (i, a) in titles.iter().enumerate() {
            for (j, b) in titles.iter().enumerate() {
                let direct = title_similarity(a, b);
                let via_sig = s[i].similarity(&s[j]);
                assert!(
                    direct.to_bits() == via_sig.to_bits(),
                    "{a:?} vs {b:?}: {direct} != {via_sig}"
                );
            }
        }
    }

    #[test]
    fn signature_metrics_match_string_implementations() {
        let a = "A Warm Reset May Cause the Processor to Hang";
        let b = "A Warm Reset Might Cause a Hang in the Processor Cache";
        let (s, _) = sigs(&[a, b]);
        let (na, nb) = (normalize(a), normalize(b));
        let j_direct = jaccard(na.iter(), nb.iter());
        assert!((s[0].jaccard(&s[1]) - j_direct).abs() == 0.0);
        assert!((s[0].cosine(&s[1]) - cosine(&na, &nb)).abs() < 1e-12);
        assert!((s[0].bigram_jaccard(&s[1]) - shingle_similarity(a, b, 2)).abs() < 1e-12);
    }

    #[test]
    fn candidate_pairs_low_threshold_returns_all_pairs() {
        let (s, _) = sigs(&["alpha beta", "gamma delta", "epsilon zeta"]);
        let refs: Vec<&Signature> = s.iter().collect();
        let c = candidate_pairs(&refs, 0.3);
        assert_eq!(c.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(c.pruned, 0);
    }

    #[test]
    fn candidate_pairs_prunes_disjoint_titles() {
        let (s, _) = sigs(&[
            "USB Transfers May Drop Packets",
            "PCIe Links May Retrain Endlessly",
            "USB Transfers Might Drop Packets Sometimes",
        ]);
        let refs: Vec<&Signature> = s.iter().collect();
        let c = candidate_pairs(&refs, 0.5);
        assert!(c.pairs.contains(&(0, 2)), "{:?}", c.pairs);
        assert!(!c.pairs.contains(&(0, 1)), "{:?}", c.pairs);
        assert!(c.pruned >= 2, "{c:?}");
    }

    #[test]
    fn empty_token_titles_pair_with_each_other_only() {
        let (s, _) = sigs(&["the of", "an and", "warm reset hang"]);
        let refs: Vec<&Signature> = s.iter().collect();
        let c = candidate_pairs(&refs, 0.5);
        assert!(c.pairs.contains(&(0, 1)), "{:?}", c.pairs);
        assert!(!c.pairs.contains(&(0, 2)), "{:?}", c.pairs);
        assert!(!c.pairs.contains(&(1, 2)), "{:?}", c.pairs);
    }

    /// Titles drawn from a small shared vocabulary so random pairs overlap
    /// often enough to exercise every filter.
    fn title_strategy() -> impl Strategy<Value = String> {
        const WORDS: [&str; 16] = [
            "warm",
            "reset",
            "processor",
            "hang",
            "cache",
            "x87",
            "fdp",
            "value",
            "save",
            "incorrectly",
            "machine",
            "check",
            "the",
            "may",
            "usb",
            "pcie",
        ];
        prop::collection::vec(0usize..WORDS.len(), 0..7).prop_map(|idxs| {
            idxs.into_iter()
                .map(|i| WORDS[i])
                .collect::<Vec<_>>()
                .join(" ")
        })
    }

    proptest! {
        /// The losslessness obligation: every pair whose composite
        /// similarity clears the threshold is generated as a candidate.
        #[test]
        fn candidates_are_a_superset_of_passing_pairs(
            titles in prop::collection::vec(title_strategy(), 0..14),
            threshold in 0.30f64..0.95,
        ) {
            let refs: Vec<&str> = titles.iter().map(String::as_str).collect();
            let (s, _) = sigs(&refs);
            let sig_refs: Vec<&Signature> = s.iter().collect();
            let got: std::collections::BTreeSet<(usize, usize)> =
                candidate_pairs(&sig_refs, threshold).pairs.into_iter().collect();
            for i in 0..s.len() {
                for j in i + 1..s.len() {
                    if s[i].similarity(&s[j]) >= threshold {
                        prop_assert!(
                            got.contains(&(i, j)),
                            "pair {:?}/{:?} passes {} but was pruned",
                            titles[i], titles[j], threshold
                        );
                    }
                }
            }
        }

        /// The fast-path decision agrees with full scoring on signatures.
        #[test]
        fn signature_threshold_check_matches_full_scoring(
            a in title_strategy(),
            b in title_strategy(),
            threshold in 0.0f64..1.0,
        ) {
            let (s, _) = sigs(&[&a, &b]);
            let check = s[0].similarity_at_least(&s[1], threshold);
            prop_assert_eq!(check.passes, s[0].similarity(&s[1]) >= threshold);
        }
    }
}
