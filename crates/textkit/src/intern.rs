//! Deterministic string interning for similarity signatures.
//!
//! The dedup cascade compares normalized title tokens millions of times at
//! scale; interning maps each distinct token string to a dense `u32` once,
//! so every later comparison works on integer ids (sorted-slice merges)
//! instead of re-hashing or re-comparing string bytes.
//!
//! Ids are assigned in first-intern order, so an interner fed the same
//! token stream always produces the same ids — a precondition for the
//! byte-identical pipeline outputs the determinism suite asserts.

use std::collections::HashMap;

/// A deterministic string interner: each distinct string gets a dense
/// `u32` id in first-appearance order.
///
/// # Examples
///
/// ```
/// use rememberr_textkit::Interner;
///
/// let mut interner = Interner::new();
/// let cache = interner.intern("cache");
/// let hang = interner.intern("hang");
/// assert_eq!(interner.intern("cache"), cache);
/// assert_ne!(cache, hang);
/// assert_eq!(interner.resolve(hang), Some("hang"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    ids: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `text`, interning it if unseen.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct strings are interned.
    pub fn intern(&mut self, text: &str) -> u32 {
        if let Some(&id) = self.ids.get(text) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.ids.insert(text.to_string(), id);
        self.strings.push(text.to_string());
        id
    }

    /// The id of an already-interned string, if any.
    #[must_use]
    pub fn get(&self, text: &str) -> Option<u32> {
        self.ids.get(text).copied()
    }

    /// The string behind an id, if the id was ever issued.
    #[must_use]
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of distinct strings interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_eq!((a, b), (0, 1));
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("beta"), Some(b));
        assert_eq!(i.get("gamma"), None);
        assert_eq!(i.resolve(a), Some("alpha"));
        assert_eq!(i.resolve(99), None);
    }

    #[test]
    fn same_stream_same_ids() {
        let stream = ["warm", "reset", "hang", "reset", "cache"];
        let mut x = Interner::new();
        let mut y = Interner::new();
        let xs: Vec<u32> = stream.iter().map(|t| x.intern(t)).collect();
        let ys: Vec<u32> = stream.iter().map(|t| y.intern(t)).collect();
        assert_eq!(xs, ys);
    }
}
