//! Tokenization of erratum prose.
//!
//! Errata mix English prose with technical identifiers (`MCx_STATUS`,
//! `0xC0010063`, `FSAVE`), so the tokenizer distinguishes words, decimal and
//! hexadecimal numbers, and register-style identifiers, and keeps byte
//! offsets so higher layers (the highlighter, the extractor) can map tokens
//! back into the source text.

use std::fmt;

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TokenKind {
    /// An alphabetic word (`processor`, `FSAVE`).
    Word,
    /// A decimal number (`32`, `1361`).
    Number,
    /// A hexadecimal number (`0x1A`, `C0010063h`).
    HexNumber,
    /// A register-style identifier containing an underscore (`MCx_STATUS`).
    Identifier,
    /// A single punctuation character.
    Punct,
}

/// One token: its class, text and location in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token text, as written (not normalized).
    pub text: &'a str,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
}

impl Token<'_> {
    /// Byte offset one past the token's last byte.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }

    /// The token text lowercased (allocation-free for already-lower text is
    /// not attempted; classification always works on owned lowercase forms).
    pub fn lower(&self) -> String {
        self.text.to_ascii_lowercase()
    }
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

/// Classifies a completed word-like chunk.
fn classify(chunk: &str) -> TokenKind {
    let bytes = chunk.as_bytes();
    if bytes.iter().all(|b| b.is_ascii_digit()) {
        return TokenKind::Number;
    }
    // Case-insensitive hex checks on raw bytes; this runs once per word
    // token of every document, so it must not allocate.
    if bytes.len() > 2
        && bytes[0] == b'0'
        && bytes[1] | 0x20 == b'x'
        && bytes[2..].iter().all(u8::is_ascii_hexdigit)
    {
        return TokenKind::HexNumber;
    }
    if bytes.len() > 1 && bytes[bytes.len() - 1] | 0x20 == b'h' {
        let hex = &bytes[..bytes.len() - 1];
        if hex.iter().all(u8::is_ascii_hexdigit) && hex.iter().any(u8::is_ascii_digit) {
            return TokenKind::HexNumber;
        }
    }
    if chunk.contains('_') {
        return TokenKind::Identifier;
    }
    TokenKind::Word
}

/// Splits text into [`Token`]s.
///
/// Word-like chunks (alphanumerics plus `_`; internal `-` is kept so
/// `virtual-8086` stays one token) become [`TokenKind::Word`],
/// [`TokenKind::Number`], [`TokenKind::HexNumber`] or
/// [`TokenKind::Identifier`]; every other non-whitespace byte becomes a
/// [`TokenKind::Punct`] token. Whitespace produces nothing.
///
/// # Examples
///
/// ```
/// use rememberr_textkit::{tokenize, TokenKind};
///
/// let tokens = tokenize("the MCx_STATUS register (MSR 0x401)");
/// assert_eq!(tokens.len(), 7);
/// assert_eq!(tokens[1].kind, TokenKind::Identifier);
/// assert_eq!(tokens[5].kind, TokenKind::HexNumber);
/// ```
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    // Pre-size for the common shape (~6 bytes per token incl. whitespace)
    // so per-document tokenization does one allocation, not a growth
    // series.
    let mut tokens = Vec::with_capacity(text.len() / 6 + 4);
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if is_word_byte(b) && b != b'-' {
            let start = i;
            while i < bytes.len() && is_word_byte(bytes[i]) {
                i += 1;
            }
            // Trailing hyphens belong to punctuation (e.g. line-break "proc-").
            let mut end = i;
            while end > start && bytes[end - 1] == b'-' {
                end -= 1;
            }
            let chunk = &text[start..end];
            if !chunk.is_empty() {
                tokens.push(Token {
                    kind: classify(chunk),
                    text: chunk,
                    start,
                });
            }
            for (j, _) in text[end..i].char_indices() {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: &text[end + j..end + j + 1],
                    start: end + j,
                });
            }
        } else {
            // One punctuation char (may be multi-byte UTF-8).
            let ch_len = text[i..].chars().next().map_or(1, |c| c.len_utf8());
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: &text[i..i + ch_len],
                start: i,
            });
            i += ch_len;
        }
    }
    tokens
}

/// Returns only the word-like tokens (words, numbers, identifiers),
/// lowercased — the form similarity metrics and patterns consume.
pub fn word_tokens(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Punct)
        .map(|t| t.lower())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sentence() {
        let tokens = tokenize("The processor may hang.");
        let texts: Vec<&str> = tokens.iter().map(|t| t.text).collect();
        assert_eq!(texts, ["The", "processor", "may", "hang", "."]);
        assert_eq!(tokens[4].kind, TokenKind::Punct);
    }

    #[test]
    fn kinds_are_detected() {
        let tokens = tokenize("32 KB at 0x401 or C0010063h in MCx_STATUS");
        let kinds: Vec<TokenKind> = tokens.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            [
                TokenKind::Number,
                TokenKind::Word,
                TokenKind::Word,
                TokenKind::HexNumber,
                TokenKind::Word,
                TokenKind::HexNumber,
                TokenKind::Word,
                TokenKind::Identifier,
            ]
        );
    }

    #[test]
    fn hyphenated_words_stay_joined() {
        let tokens = tokenize("virtual-8086 mode");
        assert_eq!(tokens[0].text, "virtual-8086");
        assert_eq!(tokens[0].kind, TokenKind::Word);
    }

    #[test]
    fn trailing_hyphen_is_punct() {
        // A hyphen at a line break must not merge into the word.
        let tokens = tokenize("proc- essor");
        let texts: Vec<&str> = tokens.iter().map(|t| t.text).collect();
        assert_eq!(texts, ["proc", "-", "essor"]);
    }

    #[test]
    fn offsets_map_back_into_source() {
        let src = "a (b) c";
        for t in tokenize(src) {
            assert_eq!(&src[t.start..t.end()], t.text);
        }
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn non_ascii_punct_is_not_split_mid_char() {
        let src = "a \u{2014} b"; // em dash
        let tokens = tokenize(src);
        assert_eq!(tokens.len(), 3);
        assert_eq!(tokens[1].text, "\u{2014}");
    }

    #[test]
    fn word_tokens_lowercases_and_drops_punct() {
        assert_eq!(
            word_tokens("The FSAVE, or FNSAVE."),
            vec!["the", "fsave", "or", "fnsave"]
        );
    }

    #[test]
    fn plain_hex_without_marker_is_word_or_number() {
        // "face" is hex-ish but has no 0x/h marker: stays a word.
        assert_eq!(tokenize("face")[0].kind, TokenKind::Word);
        // "deadh" has the marker and a digit-free body: still a word.
        assert_eq!(tokenize("deadh")[0].kind, TokenKind::Word);
        // "0ah" qualifies.
        assert_eq!(tokenize("0ah")[0].kind, TokenKind::HexNumber);
    }
}
