//! A phrase-pattern engine for classification rules.
//!
//! The paper's software-assisted classification uses regular expressions to
//! pre-filter category decisions and to highlight relevant text. Erratum
//! prose is word-oriented, so instead of a byte-level regex engine we match
//! *token phrases*: a pattern is a sequence of token matchers with bounded
//! gaps, compiled from a compact DSL.
//!
//! # Pattern DSL
//!
//! Elements are separated by spaces:
//!
//! | element | matches |
//! |---|---|
//! | `cache` | the word `cache` (case-insensitive) |
//! | `speculat*` | any word starting with `speculat` |
//! | `pci\|pcie` | any of the alternatives (each may end in `*`) |
//! | `<3>` | a gap of 0 to 3 word tokens |
//! | `#` | a decimal or hexadecimal number token |
//! | `?` | any single word token |
//!
//! # Examples
//!
//! ```
//! use rememberr_textkit::Pattern;
//!
//! # fn main() -> Result<(), rememberr_textkit::PatternError> {
//! let p = Pattern::parse("power <2> state|states")?;
//! assert!(p.matches("a transition between core power management states"));
//! assert!(!p.matches("the power supply is stable"));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::tokenize::{tokenize, Token, TokenKind};

/// Error produced when a pattern string cannot be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    source: String,
    reason: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern {:?}: {}", self.source, self.reason)
    }
}

impl std::error::Error for PatternError {}

/// A single-word alternative: literal or prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WordAlt {
    Literal(String),
    Prefix(String),
}

impl WordAlt {
    fn matches(&self, word: &str) -> bool {
        match self {
            WordAlt::Literal(lit) => lit == word,
            WordAlt::Prefix(prefix) => word.starts_with(prefix.as_str()),
        }
    }
}

/// One compiled pattern element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Elem {
    Word(Vec<WordAlt>),
    Gap { max: usize },
    Number,
    AnyWord,
}

/// A compiled phrase pattern. See the crate docs for the DSL summary:
/// literals, `prefix*`, `a|b` alternation, `<N>` bounded gaps, `#` numbers
/// and `?` single-token wildcards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    elems: Vec<Elem>,
    source: String,
}

/// A byte range of matched source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

impl Span {
    /// True if this span overlaps another.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Tokenized text prepared for repeated pattern matching.
///
/// Classification applies hundreds of patterns to each erratum; preparing
/// the text once amortizes tokenization and lowercasing. The prepared text
/// *owns* its source, so callers can slice matched [`Span`]s back out of it
/// ([`PreparedText::snippet`]) without keeping a second copy of the string
/// alive, and it carries a sorted distinct-word index that multi-pattern
/// matchers ([`crate::RuleMatcher`]) use as a token presence set.
#[derive(Debug, Clone)]
pub struct PreparedText {
    /// The source text the spans index into.
    source: String,
    /// All lowercased word tokens (punctuation removed), concatenated
    /// back to back in one buffer. One allocation instead of one per
    /// token, and token iteration walks contiguous memory — pattern
    /// matching over a large analyzed corpus is cache-bound, not
    /// pointer-chasing.
    words_buf: String,
    /// End byte offset of each word in `words_buf` (a word's start is the
    /// previous word's end).
    word_ends: Vec<u32>,
    /// Token kinds, parallel to the words.
    kinds: Vec<TokenKind>,
    /// Source byte spans, parallel to the words.
    spans: Vec<Span>,
    /// Indices into `words`, sorted by word and deduplicated by value —
    /// one representative per distinct word. Built lazily on first use:
    /// only pattern matching reads it, and in the single-pass pipeline
    /// most prepared documents (non-representative duplicates) are never
    /// pattern-matched, so the sort would be pure waste.
    distinct: std::sync::OnceLock<Vec<u32>>,
}

impl PreparedText {
    /// Tokenizes and lowercases `text`.
    pub fn new(text: &str) -> Self {
        Self::from_string(text.to_string())
    }

    /// Tokenizes and lowercases an owned string, taking ownership of the
    /// source so no second allocation is needed to slice snippets later.
    pub fn from_string(source: String) -> Self {
        rememberr_obs::count("textkit.tokenize_calls", 1);
        let mut tokens: Vec<Token> = tokenize(&source);
        tokens.retain(|t| t.kind != TokenKind::Punct);
        let mut words_buf = String::with_capacity(source.len());
        let mut word_ends = Vec::with_capacity(tokens.len());
        for t in &tokens {
            words_buf.push_str(t.text);
            word_ends.push(words_buf.len() as u32);
        }
        words_buf.make_ascii_lowercase();
        let kinds = tokens.iter().map(|t| t.kind).collect();
        let spans = tokens
            .iter()
            .map(|t| Span {
                start: t.start,
                end: t.end(),
            })
            .collect();
        drop(tokens);
        Self {
            source,
            words_buf,
            word_ends,
            kinds,
            spans,
            distinct: std::sync::OnceLock::new(),
        }
    }

    /// An empty prepared text: no tokens, empty source.
    ///
    /// Unlike [`PreparedText::new`] this does not tick the tokenize
    /// counter — nothing is tokenized. It is the placeholder an analyzed
    /// corpus swaps in when it releases a document's token buffer.
    pub fn empty() -> Self {
        Self {
            source: String::new(),
            words_buf: String::new(),
            word_ends: Vec::new(),
            kinds: Vec::new(),
            spans: Vec::new(),
            distinct: std::sync::OnceLock::new(),
        }
    }

    /// The `i`-th lowercased word token.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn word(&self, i: usize) -> &str {
        let start = if i == 0 {
            0
        } else {
            self.word_ends[i - 1] as usize
        };
        &self.words_buf[start..self.word_ends[i] as usize]
    }

    /// The lazily-built distinct-word index (see the field docs).
    fn distinct(&self) -> &[u32] {
        self.distinct.get_or_init(|| {
            let mut distinct: Vec<u32> = (0..self.len() as u32).collect();
            distinct.sort_unstable_by(|&a, &b| self.word(a as usize).cmp(self.word(b as usize)));
            distinct.dedup_by(|&mut a, &mut b| self.word(a as usize) == self.word(b as usize));
            distinct
        })
    }

    /// Number of word tokens.
    pub fn len(&self) -> usize {
        self.word_ends.len()
    }

    /// True if the text has no word tokens.
    pub fn is_empty(&self) -> bool {
        self.word_ends.is_empty()
    }

    /// The lowercased word tokens, in text order.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(|i| self.word(i))
    }

    /// The source text the prepared tokens index into.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Slices a matched span back out of the owned source text.
    ///
    /// # Panics
    ///
    /// Panics if the span does not lie on byte boundaries of this text —
    /// spans returned by [`Pattern::find_in`] / [`Pattern::first_match_in`]
    /// on the same prepared text always do.
    pub fn snippet(&self, span: Span) -> &str {
        &self.source[span.start..span.end]
    }

    /// Source byte spans of the word tokens, parallel to [`Self::words`].
    ///
    /// Span ends are strictly increasing, so a byte-offset boundary (such
    /// as a title/description split inside a concatenated document) maps to
    /// a token prefix via `partition_point`.
    pub fn token_spans(&self) -> &[Span] {
        &self.spans
    }

    /// The distinct lowercased words, each yielded once, in sorted order.
    pub fn distinct_words(&self) -> impl Iterator<Item = &str> {
        self.distinct().iter().map(|&i| self.word(i as usize))
    }

    /// True if any word starts with `prefix` (binary search over the
    /// distinct-word index: words sharing a prefix sort contiguously).
    pub fn has_word_with_prefix(&self, prefix: &str) -> bool {
        let distinct = self.distinct();
        let at = distinct.partition_point(|&i| self.word(i as usize) < prefix);
        distinct
            .get(at)
            .is_some_and(|&i| self.word(i as usize).starts_with(prefix))
    }
}

impl Pattern {
    /// Compiles a pattern from the DSL.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] on empty patterns, malformed gaps, or empty
    /// alternatives.
    pub fn parse(source: &str) -> Result<Self, PatternError> {
        let err = |reason: &str| PatternError {
            source: source.to_string(),
            reason: reason.to_string(),
        };
        let mut elems = Vec::new();
        for raw in source.split_whitespace() {
            if raw == "#" {
                elems.push(Elem::Number);
            } else if raw == "?" {
                elems.push(Elem::AnyWord);
            } else if let Some(gap) = raw.strip_prefix('<').and_then(|r| r.strip_suffix('>')) {
                let max: usize = gap.parse().map_err(|_| err("gap bound must be a number"))?;
                elems.push(Elem::Gap { max });
            } else {
                let mut alts = Vec::new();
                for alt in raw.split('|') {
                    if alt.is_empty() {
                        return Err(err("empty alternative"));
                    }
                    let lower = alt.to_ascii_lowercase();
                    if let Some(prefix) = lower.strip_suffix('*') {
                        if prefix.is_empty() {
                            return Err(err("empty prefix"));
                        }
                        alts.push(WordAlt::Prefix(prefix.to_string()));
                    } else {
                        alts.push(WordAlt::Literal(lower));
                    }
                }
                elems.push(Elem::Word(alts));
            }
        }
        if elems.is_empty() {
            return Err(err("pattern has no elements"));
        }
        if elems.iter().all(|e| matches!(e, Elem::Gap { .. })) {
            return Err(err("pattern must contain a non-gap element"));
        }
        Ok(Self {
            elems,
            source: source.to_string(),
        })
    }

    /// The DSL source the pattern was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Matches `self.elems[ei..]` at word position `wi`; returns the end
    /// word index of a successful match (shortest-gap first).
    fn match_at(&self, text: &PreparedText, ei: usize, wi: usize) -> Option<usize> {
        let Some(elem) = self.elems.get(ei) else {
            return Some(wi);
        };
        match elem {
            Elem::Word(alts) => {
                if wi >= text.len() {
                    return None;
                }
                let word = text.word(wi);
                if alts.iter().any(|a| a.matches(word)) {
                    self.match_at(text, ei + 1, wi + 1)
                } else {
                    None
                }
            }
            Elem::Number => {
                let kind = *text.kinds.get(wi)?;
                if matches!(kind, TokenKind::Number | TokenKind::HexNumber) {
                    self.match_at(text, ei + 1, wi + 1)
                } else {
                    None
                }
            }
            Elem::AnyWord => {
                if wi < text.len() {
                    self.match_at(text, ei + 1, wi + 1)
                } else {
                    None
                }
            }
            Elem::Gap { max } => (0..=*max).find_map(|skip| self.match_at(text, ei + 1, wi + skip)),
        }
    }

    /// The compiled elements (for same-crate multi-pattern indexing).
    pub(crate) fn elems(&self) -> &[Elem] {
        &self.elems
    }

    /// Finds the first (leftmost, shortest-gap) match and returns its
    /// source byte span.
    ///
    /// Equivalent to `find_in(text).first().copied()` without materializing
    /// the remaining matches.
    pub fn first_match_in(&self, text: &PreparedText) -> Option<Span> {
        (0..text.len()).find_map(|wi| {
            self.match_at(text, 0, wi).map(|end| Span {
                start: text.spans[wi].start,
                end: text.spans[end - 1].end,
            })
        })
    }

    /// Finds all non-overlapping matches (leftmost, shortest-gap) and
    /// returns their source byte spans.
    pub fn find_in(&self, text: &PreparedText) -> Vec<Span> {
        let mut out = Vec::new();
        let mut wi = 0;
        while wi < text.len() {
            if let Some(end) = self.match_at(text, 0, wi) {
                // A match may end at `wi` if it is all-gaps after `wi`; the
                // parser guarantees a non-gap element, so end > wi.
                let span = Span {
                    start: text.spans[wi].start,
                    end: text.spans[end - 1].end,
                };
                out.push(span);
                wi = end;
            } else {
                wi += 1;
            }
        }
        out
    }

    /// True if the pattern matches anywhere in prepared text.
    pub fn is_match(&self, text: &PreparedText) -> bool {
        (0..text.len()).any(|wi| self.match_at(text, 0, wi).is_some())
    }

    /// Convenience: tokenizes `text` and tests for a match.
    pub fn matches(&self, text: &str) -> bool {
        self.is_match(&PreparedText::new(text))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl std::str::FromStr for Pattern {
    type Err = PatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pattern::parse(s)
    }
}

/// A labelled collection of patterns applied together.
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    patterns: Vec<(String, Pattern)>,
}

impl PatternSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern under a label; multiple patterns may share a label.
    pub fn add(&mut self, label: &str, pattern: Pattern) -> &mut Self {
        self.patterns.push((label.to_string(), pattern));
        self
    }

    /// Compiles and adds a pattern from DSL source.
    ///
    /// # Errors
    ///
    /// Propagates [`PatternError`] from compilation.
    pub fn add_source(&mut self, label: &str, source: &str) -> Result<&mut Self, PatternError> {
        let p = Pattern::parse(source)?;
        Ok(self.add(label, p))
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the set has no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Labels whose patterns match the text, deduplicated, in insertion order.
    pub fn matching_labels(&self, text: &PreparedText) -> Vec<&str> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for (label, pattern) in &self.patterns {
            if !seen.contains(label.as_str()) && pattern.is_match(text) {
                seen.insert(label.as_str());
                out.push(label.as_str());
            }
        }
        out
    }

    /// All `(label, span)` matches in the text.
    pub fn find_spans(&self, text: &PreparedText) -> Vec<(&str, Span)> {
        self.find_spans_filtered(text, |_| true)
    }

    /// [`PatternSet::find_spans`] restricted to the patterns whose index
    /// passes `keep`. A pattern that matches nowhere contributes no spans,
    /// so any predicate that keeps every *matching* pattern (for example a
    /// lossless [`crate::RuleMatcher`] pre-pass) yields exactly the
    /// unfiltered result while skipping the scans that would find nothing.
    pub fn find_spans_filtered(
        &self,
        text: &PreparedText,
        keep: impl Fn(usize) -> bool,
    ) -> Vec<(&str, Span)> {
        let mut out = Vec::new();
        for (i, (label, pattern)) in self.patterns.iter().enumerate() {
            if !keep(i) {
                continue;
            }
            for span in pattern.find_in(text) {
                out.push((label.as_str(), span));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(s: &str) -> PreparedText {
        PreparedText::new(s)
    }

    #[test]
    fn literal_phrase() {
        let p = Pattern::parse("machine check").unwrap();
        assert!(p.matches("a Machine Check exception is signaled"));
        assert!(!p.matches("check the machine"));
    }

    #[test]
    fn prefix_match() {
        let p = Pattern::parse("speculat*").unwrap();
        assert!(p.matches("a speculative load"));
        assert!(p.matches("due to speculation"));
        assert!(!p.matches("spec compliance"));
    }

    #[test]
    fn alternation() {
        let p = Pattern::parse("pci|pcie link").unwrap();
        assert!(p.matches("the PCIe link may degrade"));
        assert!(p.matches("the PCI link may degrade"));
        assert!(!p.matches("the USB link may degrade"));
    }

    #[test]
    fn bounded_gap() {
        let p = Pattern::parse("power <2> state").unwrap();
        assert!(p.matches("power state"));
        assert!(p.matches("power management state"));
        assert!(p.matches("power gating sleep state"));
        assert!(!p.matches("power a b c state"));
    }

    #[test]
    fn number_and_any_elements() {
        let p = Pattern::parse("exceeding # kb").unwrap();
        assert!(p.matches("a code footprint exceeding 32 KB"));
        assert!(!p.matches("exceeding many KB"));
        let q = Pattern::parse("bank ?").unwrap();
        assert!(q.matches("bank five"));
        assert!(!q.matches("bank"));
    }

    #[test]
    fn find_in_returns_byte_spans() {
        let text = "reset, then another reset occurs";
        let p = Pattern::parse("reset").unwrap();
        let spans = p.find_in(&prep(text));
        assert_eq!(spans.len(), 2);
        assert_eq!(&text[spans[0].start..spans[0].end], "reset");
        assert_eq!(&text[spans[1].start..spans[1].end], "reset");
    }

    #[test]
    fn spans_cover_whole_phrase() {
        let text = "during a power management state transition";
        let p = Pattern::parse("power <2> state").unwrap();
        let spans = p.find_in(&prep(text));
        assert_eq!(spans.len(), 1);
        assert_eq!(
            &text[spans[0].start..spans[0].end],
            "power management state"
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Pattern::parse("").is_err());
        assert!(Pattern::parse("<3>").is_err());
        assert!(Pattern::parse("a||b").is_err());
        assert!(Pattern::parse("<x>").is_err());
        assert!(Pattern::parse("*").is_err());
        let e = Pattern::parse("").unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn pattern_set_labels_and_spans() {
        let mut set = PatternSet::new();
        set.add_source("pow", "power <2> state|states").unwrap();
        set.add_source("pow", "throttl*").unwrap();
        set.add_source("rst", "warm|cold reset").unwrap();
        let text = prep("after a warm reset during power state transitions with throttling");
        assert_eq!(set.matching_labels(&text), vec!["pow", "rst"]);
        let spans = set.find_spans(&text);
        assert_eq!(spans.len(), 3);
    }

    #[test]
    fn match_at_start_and_end_of_text() {
        let p = Pattern::parse("hang").unwrap();
        assert!(p.matches("hang"));
        assert!(p.matches("the processor may hang"));
        assert!(p.matches("hang occurs"));
    }

    #[test]
    fn gap_prefers_shortest() {
        let text = "power x state y state";
        let p = Pattern::parse("power <3> state").unwrap();
        let spans = p.find_in(&prep(text));
        assert_eq!(spans.len(), 1);
        assert_eq!(&text[spans[0].start..spans[0].end], "power x state");
    }

    #[test]
    fn prepared_text_owns_source_and_slices_snippets() {
        let text = PreparedText::from_string("a Warm Reset occurs".to_string());
        assert_eq!(text.source(), "a Warm Reset occurs");
        let p = Pattern::parse("warm reset").unwrap();
        let span = p.first_match_in(&text).unwrap();
        assert_eq!(text.snippet(span), "Warm Reset");
        assert_eq!(p.find_in(&text).first().copied(), Some(span));
    }

    #[test]
    fn distinct_words_are_sorted_and_unique() {
        let text = prep("reset b reset a b a a");
        let distinct: Vec<&str> = text.distinct_words().collect();
        assert_eq!(distinct, ["a", "b", "reset"]);
    }

    #[test]
    fn word_prefix_probe() {
        let text = prep("a speculative load occurs");
        assert!(text.has_word_with_prefix("speculat"));
        assert!(text.has_word_with_prefix("a"));
        assert!(text.has_word_with_prefix("occurs"));
        assert!(!text.has_word_with_prefix("speculative-"));
        assert!(!text.has_word_with_prefix("z"));
        assert!(!prep("").has_word_with_prefix("a"));
    }

    #[test]
    fn first_match_is_none_without_a_match() {
        let p = Pattern::parse("usb").unwrap();
        assert_eq!(p.first_match_in(&prep("no bus here")), None);
    }

    #[test]
    fn span_utilities() {
        let a = Span { start: 0, end: 5 };
        let b = Span { start: 4, end: 8 };
        let c = Span { start: 5, end: 6 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }
}
