//! Single-pass corpus analysis: a shared tokenization arena.
//!
//! Every pipeline stage needs lexical features of the same errata — dedup
//! normalizes titles into [`TitleKey`]s and [`Signature`]s, classification
//! tokenizes the full text into a [`PreparedText`], and the highlighting
//! assist tokenizes it yet again. [`AnalyzedCorpus`] performs that work
//! exactly once per document: the full text is tokenized in parallel
//! ([`rememberr_par::par_map`], input-ordered), the normalized title is
//! derived from the already-tokenized prefix (no second tokenizer pass),
//! and title signatures are interned sequentially in document order through
//! one shared [`Interner`] so the ids are identical at every worker count.
//!
//! Consumers receive borrowed views ([`AnalyzedDoc`]) and never re-derive:
//! the dedup cascade reads [`AnalyzedCorpus::title_key`] /
//! [`AnalyzedCorpus::signature`], classification and highlighting read
//! [`AnalyzedCorpus::text`]. The `textkit.tokenize_calls` obs counter
//! audits the contract — a one-pass pipeline run tokenizes each document
//! exactly once.

use crate::index::Signature;
use crate::intern::Interner;
use crate::normalize::{is_stopword, stem_owned};
use crate::pattern::PreparedText;
use crate::similarity::TitleKey;

/// The raw text of one document handed to [`AnalyzedCorpus::analyze`]: the
/// concatenated full text plus the byte length of the leading title.
///
/// The title must be the prefix of `text` and be followed by a
/// non-word-token byte (the pipeline joins title and body with `'\n'`), so
/// tokenizing the concatenation and splitting at `title_len` yields the
/// same tokens as tokenizing the title alone.
#[derive(Debug, Clone)]
pub struct DocText {
    /// The document's full concatenated text.
    pub text: String,
    /// Byte length of the title prefix of `text`.
    pub title_len: usize,
    /// Whether to derive title-similarity features ([`TitleKey`] +
    /// [`Signature`]) for this document. Dedup only compares titles within
    /// one vendor's corpus (Intel), so other documents skip the work.
    pub analyze_title: bool,
}

/// One document's analysis, stored contiguously by the corpus.
#[derive(Debug, Clone)]
struct AnalyzedDocData {
    text: PreparedText,
    title_key: Option<TitleKey>,
    signature: Option<Signature>,
}

/// A corpus analyzed once: tokenized full texts, normalized title keys and
/// interned title signatures for every document, plus the shared
/// [`Interner`] the signatures were built against.
///
/// Construction is two-phase: tokenization and normalization fan out across
/// workers in input order, then interning runs sequentially over the
/// results — so interned ids depend only on the input, never on worker
/// scheduling. Index `i` always refers to the `i`-th input document.
#[derive(Debug, Clone)]
pub struct AnalyzedCorpus {
    docs: Vec<AnalyzedDocData>,
    interner: Interner,
}

impl AnalyzedCorpus {
    /// Analyzes every item of `items` once, in parallel.
    ///
    /// `source` extracts the raw text of one item; it runs inside worker
    /// threads, so building the concatenated string happens in parallel
    /// too. Tokenization, stopword filtering and stemming all happen here;
    /// consumers only read.
    pub fn analyze<T, F>(items: &[T], source: F) -> Self
    where
        T: Sync,
        F: Fn(&T) -> DocText + Sync,
    {
        let _span = rememberr_obs::span!("corpus.analyze");
        // Phase 1 (parallel): tokenize the full text and normalize the
        // title prefix. Output order equals input order at any job count.
        let analyzed: Vec<(PreparedText, Option<Vec<String>>)> = {
            let _s = rememberr_obs::span!("corpus.phase1");
            rememberr_par::par_map(items, |item| {
                let doc = source(item);
                let title_len = doc.title_len.min(doc.text.len());
                let text = PreparedText::from_string(doc.text);
                let normalized = doc
                    .analyze_title
                    .then(|| normalized_title_prefix(&text, title_len));
                (text, normalized)
            })
        };
        let _s2 = rememberr_obs::span!("corpus.phase2");
        // Phase 2 (sequential): intern signatures in document order through
        // one shared interner, assigning ids deterministically.
        let mut interner = Interner::new();
        let mut docs = Vec::with_capacity(analyzed.len());
        for (text, normalized) in analyzed {
            let (title_key, signature) = match normalized {
                Some(tokens) => {
                    let key = TitleKey::from_normalized(tokens);
                    let sig = Signature::from_title_key(&key, &mut interner);
                    (Some(key), Some(sig))
                }
                None => (None, None),
            };
            docs.push(AnalyzedDocData {
                text,
                title_key,
                signature,
            });
        }
        rememberr_obs::count("corpus.docs_analyzed", docs.len() as u64);
        Self { docs, interner }
    }

    /// Number of analyzed documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if the corpus holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The tokenized full text of document `i`.
    #[must_use]
    pub fn text(&self, i: usize) -> &PreparedText {
        &self.docs[i].text
    }

    /// The normalized title key of document `i`, if it was title-analyzed.
    #[must_use]
    pub fn title_key(&self, i: usize) -> Option<&TitleKey> {
        self.docs[i].title_key.as_ref()
    }

    /// The interned title signature of document `i`, if title-analyzed.
    #[must_use]
    pub fn signature(&self, i: usize) -> Option<&Signature> {
        self.docs[i].signature.as_ref()
    }

    /// A borrowed view of document `i`.
    #[must_use]
    pub fn doc(&self, i: usize) -> AnalyzedDoc<'_> {
        AnalyzedDoc { corpus: self, i }
    }

    /// Releases the token buffers of every document *not* in `keep`,
    /// swapping in [`PreparedText::empty`]. Title keys, signatures and the
    /// interner are untouched — only the full-text tokenization goes.
    ///
    /// Once deduplication has picked its representatives, they are the
    /// only documents the downstream match-heavy stages (classification,
    /// highlight assist) ever read from the arena; dropping the rest —
    /// typically the majority of a heavily-duplicated corpus — shrinks the
    /// resident arena before those stages run.
    ///
    /// # Panics
    ///
    /// Panics if an index in `keep` is out of bounds.
    pub fn release_texts_except(&mut self, keep: impl IntoIterator<Item = usize>) {
        let mut keep_mask = vec![false; self.docs.len()];
        for i in keep {
            keep_mask[i] = true;
        }
        for (doc, keep) in self.docs.iter_mut().zip(keep_mask) {
            if !keep {
                doc.text = PreparedText::empty();
            }
        }
    }

    /// The shared interner the title signatures were built against.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }
}

/// A cheap borrowed view of one analyzed document.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzedDoc<'a> {
    corpus: &'a AnalyzedCorpus,
    i: usize,
}

impl<'a> AnalyzedDoc<'a> {
    /// The tokenized full text (word tokens, spans for snippet extraction,
    /// sorted distinct-word index).
    #[must_use]
    pub fn text(&self) -> &'a PreparedText {
        self.corpus.text(self.i)
    }

    /// The normalized title key, if the document was title-analyzed.
    #[must_use]
    pub fn title_key(&self) -> Option<&'a TitleKey> {
        self.corpus.title_key(self.i)
    }

    /// The interned title signature, if the document was title-analyzed.
    #[must_use]
    pub fn signature(&self) -> Option<&'a Signature> {
        self.corpus.signature(self.i)
    }

    /// Sorted distinct interned title token ids, if title-analyzed.
    #[must_use]
    pub fn token_ids(&self) -> Option<&'a [u32]> {
        self.signature().map(Signature::token_ids)
    }

    /// The title's sorted bigram multiset over interned ids, if
    /// title-analyzed.
    #[must_use]
    pub fn bigrams(&self) -> Option<&'a [(u32, u32)]> {
        self.signature().map(Signature::bigrams)
    }
}

/// Derives the normalized title tokens from an already-tokenized document:
/// the tokens whose spans end inside the `title_len`-byte prefix are
/// exactly the title's own word tokens (tokenization is byte-local and the
/// pipeline separates title and body with `'\n'`, which no token crosses),
/// so filtering stopwords and stemming them reproduces
/// [`crate::normalize`] of the title without a second tokenizer pass.
fn normalized_title_prefix(text: &PreparedText, title_len: usize) -> Vec<String> {
    let count = text
        .token_spans()
        .partition_point(|span| span.end <= title_len);
    text.words()
        .take(count)
        .filter(|w| !is_stopword(w))
        .map(|w| stem_owned(w.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;

    struct Doc {
        title: &'static str,
        body: &'static str,
        analyze_title: bool,
    }

    fn analyze(docs: &[Doc]) -> AnalyzedCorpus {
        AnalyzedCorpus::analyze(docs, |d| DocText {
            text: format!("{}\n{}", d.title, d.body),
            title_len: d.title.len(),
            analyze_title: d.analyze_title,
        })
    }

    #[test]
    fn title_features_match_per_stage_derivations() {
        let docs = [
            Doc {
                title: "X87 FDP Value May be Saved Incorrectly",
                body: "The FDP register is saved with a stale value.",
                analyze_title: true,
            },
            Doc {
                title: "Processor May Hang During Warm Reset",
                body: "A warm reset while caches flush may hang.",
                analyze_title: true,
            },
        ];
        let corpus = analyze(&docs);
        assert_eq!(corpus.len(), 2);
        for (i, d) in docs.iter().enumerate() {
            let expect = TitleKey::new(d.title);
            assert_eq!(corpus.title_key(i), Some(&expect));
            assert_eq!(corpus.doc(i).title_key(), Some(&expect));
        }
        // Signatures intern in document order: fresh per-stage interning of
        // the same key sequence produces identical signatures.
        let mut fresh = Interner::new();
        for (i, d) in docs.iter().enumerate() {
            let expect = Signature::from_title_key(&TitleKey::new(d.title), &mut fresh);
            assert_eq!(corpus.signature(i), Some(&expect));
        }
    }

    #[test]
    fn full_text_matches_fresh_preparation() {
        let docs = [Doc {
            title: "Warm Reset Hang",
            body: "The processor may hang after a warm reset at 0x1F.",
            analyze_title: true,
        }];
        let corpus = analyze(&docs);
        let fresh = PreparedText::new(
            "Warm Reset Hang\nThe processor may hang after a warm reset at 0x1F.",
        );
        assert!(corpus.text(0).words().eq(fresh.words()));
        assert_eq!(corpus.text(0).source(), fresh.source());
    }

    #[test]
    fn skipped_titles_have_no_similarity_features() {
        let docs = [
            Doc {
                title: "AMD-style entry",
                body: "No title analysis requested.",
                analyze_title: false,
            },
            Doc {
                title: "Intel-style entry",
                body: "Title analysis requested.",
                analyze_title: true,
            },
        ];
        let corpus = analyze(&docs);
        assert!(corpus.title_key(0).is_none());
        assert!(corpus.signature(0).is_none());
        assert!(corpus.doc(0).token_ids().is_none());
        assert!(corpus.doc(0).bigrams().is_none());
        assert!(corpus.title_key(1).is_some());
        assert!(corpus.doc(1).token_ids().is_some());
        // Ids are assigned over title-analyzed docs only, in order.
        assert_eq!(
            corpus.interner().len(),
            corpus.signature(1).unwrap().token_ids().len()
        );
    }

    #[test]
    fn prefix_normalization_handles_edge_titles() {
        for title in ["", "the of and", "hyphen-ending-", "0x1F #2 errata"] {
            let text = format!("{title}\nsome body text");
            let prepared = PreparedText::from_string(text);
            assert_eq!(
                normalized_title_prefix(&prepared, title.len()),
                normalize(title),
                "title {title:?}"
            );
        }
    }
}
