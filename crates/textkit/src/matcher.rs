//! Indexed multi-pattern matching: the whole rule library in one pass.
//!
//! Classification runs a library of hundreds of phrase [`Pattern`]s over
//! every erratum. Scanning each pattern positionally is all-pairs work:
//! `patterns × errata` full scans, almost all of which fail on their first
//! element. [`RuleMatcher`] removes that work the same way the sublinear
//! dedup index removed pairwise title comparisons — with an inverted index
//! over interned token ids:
//!
//! * At compile time every pattern nominates an **anchor**: one of its
//!   `Word` elements, chosen by a rarity heuristic (prefer pure-literal
//!   elements over prefix wildcards, non-stopwords over stopwords, fewer
//!   alternatives, longer words). A pattern can only match a text that
//!   contains a token matched by *every* one of its word elements, so any
//!   single element is a sound pre-filter.
//! * Each literal alternative of the anchor posts
//!   `token id → pattern id` into an inverted index ([`Interner`] assigns
//!   the dense ids); each prefix alternative (`speculat*`) goes to a small
//!   prefix bucket probed against the text's sorted distinct-word index.
//! * Patterns with no `Word` element at all (pure gap/number/wildcard
//!   shapes like `# <2> #`) fall into an **always-check bucket**: they are
//!   scanned positionally for every text, exactly as before.
//!
//! Matching a [`PreparedText`] unions the posting lists of the tokens
//! actually present, probes the prefix bucket, and positionally evaluates
//! only the resulting candidates — returning each candidate's first match
//! span so callers never re-scan to extract a snippet. The candidate set is
//! *lossless*: a pattern that matches always anchors on some present token,
//! so skipping non-candidates can never change a decision (the equivalence
//! proptests in `tests/matcher_equiv.rs` assert exactly this).

use std::collections::HashMap;

use crate::intern::Interner;
use crate::normalize::is_stopword;
use crate::pattern::{Elem, Pattern, PreparedText, Span, WordAlt};

/// A compiled pattern library that matches every pattern against a text in
/// one indexed pass.
///
/// Pattern ids are dense indices in insertion order (`0..len`), so callers
/// can keep parallel side tables (category groupings, labels) keyed by id.
///
/// # Examples
///
/// ```
/// use rememberr_textkit::{Pattern, PreparedText, RuleMatcher};
///
/// # fn main() -> Result<(), rememberr_textkit::PatternError> {
/// let matcher = RuleMatcher::compile(vec![
///     Pattern::parse("warm|cold reset")?,
///     Pattern::parse("machine check")?,
/// ]);
/// let text = PreparedText::new("after a warm reset the core hangs");
/// let matches = matcher.match_doc(&text);
/// assert!(matches.is_match(0));
/// assert_eq!(text.snippet(matches.first_span(0).unwrap()), "warm reset");
/// assert!(!matches.is_match(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RuleMatcher {
    /// The compiled library; the pattern id is the index.
    patterns: Vec<Pattern>,
    /// Anchor-literal vocabulary: token string → dense token id.
    interner: Interner,
    /// Inverted index: token id → sorted pattern ids anchored on it.
    postings: Vec<Vec<u32>>,
    /// Prefix anchors: `(prefix, pattern id)`, probed against the text's
    /// distinct-word index.
    prefix_anchors: Vec<(String, u32)>,
    /// Patterns with no word element: positionally scanned on every text.
    always_check: Vec<u32>,
}

/// The result of matching a whole library against one text: per-pattern
/// first match spans plus pruning effort counters.
#[derive(Debug, Clone)]
pub struct MatchSet {
    /// First (leftmost, shortest-gap) match span per pattern id; `None`
    /// for patterns that do not match (or were pruned — pruning is
    /// lossless, so the two are indistinguishable by construction).
    first: Vec<Option<Span>>,
    /// Patterns positionally evaluated (candidates).
    pub evaluated: u64,
    /// Patterns skipped without a positional scan.
    pub pruned: u64,
}

impl MatchSet {
    /// The first match span of a pattern, if it matches.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid pattern id of the matcher that
    /// produced this set.
    pub fn first_span(&self, id: usize) -> Option<Span> {
        self.first[id]
    }

    /// True if the pattern matches anywhere in the text.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn is_match(&self, id: usize) -> bool {
        self.first[id].is_some()
    }
}

/// Anchor-elem desirability: smaller sorts first. Prefer elements whose
/// alternatives are all literals (postable by exact token id), then
/// elements free of stopword literals (rare anchors prune more), then
/// fewer alternatives, then longer shortest-alternative.
fn anchor_score(alts: &[WordAlt]) -> (bool, bool, usize, usize) {
    let mut has_prefix = false;
    let mut has_stopword = false;
    let mut min_len = usize::MAX;
    for alt in alts {
        match alt {
            WordAlt::Literal(lit) => {
                has_stopword |= is_stopword(lit);
                min_len = min_len.min(lit.len());
            }
            WordAlt::Prefix(prefix) => {
                has_prefix = true;
                min_len = min_len.min(prefix.len());
            }
        }
    }
    (has_prefix, has_stopword, alts.len(), usize::MAX - min_len)
}

/// Picks the anchor element of a pattern: the best-scoring `Word` element,
/// or `None` when the pattern has no word element (always-check bucket).
fn select_anchor(pattern: &Pattern) -> Option<&[WordAlt]> {
    pattern
        .elems()
        .iter()
        .filter_map(|elem| match elem {
            Elem::Word(alts) => Some(alts.as_slice()),
            _ => None,
        })
        .min_by_key(|alts| anchor_score(alts))
}

impl RuleMatcher {
    /// Compiles a pattern library into an indexed matcher.
    ///
    /// Pattern ids are assigned in iteration order, starting at 0.
    pub fn compile<I>(patterns: I) -> Self
    where
        I: IntoIterator<Item = Pattern>,
    {
        let patterns: Vec<Pattern> = patterns.into_iter().collect();
        let mut interner = Interner::new();
        let mut postings: Vec<Vec<u32>> = Vec::new();
        let mut prefix_anchors: Vec<(String, u32)> = Vec::new();
        let mut always_check: Vec<u32> = Vec::new();
        for (id, pattern) in patterns.iter().enumerate() {
            let id = u32::try_from(id).expect("pattern library fits in u32 ids");
            match select_anchor(pattern) {
                None => always_check.push(id),
                Some(alts) => {
                    for alt in alts {
                        match alt {
                            WordAlt::Literal(lit) => {
                                let tid = interner.intern(lit) as usize;
                                if postings.len() <= tid {
                                    postings.resize_with(tid + 1, Vec::new);
                                }
                                // Ids arrive in order; a duplicate literal
                                // within one element posts once.
                                if postings[tid].last() != Some(&id) {
                                    postings[tid].push(id);
                                }
                            }
                            WordAlt::Prefix(prefix) => {
                                prefix_anchors.push((prefix.clone(), id));
                            }
                        }
                    }
                }
            }
        }
        Self {
            patterns,
            interner,
            postings,
            prefix_anchors,
            always_check,
        }
    }

    /// The compiled patterns, indexable by pattern id.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of patterns in the library.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Number of patterns in the always-check bucket (no word element).
    pub fn always_checked(&self) -> usize {
        self.always_check.len()
    }

    /// Computes the candidate flags for a text: the union of posting lists
    /// for tokens present, prefix-bucket hits, and the always-check bucket.
    fn candidates(&self, text: &PreparedText) -> Vec<bool> {
        let mut candidate = vec![false; self.patterns.len()];
        for &id in &self.always_check {
            candidate[id as usize] = true;
        }
        for word in text.distinct_words() {
            if let Some(tid) = self.interner.get(word) {
                if let Some(list) = self.postings.get(tid as usize) {
                    for &id in list {
                        candidate[id as usize] = true;
                    }
                }
            }
        }
        for (prefix, id) in &self.prefix_anchors {
            if !candidate[*id as usize] && text.has_word_with_prefix(prefix) {
                candidate[*id as usize] = true;
            }
        }
        candidate
    }

    /// Matches the whole library against a prepared text in one pass.
    ///
    /// Only candidate patterns (anchor token present) are positionally
    /// evaluated; each evaluation records the first match span, so callers
    /// get decision *and* snippet from the same scan. `evaluated + pruned`
    /// always equals [`RuleMatcher::len`].
    pub fn match_doc(&self, text: &PreparedText) -> MatchSet {
        let candidate = self.candidates(text);
        let mut first = vec![None; self.patterns.len()];
        let mut evaluated = 0u64;
        for (id, &is_candidate) in candidate.iter().enumerate() {
            if is_candidate {
                evaluated += 1;
                first[id] = self.patterns[id].first_match_in(text);
            }
        }
        MatchSet {
            first,
            evaluated,
            pruned: self.patterns.len() as u64 - evaluated,
        }
    }

    /// All matches of every pattern: `find_in` run over candidates only,
    /// with pruned patterns yielding empty span lists. Indexed counterpart
    /// of calling [`Pattern::find_in`] per pattern.
    pub fn find_all(&self, text: &PreparedText) -> Vec<Vec<Span>> {
        let candidate = self.candidates(text);
        self.patterns
            .iter()
            .zip(&candidate)
            .map(|(pattern, &is_candidate)| {
                if is_candidate {
                    pattern.find_in(text)
                } else {
                    Vec::new()
                }
            })
            .collect()
    }

    /// Groups pattern ids by an arbitrary key, preserving id order within
    /// each group — the compile-time side table classification keys by
    /// category.
    pub fn group_ids_by<K, F>(&self, mut key_of: F) -> HashMap<K, Vec<usize>>
    where
        K: std::hash::Hash + Eq,
        F: FnMut(usize, &Pattern) -> K,
    {
        let mut groups: HashMap<K, Vec<usize>> = HashMap::new();
        for (id, pattern) in self.patterns.iter().enumerate() {
            groups.entry(key_of(id, pattern)).or_default().push(id);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(sources: &[&str]) -> RuleMatcher {
        RuleMatcher::compile(
            sources
                .iter()
                .map(|s| Pattern::parse(s).expect("test pattern parses")),
        )
    }

    #[test]
    fn indexed_matches_agree_with_per_pattern_scans() {
        let sources = [
            "machine check",
            "warm|cold reset",
            "power <2> state|states",
            "speculat*",
            "# kb",
            "cache line boundary",
        ];
        let matcher = lib(&sources);
        let text = PreparedText::new(
            "A warm reset during a power management state transition exceeding 32 KB \
             may cause speculative fills past the cache line boundary.",
        );
        let matches = matcher.match_doc(&text);
        for (id, source) in sources.iter().enumerate() {
            let pattern = Pattern::parse(source).unwrap();
            assert_eq!(
                matches.first_span(id),
                pattern.find_in(&text).first().copied(),
                "pattern {source:?}"
            );
        }
        assert_eq!(matches.evaluated + matches.pruned, sources.len() as u64);
    }

    #[test]
    fn absent_anchors_are_pruned_without_evaluation() {
        let matcher = lib(&["usb controller", "pcie link", "iommu"]);
        let text = PreparedText::new("the processor may hang after a warm reset");
        let matches = matcher.match_doc(&text);
        assert_eq!(matches.evaluated, 0);
        assert_eq!(matches.pruned, 3);
        assert!((0..3).all(|id| !matches.is_match(id)));
    }

    #[test]
    fn anchorless_patterns_are_always_checked() {
        let matcher = lib(&["#", "? #", "usb"]);
        assert_eq!(matcher.always_checked(), 2);
        let text = PreparedText::new("error code 17");
        let matches = matcher.match_doc(&text);
        assert!(matches.is_match(0));
        assert!(matches.is_match(1));
        assert!(!matches.is_match(2));
        // The two anchorless patterns are evaluated even though no anchor
        // token is present.
        assert_eq!(matches.evaluated, 2);
    }

    #[test]
    fn prefix_anchors_hit_via_the_distinct_word_index() {
        let matcher = lib(&["speculat*", "throttl* event"]);
        let hit = PreparedText::new("a speculative load occurs");
        let matches = matcher.match_doc(&hit);
        assert!(matches.is_match(0));
        assert!(!matches.is_match(1));
        assert_eq!(matches.evaluated, 1, "only the speculat* candidate runs");

        let miss = PreparedText::new("spec compliance throttling event");
        let matches = matcher.match_doc(&miss);
        assert!(!matches.is_match(0));
        assert!(matches.is_match(1));
    }

    #[test]
    fn anchor_prefers_rare_literals_over_stopwords_and_prefixes() {
        // "may" is a stopword and "saved" is shorter than "incorrectly";
        // the anchor should be the rarest pure-literal element.
        let p = Pattern::parse("may be saved incorrectly").unwrap();
        let anchor = select_anchor(&p).expect("word elems exist");
        assert_eq!(anchor, &[WordAlt::Literal("incorrectly".to_string())]);

        // A pure-literal element beats a prefix element even when shorter.
        let p = Pattern::parse("speculat* fill").unwrap();
        let anchor = select_anchor(&p).unwrap();
        assert_eq!(anchor, &[WordAlt::Literal("fill".to_string())]);
    }

    #[test]
    fn find_all_matches_per_pattern_find_in() {
        let sources = ["reset", "warm reset", "#"];
        let matcher = lib(&sources);
        let text = PreparedText::new("reset, then another warm reset at 0x40");
        let all = matcher.find_all(&text);
        for (id, source) in sources.iter().enumerate() {
            let pattern = Pattern::parse(source).unwrap();
            assert_eq!(all[id], pattern.find_in(&text), "pattern {source:?}");
        }
    }

    #[test]
    fn group_ids_by_keeps_insertion_order() {
        let matcher = lib(&["a b", "c", "d e"]);
        let by_len = matcher.group_ids_by(|_, p| p.source().split(' ').count());
        assert_eq!(by_len[&2], vec![0, 2]);
        assert_eq!(by_len[&1], vec![1]);
    }

    #[test]
    fn empty_library_matches_nothing() {
        let matcher = RuleMatcher::compile(Vec::<Pattern>::new());
        assert!(matcher.is_empty());
        let matches = matcher.match_doc(&PreparedText::new("anything"));
        assert_eq!(matches.evaluated, 0);
        assert_eq!(matches.pruned, 0);
    }
}
