//! String and token-set similarity metrics.
//!
//! The Intel duplicate detector ranks candidate pairs by title similarity
//! (Section IV-A: "title similarity is a strong indicator of potential
//! duplicates"). We provide Levenshtein distance (banded, early-exit),
//! Jaccard similarity over token sets, cosine similarity over term
//! frequencies, and the composite [`title_similarity`] used by the cascade.

use std::collections::{BTreeMap, BTreeSet};

use crate::normalize::normalize;

/// Levenshtein edit distance between two strings, by bytes.
///
/// Uses the classic two-row dynamic program. If `cutoff` is `Some(k)` and
/// the distance provably exceeds `k`, returns `k + 1` early.
pub fn levenshtein(a: &str, b: &str, cutoff: Option<usize>) -> usize {
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    if let Some(k) = cutoff {
        if a.len().abs_diff(b.len()) > k {
            return k + 1;
        }
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if let Some(k) = cutoff {
            if row_min > k {
                return k + 1;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]` (1 = identical).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b, None) as f64 / max_len as f64
}

/// Jaccard similarity between two token multiset *supports* (sets).
pub fn jaccard<T: Ord>(a: impl IntoIterator<Item = T>, b: impl IntoIterator<Item = T>) -> f64 {
    let sa: BTreeSet<T> = a.into_iter().collect();
    let sb: BTreeSet<T> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Cosine similarity between term-frequency vectors of two token sequences.
///
/// Generic over anything string-like, so callers can pass `&[String]`,
/// `&[&str]`, or borrowed token slices without building owned copies.
pub fn cosine<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut fa: BTreeMap<&str, f64> = BTreeMap::new();
    for t in a {
        *fa.entry(t.as_ref()).or_default() += 1.0;
    }
    let mut fb: BTreeMap<&str, f64> = BTreeMap::new();
    for t in b {
        *fb.entry(t.as_ref()).or_default() += 1.0;
    }
    let dot: f64 = fa
        .iter()
        .filter_map(|(t, va)| fb.get(t).map(|vb| va * vb))
        .sum();
    let na: f64 = fa.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = fb.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// The composite blend: `0.6 * jaccard + 0.4 * levenshtein_similarity`.
///
/// Every similarity path (direct, [`TitleKey`], signatures) funnels through
/// this one expression, so threshold short-cuts can reason about the exact
/// floating-point value the full computation would produce.
pub(crate) fn composite(jaccard: f64, levenshtein: f64) -> f64 {
    0.6 * jaccard + 0.4 * levenshtein
}

/// Outcome of a threshold-gated similarity check: whether the pair clears
/// the threshold, and whether deciding that required the Levenshtein
/// dynamic program (as opposed to a cheap bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdCheck {
    /// `similarity(a, b) >= threshold`, decided exactly.
    pub passes: bool,
    /// True if the edit-distance dynamic program had to run; false when a
    /// constant-time bound settled the question.
    pub scored: bool,
}

/// Upper bound on the Levenshtein distance: after stripping the longest
/// common prefix and suffix, the remainders can always be aligned with
/// `max(|rem_a|, |rem_b|)` substitutions/insertions/deletions.
fn trimmed_distance_bound(a: &[u8], b: &[u8]) -> usize {
    let prefix = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (a.len() - suffix).max(b.len() - suffix)
}

/// Decides `composite(j, levenshtein_similarity(a, b)) >= threshold` with
/// the exact result of the full computation, running the edit-distance
/// dynamic program only when cheap bounds cannot settle it.
///
/// Soundness: `composite` is monotone non-increasing in the edit distance
/// `d` (every floating-point step — division, subtraction, scaled blend —
/// is monotone), and `|len(a) - len(b)| <= d <= trimmed_distance_bound`.
/// Evaluating the *same* float expression at the bounds therefore brackets
/// the true value; only when the bracket straddles the threshold does the
/// banded DP run, with its cutoff set to the largest distance that still
/// passes — the exact band [`levenshtein`] exits early on.
pub(crate) fn decide_threshold(jaccard: f64, a: &str, b: &str, threshold: f64) -> ThresholdCheck {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return ThresholdCheck {
            passes: composite(jaccard, 1.0) >= threshold,
            scored: false,
        };
    }
    // The exact similarity the full computation would produce for a
    // hypothetical distance d — same expression, same rounding.
    let sim_at = |d: usize| composite(jaccard, 1.0 - d as f64 / max_len as f64);
    let d_lower = a.len().abs_diff(b.len());
    if sim_at(d_lower) < threshold {
        // Even the most favorable distance fails: hopeless pair.
        return ThresholdCheck {
            passes: false,
            scored: false,
        };
    }
    let d_upper = trimmed_distance_bound(a.as_bytes(), b.as_bytes());
    if sim_at(d_upper) >= threshold {
        // Even the least favorable distance passes: certain pair.
        return ThresholdCheck {
            passes: true,
            scored: false,
        };
    }
    // sim_at is monotone non-increasing, sim_at(d_lower) passes and
    // sim_at(d_upper) fails: binary-search the largest passing distance.
    let (mut lo, mut hi) = (d_lower, d_upper);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if sim_at(mid) >= threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let d = levenshtein(a, b, Some(lo));
    ThresholdCheck {
        passes: d <= lo,
        scored: true,
    }
}

/// Composite title similarity in `[0, 1]`, the ranking key of the Intel
/// duplicate-detection cascade.
///
/// Titles are normalized (stopwords out, light stemming), then the score is
/// a blend of token Jaccard and character-level Levenshtein similarity on
/// the normalized keys: Jaccard captures word permutations, Levenshtein
/// captures near-identical phrasing with small in-word edits.
///
/// Normalization dominates the cost of a single comparison; callers scoring
/// one title against many (the dedup cascade is O(n²) in the worst case)
/// should precompute a [`TitleKey`] per title instead.
pub fn title_similarity(a: &str, b: &str) -> f64 {
    TitleKey::new(a).similarity(&TitleKey::new(b))
}

/// A title's precomputed similarity key: its normalized token set and
/// joined normalized form, computed once so repeated comparisons skip
/// re-normalization.
///
/// `TitleKey::new(a).similarity(&TitleKey::new(b))` equals
/// `title_similarity(a, b)` exactly; the type only hoists the
/// tokenize/stopword/stem work out of comparison loops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TitleKey {
    /// Distinct normalized tokens (the Jaccard operand).
    tokens: BTreeSet<String>,
    /// Normalized tokens joined with single spaces (the Levenshtein operand,
    /// identical to [`crate::normalized_key`] of the title).
    joined: String,
}

impl TitleKey {
    /// Normalizes `title` once into its comparison key.
    #[must_use]
    pub fn new(title: &str) -> Self {
        rememberr_obs::count("textkit.tokenize_calls", 1);
        Self::from_normalized(normalize(title))
    }

    /// Builds the key from already-normalized tokens (stopwords removed,
    /// stemmed, in title order) without re-tokenizing. The invariant that
    /// `joined` equals [`crate::normalized_key`] of the original title holds
    /// exactly when `normalized` is what [`crate::normalize`] returned for
    /// it, which is how [`crate::AnalyzedCorpus`] calls this.
    pub(crate) fn from_normalized(normalized: Vec<String>) -> Self {
        let joined = normalized.join(" ");
        Self {
            tokens: normalized.into_iter().collect(),
            joined,
        }
    }

    /// The joined normalized form — byte-identical to
    /// [`crate::normalized_key`] of the original title, so it doubles as the
    /// exact-match clustering key.
    #[must_use]
    pub fn joined(&self) -> &str {
        &self.joined
    }

    /// The distinct normalized tokens (the Jaccard operand), sorted.
    #[must_use]
    pub fn tokens(&self) -> &BTreeSet<String> {
        &self.tokens
    }

    /// Composite similarity against another precomputed key; same blend and
    /// same result as [`title_similarity`] on the original titles.
    #[must_use]
    pub fn similarity(&self, other: &Self) -> f64 {
        let l = levenshtein_similarity(&self.joined, &other.joined);
        composite(self.jaccard(other), l)
    }

    /// Token-set Jaccard similarity against another key (the first operand
    /// of the composite blend).
    #[must_use]
    pub fn jaccard(&self, other: &Self) -> f64 {
        let inter = self.tokens.intersection(&other.tokens).count();
        let union = self.tokens.len() + other.tokens.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Decides `self.similarity(other) >= threshold` exactly, without
    /// always paying for the full edit-distance computation.
    ///
    /// The threshold is threaded into [`levenshtein`]'s cutoff band: the
    /// dynamic program runs only when constant-time distance bounds cannot
    /// settle the comparison, and then exits as soon as the distance
    /// provably leaves the band that could still pass. The boolean is
    /// bit-for-bit identical to comparing [`TitleKey::similarity`] against
    /// `threshold`.
    #[must_use]
    pub fn similarity_at_least(&self, other: &Self, threshold: f64) -> bool {
        decide_threshold(self.jaccard(other), &self.joined, &other.joined, threshold).passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "", None), 0);
        assert_eq!(levenshtein("abc", "", None), 3);
        assert_eq!(levenshtein("kitten", "sitting", None), 3);
        assert_eq!(levenshtein("flaw", "lawn", None), 2);
    }

    #[test]
    fn levenshtein_cutoff_early_exit() {
        assert_eq!(levenshtein("aaaaaaaaaa", "bbbbbbbbbb", Some(3)), 4);
        assert_eq!(levenshtein("short", "muchlongerstring", Some(2)), 3);
        // Within cutoff: exact value.
        assert_eq!(levenshtein("kitten", "sitting", Some(5)), 3);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard::<&str>([], []), 1.0);
        assert_eq!(jaccard(["a", "b"], ["a", "b"]), 1.0);
        assert_eq!(jaccard(["a", "b"], ["c", "d"]), 0.0);
        assert!((jaccard(["a", "b", "c"], ["b", "c", "d"]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_basics() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["x".to_string(), "y".to_string()];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec!["z".to_string()];
        assert_eq!(cosine(&a, &c), 0.0);
        assert_eq!(cosine::<&str>(&[], &[]), 1.0);
        assert_eq!(cosine(&a, &[]), 0.0);
        // Borrowed slices work without owned copies.
        assert!((cosine(&["x", "y"], &["y", "x"]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn title_similarity_ranks_near_duplicates_high() {
        let a = "X87 FDP Value May be Saved Incorrectly";
        let b = "x87 FDP Values Might Be Saved Incorrectly";
        let c = "Processor May Hang When Switching Between Instruction Cache and Op Cache";
        assert!(title_similarity(a, b) > 0.9, "{}", title_similarity(a, b));
        assert!(title_similarity(a, c) < 0.3, "{}", title_similarity(a, c));
        assert!(title_similarity(a, a) > 0.999);
    }

    #[test]
    fn title_key_exposes_the_normalized_key() {
        let title = "X87 FDP Value May be Saved Incorrectly";
        assert_eq!(TitleKey::new(title).joined(), crate::normalized_key(title));
    }

    #[test]
    fn trimmed_bound_brackets_the_distance() {
        for (a, b) in [
            ("warm reset hang", "warm reset hang case"),
            ("kitten", "sitting"),
            ("", "abc"),
            ("same", "same"),
            ("x87 fdp value save incorrectly", "x87 fdp value might save"),
        ] {
            let d = levenshtein(a, b, None);
            assert!(
                d <= trimmed_distance_bound(a.as_bytes(), b.as_bytes()),
                "{a:?} vs {b:?}"
            );
            assert!(d >= a.len().abs_diff(b.len()));
        }
    }

    proptest! {
        #[test]
        fn threshold_check_matches_full_similarity(
            a in ".{0,60}",
            b in ".{0,60}",
            threshold in 0.0f64..1.0,
        ) {
            let (ka, kb) = (TitleKey::new(&a), TitleKey::new(&b));
            let full = ka.similarity(&kb) >= threshold;
            let fast = ka.similarity_at_least(&kb, threshold);
            prop_assert_eq!(fast, full, "threshold {} on {:?} vs {:?}", threshold, a, b);
        }

        #[test]
        fn title_key_similarity_matches_direct_similarity(a in ".{0,60}", b in ".{0,60}") {
            let cached = TitleKey::new(&a).similarity(&TitleKey::new(&b));
            let direct = title_similarity(&a, &b);
            prop_assert!((cached - direct).abs() == 0.0, "cached {cached} != direct {direct}");
        }

        #[test]
        fn levenshtein_is_a_metric(a in "[a-c]{0,12}", b in "[a-c]{0,12}", c in "[a-c]{0,12}") {
            let dab = levenshtein(&a, &b, None);
            let dba = levenshtein(&b, &a, None);
            prop_assert_eq!(dab, dba); // symmetry
            prop_assert_eq!(levenshtein(&a, &a, None), 0); // identity
            let dac = levenshtein(&a, &c, None);
            let dcb = levenshtein(&c, &b, None);
            prop_assert!(dab <= dac + dcb); // triangle inequality
        }

        #[test]
        fn similarity_scores_are_in_unit_interval(a in ".{0,40}", b in ".{0,40}") {
            let t = title_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&t), "title {t}");
            let l = levenshtein_similarity(&a, &b);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&l), "lev {l}");
        }

        #[test]
        fn jaccard_symmetric(a in prop::collection::vec("[a-e]{1,3}", 0..8),
                             b in prop::collection::vec("[a-e]{1,3}", 0..8)) {
            let j1 = jaccard(a.iter(), b.iter());
            let j2 = jaccard(b.iter(), a.iter());
            prop_assert!((j1 - j2).abs() < 1e-12);
        }
    }
}
