//! Line wrapping and reflow.
//!
//! The corpus generator renders erratum prose into fixed-width document
//! lines (hyphenating words that straddle the margin, as PDF text extraction
//! produces); the extraction pipeline reverses the process. Keeping both
//! directions in one module makes the invariant testable:
//! `reflow(wrap(text)) == text` modulo whitespace.

/// Wraps `text` to lines of at most `width` characters.
///
/// Words longer than `width` are split with a trailing hyphen, mimicking the
/// hyphenation found in extracted PDF text.
///
/// # Panics
///
/// Panics if `width < 2` (no room for a split character plus hyphen).
pub fn wrap(text: &str, width: usize) -> Vec<String> {
    assert!(width >= 2, "wrap width must be at least 2");
    let mut lines = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        let mut word = word;
        loop {
            let sep = usize::from(!line.is_empty());
            if line.len() + sep + word.len() <= width {
                if sep == 1 {
                    line.push(' ');
                }
                line.push_str(word);
                break;
            }
            let room = width.saturating_sub(line.len() + sep);
            if room >= 3 && word.len() > room {
                // Split the word: keep room-1 chars plus a hyphen.
                if let Some(split) = choose_split(word, room - 1) {
                    if sep == 1 {
                        line.push(' ');
                    }
                    line.push_str(&word[..split]);
                    line.push('-');
                    word = &word[split..];
                }
            }
            lines.push(std::mem::take(&mut line));
            while word.len() > width {
                // Word alone exceeds the width: hard-split across lines.
                let Some(split) = choose_split(word, width - 1) else {
                    // No safe split point (e.g. a run of hyphens): emit the
                    // word on its own overlong line rather than looping.
                    lines.push(word.to_string());
                    word = "";
                    break;
                };
                line.push_str(&word[..split]);
                line.push('-');
                lines.push(std::mem::take(&mut line));
                word = &word[split..];
            }
            if word.is_empty() {
                break;
            }
        }
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}

/// Picks a hyphenation split point at or below `desired` that is safe to
/// undo: not at the string ends and not adjacent to an existing hyphen
/// (splitting next to a real hyphen would make the artificial one
/// indistinguishable on reflow). Returns `None` if no such point exists.
fn choose_split(word: &str, desired: usize) -> Option<usize> {
    let bytes = word.as_bytes();
    let mut split = floor_char_boundary(word, desired.min(word.len().saturating_sub(1)));
    while split > 0 {
        let before = bytes[split - 1];
        let after = bytes[split];
        if before != b'-' && after != b'-' && word.is_char_boundary(split) {
            return Some(split);
        }
        split -= 1;
        while split > 0 && !word.is_char_boundary(split) {
            split -= 1;
        }
    }
    None
}

/// Largest byte index `<= at` lying on a char boundary of `s`.
fn floor_char_boundary(s: &str, at: usize) -> usize {
    if at >= s.len() {
        return s.len();
    }
    let mut i = at;
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Repair statistics from one [`reflow_counted`] call, consumed by the
/// extraction pipeline's instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReflowStats {
    /// Wrapped continuation lines joined back into their paragraph.
    pub lines_joined: usize,
    /// Hyphenation artifacts undone (a word rejoined across a line break).
    pub dehyphenations: usize,
}

impl ReflowStats {
    /// Accumulates another call's statistics.
    pub fn merge(&mut self, other: ReflowStats) {
        self.lines_joined += other.lines_joined;
        self.dehyphenations += other.dehyphenations;
    }
}

/// Reflows wrapped lines back into a single paragraph string.
///
/// Lines ending in a hyphen are joined to the next line without a space
/// (de-hyphenation); other line breaks become single spaces. A hyphen that
/// is part of a real compound word (`virtual-8086`) survives because real
/// compounds are never rendered at line ends followed by an alphanumeric
/// continuation *by this module's `wrap`*; PDF sources cannot make that
/// distinction either, which is exactly the ambiguity the extraction
/// pipeline inherits.
pub fn reflow(lines: &[impl AsRef<str>]) -> String {
    reflow_counted(lines).0
}

/// [`reflow`] that also reports how many repairs it performed.
pub fn reflow_counted(lines: &[impl AsRef<str>]) -> (String, ReflowStats) {
    let mut out = String::new();
    let mut stats = ReflowStats::default();
    for line in lines {
        let line = line.as_ref().trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(stripped) = out.strip_suffix('-') {
            // Join hyphen-split word (underscores count as word characters:
            // register names like LBR_FROM_IP split mid-identifier).
            let word_char = |c: char| c.is_alphanumeric() || c == '_';
            let head_ok = stripped.chars().next_back().is_some_and(word_char);
            let tail_ok = line.chars().next().is_some_and(word_char);
            if head_ok && tail_ok {
                out.truncate(stripped.len());
                out.push_str(line);
                stats.lines_joined += 1;
                stats.dehyphenations += 1;
                continue;
            }
        }
        if !out.is_empty() {
            out.push(' ');
            stats.lines_joined += 1;
        }
        out.push_str(line);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_respects_width() {
        let text = "Under a highly specific and detailed set of internal timing conditions \
                    the processor may hang";
        for width in [20, 40, 72] {
            for line in wrap(text, width) {
                assert!(line.len() <= width, "{line:?} exceeds {width}");
            }
        }
    }

    #[test]
    fn wrap_reflow_roundtrip() {
        let text = "Execution of the FSAVE, FNSAVE, FSTENV, or FNSTENV instructions in \
                    real-address mode or virtual-8086 mode may save an incorrect value";
        for width in [18, 30, 50, 100] {
            let lines = wrap(text, width);
            assert_eq!(reflow(&lines), text, "width {width}");
        }
    }

    #[test]
    fn long_word_is_hyphen_split() {
        let lines = wrap("supercalifragilistic", 8);
        assert!(lines.len() > 1);
        assert!(lines[0].ends_with('-'));
        assert_eq!(reflow(&lines), "supercalifragilistic");
    }

    #[test]
    fn empty_input() {
        assert!(wrap("", 40).is_empty());
        assert_eq!(reflow(&Vec::<String>::new()), "");
        assert_eq!(reflow(&["", "  "]), "");
    }

    #[test]
    fn reflow_joins_plain_lines_with_spaces() {
        assert_eq!(reflow(&["one two", "three"]), "one two three");
    }

    #[test]
    fn reflow_counted_reports_repairs() {
        // Two joins, one of which undoes a hyphenation.
        let (text, stats) = reflow_counted(&["super-", "cali fragi", "listic"]);
        assert_eq!(text, "supercali fragi listic");
        assert_eq!(stats.lines_joined, 2);
        assert_eq!(stats.dehyphenations, 1);
        // Single-line input needs no repair.
        let (_, clean) = reflow_counted(&["already flat"]);
        assert_eq!(clean, ReflowStats::default());
        let mut total = stats;
        total.merge(clean);
        assert_eq!(total, stats);
    }

    #[test]
    fn reflow_preserves_real_hyphen_before_punctuation() {
        // A line ending in "-" followed by a non-alphanumeric start is not
        // a hyphenation artifact.
        assert_eq!(reflow(&["a -", "(b)"]), "a - (b)");
    }

    #[test]
    fn identifiers_with_underscores_roundtrip() {
        let text = "the LBR_FROM_IP register (MSR 0x680) may contain an incorrect value";
        for width in 8..30 {
            let lines = wrap(text, width);
            assert_eq!(reflow(&lines), text, "width {width}");
        }
    }

    #[test]
    fn unsplittable_runs_do_not_loop() {
        // Runs of hyphens cannot be safely split; they land on an overlong
        // line and survive reflow untouched apart from spacing.
        let lines = wrap("a ------------ b", 6);
        assert!(lines.iter().any(|l| l.contains("------------")));
        let text = "x --------------------------------";
        let lines = wrap(text, 8);
        assert_eq!(reflow(&lines), text);
    }

    #[test]
    fn natural_hyphen_near_split_point_survives() {
        // "back-to-back" forced to wrap right around its own hyphens.
        for width in 4..30 {
            let text = "a back-to-back sequence of operations on the bus";
            let lines = wrap(text, width.max(14));
            assert_eq!(reflow(&lines), text, "width {width}");
        }
        // The word alone, at widths that land splits on the hyphens.
        for width in 5..14 {
            let lines = wrap("back-to-back", width);
            assert_eq!(reflow(&lines), "back-to-back", "width {width}");
        }
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_prose(
            words in prop::collection::vec("[a-zA-Z0-9]{1,14}", 1..40),
            width in 16usize..90,
        ) {
            let text = words.join(" ");
            let lines = wrap(&text, width);
            prop_assert_eq!(reflow(&lines), text);
            for line in &lines {
                prop_assert!(line.len() <= width);
            }
        }

        #[test]
        fn roundtrip_hyphenated_prose(
            words in prop::collection::vec("[a-z]{1,6}(-[a-z]{1,6}){0,2}", 1..30),
            width in 16usize..60,
        ) {
            let text = words.join(" ");
            let lines = wrap(&text, width);
            prop_assert_eq!(reflow(&lines), text);
        }
    }
}
