//! Character and token n-grams (shingles) and n-gram set similarity.
//!
//! Used as an order-sensitive complement to token Jaccard: bigram shingles
//! distinguish "machine check" from "check the machine", which plain token
//! sets cannot.

use std::collections::BTreeSet;

use crate::normalize::normalize;

/// Character n-grams of a string (over its chars, not bytes).
///
/// Strings shorter than `n` yield a single truncated gram; `n == 0` yields
/// nothing.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Token n-grams (shingles) of a token sequence.
pub fn token_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.is_empty() {
        return Vec::new();
    }
    if tokens.len() <= n {
        return vec![tokens.join(" ")];
    }
    (0..=tokens.len() - n)
        .map(|i| tokens[i..i + n].join(" "))
        .collect()
}

/// Jaccard similarity between the `n`-shingle sets of two normalized texts.
///
/// Normalization (stopwords, stemming) happens internally; `n = 2` is the
/// usual choice for titles.
pub fn shingle_similarity(a: &str, b: &str, n: usize) -> f64 {
    let sa: BTreeSet<String> = token_ngrams(&normalize(a), n).into_iter().collect();
    let sb: BTreeSet<String> = token_ngrams(&normalize(b), n).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn char_ngrams_basics() {
        assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
        assert!(char_ngrams("", 2).is_empty());
        assert!(char_ngrams("abc", 0).is_empty());
    }

    #[test]
    fn char_ngrams_respect_unicode_boundaries() {
        let grams = char_ngrams("áβc", 2);
        assert_eq!(grams, vec!["áβ", "βc"]);
    }

    #[test]
    fn token_ngrams_basics() {
        let toks: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(token_ngrams(&toks, 2), vec!["a b", "b c"]);
        assert_eq!(token_ngrams(&toks, 5), vec!["a b c"]);
        assert!(token_ngrams(&[], 2).is_empty());
    }

    #[test]
    fn shingles_are_order_sensitive() {
        // Token Jaccard would call these identical; shingles do not.
        let forward = shingle_similarity("machine check exception", "machine check exception", 2);
        let scrambled = shingle_similarity("machine check exception", "exception check machine", 2);
        assert!((forward - 1.0).abs() < 1e-12);
        assert!(scrambled < 0.5, "{scrambled}");
    }

    #[test]
    fn near_duplicate_titles_score_high() {
        let s = shingle_similarity(
            "X87 FDP Value May be Saved Incorrectly",
            "X87 FDP Values Might Be Saved Incorrectly",
            2,
        );
        assert!(s > 0.9, "{s}");
    }

    proptest! {
        #[test]
        fn shingle_similarity_is_symmetric_and_bounded(a in ".{0,40}", b in ".{0,40}") {
            let ab = shingle_similarity(&a, &b, 2);
            let ba = shingle_similarity(&b, &a, 2);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((shingle_similarity(&a, &a, 2) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn gram_counts_match_lengths(text in "[a-z ]{0,60}", n in 1usize..5) {
            let chars = text.chars().count();
            let grams = char_ngrams(&text, n);
            if chars == 0 {
                prop_assert!(grams.is_empty());
            } else if chars <= n {
                prop_assert_eq!(grams.len(), 1);
            } else {
                prop_assert_eq!(grams.len(), chars - n + 1);
            }
        }
    }
}
