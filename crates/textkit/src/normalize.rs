//! Normalization for duplicate detection: stopword removal and a light
//! suffix-stripping stemmer.
//!
//! Intel duplicate detection works on titles whose phrasings vary slightly
//! between documents ("May Be Saved Incorrectly" vs "Might be Saved
//! Incorrectly"); normalization makes such variants compare equal.

use crate::tokenize::word_tokens;

/// English stopwords that carry no signal in erratum titles.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "can", "could", "do", "does", "for", "from",
    "has", "have", "if", "in", "into", "is", "it", "its", "may", "might", "not", "of", "on", "or",
    "shall", "should", "such", "that", "the", "their", "then", "there", "these", "this", "to",
    "under", "upon", "when", "which", "while", "will", "with", "would",
];

/// True if the lowercase word is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Applies a light suffix-stripping stemmer to a lowercase word.
///
/// This is deliberately not a full Porter stemmer: erratum vocabulary is
/// narrow, and aggressive stemming would merge distinct technical terms.
/// Rules, in order: `'s`, `ies -> y`, `sses -> ss`, `es`, `s` (guarded),
/// `ing` (guarded), `ed` (guarded).
pub fn stem(word: &str) -> String {
    let w = word;
    if let Some(base) = w.strip_suffix("'s") {
        return base.to_string();
    }
    if let Some(base) = w.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y");
        }
    }
    if let Some(base) = w.strip_suffix("sses") {
        return format!("{base}ss");
    }
    if let Some(base) = w.strip_suffix("es") {
        // "caches" -> "cach"+"es"? prefer "cache": only strip bare "s" when
        // the remainder ends with a consonant cluster that needs the "e".
        if base.len() >= 3 && (base.ends_with("sh") || base.ends_with("ch") || base.ends_with('x'))
        {
            return base.to_string();
        }
    }
    if let Some(base) = w.strip_suffix('s') {
        if base.len() >= 3 && !base.ends_with('s') && !base.ends_with('u') && !base.ends_with('i') {
            return base.to_string();
        }
    }
    if let Some(base) = w.strip_suffix("ing") {
        if base.len() >= 3 {
            return base.to_string();
        }
    }
    if let Some(base) = w.strip_suffix("ed") {
        if base.len() >= 3 {
            return base.to_string();
        }
    }
    w.to_string()
}

/// [`stem`] taking ownership of the word, so the hot normalization path
/// reuses the token's allocation instead of building a fresh `String` per
/// word: every rule is a suffix truncation (plus one `push('y')` into
/// freed capacity). Behavior is identical to [`stem`] — the property test
/// below holds them equal.
pub fn stem_owned(mut w: String) -> String {
    if w.ends_with("'s") {
        w.truncate(w.len() - 2);
        return w;
    }
    if w.ends_with("ies") && w.len() >= 5 {
        w.truncate(w.len() - 3);
        w.push('y');
        return w;
    }
    if w.ends_with("sses") {
        w.truncate(w.len() - 2);
        return w;
    }
    if w.ends_with("es") {
        let base = &w[..w.len() - 2];
        if base.len() >= 3 && (base.ends_with("sh") || base.ends_with("ch") || base.ends_with('x'))
        {
            w.truncate(w.len() - 2);
            return w;
        }
    }
    if w.ends_with('s') {
        let base = &w[..w.len() - 1];
        if base.len() >= 3 && !base.ends_with('s') && !base.ends_with('u') && !base.ends_with('i') {
            w.truncate(w.len() - 1);
            return w;
        }
    }
    if w.ends_with("ing") && w.len() >= 6 {
        w.truncate(w.len() - 3);
        return w;
    }
    if w.ends_with("ed") && w.len() >= 5 {
        w.truncate(w.len() - 2);
        return w;
    }
    w
}

/// Normalizes text into a canonical token sequence: lowercase word tokens,
/// stopwords removed, light stemming applied.
///
/// # Examples
///
/// ```
/// use rememberr_textkit::normalize;
///
/// assert_eq!(
///     normalize("The X87 FDP Value May be Saved Incorrectly"),
///     normalize("X87 FDP values might be saved incorrectly"),
/// );
/// ```
pub fn normalize(text: &str) -> Vec<String> {
    word_tokens(text)
        .into_iter()
        .filter(|w| !is_stopword(w))
        .map(stem_owned)
        .collect()
}

/// Normalized text joined with single spaces — the canonical title form the
/// Intel duplicate detector keys on.
pub fn normalized_key(text: &str) -> String {
    normalize(text).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn stopwords_detected() {
        assert!(is_stopword("the"));
        assert!(is_stopword("may"));
        assert!(!is_stopword("processor"));
    }

    #[test]
    fn stemming_rules() {
        assert_eq!(stem("registers"), "register");
        assert_eq!(stem("stores"), "store");
        assert_eq!(stem("caches"), "cach"); // via bare-s rule after "es" guard
        assert_eq!(stem("branches"), "branch");
        assert_eq!(stem("retries"), "retry");
        assert_eq!(stem("crossing"), "cross");
        assert_eq!(stem("saved"), "sav");
        assert_eq!(stem("processor's"), "processor");
        // Guards: short words and awkward endings survive.
        assert_eq!(stem("bus"), "bus");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("miss"), "miss");
    }

    #[test]
    fn normalize_merges_phrasing_variants() {
        let a = normalized_key("Processor May Hang When Switching Between Caches");
        let b = normalized_key("The processor might hang when switching between the caches");
        assert_eq!(a, b);
    }

    #[test]
    fn normalize_keeps_technical_terms_distinct() {
        assert_ne!(
            normalized_key("PCIe link may degrade"),
            normalized_key("USB link may degrade")
        );
    }

    #[test]
    fn normalized_key_of_empty_is_empty() {
        assert_eq!(normalized_key(""), "");
        assert_eq!(normalized_key("the of and"), "");
    }

    #[test]
    fn stem_owned_matches_stem_on_rule_boundaries() {
        for w in [
            "",
            "s",
            "es",
            "ies",
            "sses",
            "ing",
            "ed",
            "'s",
            "ties",
            "dies",
            "yes",
            "uses",
            "misses",
            "boxes",
            "riches",
            "wishes",
            "caches",
            "registers",
            "crossing",
            "saved",
            "bus",
            "miss",
            "radius",
            "axis",
            "sing",
            "ring",
            "bed",
            "red",
            "seed",
            "processor's",
        ] {
            assert_eq!(stem_owned(w.to_string()), stem(w), "word {w:?}");
        }
    }

    proptest::proptest! {
        /// `stem_owned` is a pure allocation optimization: it must agree
        /// with the reference [`stem`] on every input.
        #[test]
        fn stem_owned_is_stem(base in "[a-z']{0,10}", pick in 0usize..8) {
            const SUFFIXES: [&str; 8] = ["", "'s", "ies", "sses", "es", "s", "ing", "ed"];
            let w = format!("{base}{}", SUFFIXES[pick]);
            proptest::prop_assert_eq!(stem_owned(w.clone()), stem(&w));
        }
    }
}
