//! Span-based syntax highlighting of erratum text.
//!
//! The paper's annotators were guided by "a syntax highlighting engine with
//! regular expressions to emphasize parts of the errata descriptions
//! relevant to a given category". This module reproduces that tool: given a
//! [`PatternSet`] keyed by category labels, it produces merged, labelled
//! highlight spans and can render them as plain-text markup or ANSI color.

use std::collections::BTreeMap;

use crate::pattern::{PatternSet, PreparedText, Span};

/// A highlighted region: the byte span and the labels that apply to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Highlight {
    /// Byte span in the source text.
    pub span: Span,
    /// Sorted, deduplicated labels whose patterns matched this region.
    pub labels: Vec<String>,
}

/// Computes merged highlights for `text` under `patterns`.
///
/// Overlapping or adjacent spans with any shared coverage are merged; the
/// merged region carries the union of labels. Results are sorted by start
/// offset.
pub fn highlights(patterns: &PatternSet, text: &str) -> Vec<Highlight> {
    highlights_prepared(patterns, &PreparedText::new(text))
}

/// [`highlights`] over text that is already tokenized, so callers holding a
/// [`PreparedText`] (for example from an [`crate::AnalyzedCorpus`]) skip the
/// re-tokenization. Spans index into `prepared.source()`.
pub fn highlights_prepared(patterns: &PatternSet, prepared: &PreparedText) -> Vec<Highlight> {
    highlights_prepared_filtered(patterns, prepared, |_| true)
}

/// [`highlights_prepared`] restricted to the patterns whose set index
/// passes `keep`.
///
/// Non-matching patterns contribute no spans, so any predicate that keeps
/// every *matching* pattern — such as `is_match` over a lossless
/// [`crate::RuleMatcher`] pre-pass whose pattern ids align with the set —
/// produces output identical to the unfiltered call while skipping the
/// positional scans that would come up empty.
pub fn highlights_prepared_filtered(
    patterns: &PatternSet,
    prepared: &PreparedText,
    keep: impl Fn(usize) -> bool,
) -> Vec<Highlight> {
    let mut raw: Vec<(Span, &str)> = patterns
        .find_spans_filtered(prepared, keep)
        .into_iter()
        .map(|(label, span)| (span, label))
        .collect();
    raw.sort_by_key(|(span, _)| (span.start, span.end));

    let mut merged: Vec<(Span, BTreeMap<String, ()>)> = Vec::new();
    for (span, label) in raw {
        match merged.last_mut() {
            Some((last, labels)) if span.start <= last.end => {
                last.end = last.end.max(span.end);
                labels.insert(label.to_string(), ());
            }
            _ => {
                let mut labels = BTreeMap::new();
                labels.insert(label.to_string(), ());
                merged.push((span, labels));
            }
        }
    }

    merged
        .into_iter()
        .map(|(span, labels)| Highlight {
            span,
            labels: labels.into_keys().collect(),
        })
        .collect()
}

/// Renders highlights as inline markup: `[label1,label2|matched text]`.
///
/// This is the reviewable form used in reports and tests; terminals get
/// [`render_ansi`].
pub fn render_markup(text: &str, highlights: &[Highlight]) -> String {
    let mut out = String::with_capacity(text.len() + highlights.len() * 16);
    let mut pos = 0;
    for h in highlights {
        out.push_str(&text[pos..h.span.start]);
        out.push('[');
        out.push_str(&h.labels.join(","));
        out.push('|');
        out.push_str(&text[h.span.start..h.span.end]);
        out.push(']');
        pos = h.span.end;
    }
    out.push_str(&text[pos..]);
    out
}

/// Renders highlights with ANSI reverse-video escapes for terminals.
pub fn render_ansi(text: &str, highlights: &[Highlight]) -> String {
    let mut out = String::with_capacity(text.len() + highlights.len() * 8);
    let mut pos = 0;
    for h in highlights {
        out.push_str(&text[pos..h.span.start]);
        out.push_str("\x1b[7m");
        out.push_str(&text[h.span.start..h.span.end]);
        out.push_str("\x1b[0m");
        pos = h.span.end;
    }
    out.push_str(&text[pos..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_patterns() -> PatternSet {
        let mut set = PatternSet::new();
        set.add_source("Trg_POW_pwc", "power <2> state|states")
            .unwrap();
        set.add_source("Trg_EXT_rst", "warm|cold reset").unwrap();
        set.add_source("Eff_HNG_hng", "hang|hangs").unwrap();
        set
    }

    #[test]
    fn non_overlapping_highlights() {
        let text = "After a warm reset the processor may hang.";
        let hs = highlights(&demo_patterns(), text);
        assert_eq!(hs.len(), 2);
        assert_eq!(&text[hs[0].span.start..hs[0].span.end], "warm reset");
        assert_eq!(hs[0].labels, vec!["Trg_EXT_rst"]);
        assert_eq!(&text[hs[1].span.start..hs[1].span.end], "hang");
    }

    #[test]
    fn overlapping_spans_merge_with_label_union() {
        let mut set = PatternSet::new();
        set.add_source("a", "power state").unwrap();
        set.add_source("b", "state transition").unwrap();
        let text = "during a power state transition";
        let hs = highlights(&set, text);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].labels, vec!["a", "b"]);
        assert_eq!(
            &text[hs[0].span.start..hs[0].span.end],
            "power state transition"
        );
    }

    #[test]
    fn markup_rendering() {
        let text = "the processor may hang now";
        let hs = highlights(&demo_patterns(), text);
        let rendered = render_markup(text, &hs);
        assert_eq!(rendered, "the processor may [Eff_HNG_hng|hang] now");
    }

    #[test]
    fn ansi_rendering_wraps_matches() {
        let text = "may hang";
        let hs = highlights(&demo_patterns(), text);
        let rendered = render_ansi(text, &hs);
        assert!(rendered.contains("\x1b[7mhang\x1b[0m"));
    }

    #[test]
    fn no_matches_returns_text_verbatim() {
        let text = "nothing interesting here";
        let hs = highlights(&demo_patterns(), text);
        assert!(hs.is_empty());
        assert_eq!(render_markup(text, &hs), text);
        assert_eq!(render_ansi(text, &hs), text);
    }

    #[test]
    fn highlights_are_sorted_and_disjoint() {
        let text = "hang after power state change then warm reset then hang";
        let hs = highlights(&demo_patterns(), text);
        for pair in hs.windows(2) {
            assert!(pair[0].span.end <= pair[1].span.start);
        }
    }
}
