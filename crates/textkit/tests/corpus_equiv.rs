//! `AnalyzedCorpus` equivalence and determinism: for random documents the
//! shared single-pass arena must reproduce exactly what the per-stage
//! pipeline derives on its own — fresh `PreparedText` tokenization of the
//! full text, `TitleKey::new` over the title alone, and `Signature`s
//! interned through a fresh interner in document order — and every result,
//! including the interned ids, must be identical at any worker count.

use std::num::NonZeroUsize;

use proptest::prelude::*;
use rememberr_textkit::{AnalyzedCorpus, DocText, Interner, PreparedText, Signature, TitleKey};

/// Words over a small vocabulary mixed with stopwords, numbers, hex
/// literals and hyphenated/identifier forms, so normalization, stemming
/// and token classification all get exercised.
fn word_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-e]{1,6}",
        "[a-e]{1,6}",
        Just("the".to_string()),
        Just("may".to_string()),
        Just("processors".to_string()),
        Just("0x1F".to_string()),
        Just("C0010063h".to_string()),
        Just("MCx_STATUS".to_string()),
        Just("virtual-8086".to_string()),
        "[0-9]{1,3}",
    ]
}

fn line_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(word_strategy(), 0..8).prop_map(|words| words.join(" "))
}

#[derive(Debug, Clone)]
struct Doc {
    title: String,
    body: String,
    analyze_title: bool,
}

fn doc_strategy() -> impl Strategy<Value = Doc> {
    (line_strategy(), line_strategy(), any::<bool>()).prop_map(|(title, body, analyze_title)| Doc {
        title,
        body,
        analyze_title,
    })
}

fn analyze(docs: &[Doc]) -> AnalyzedCorpus {
    AnalyzedCorpus::analyze(docs, |d| DocText {
        text: format!("{}\n{}", d.title, d.body),
        title_len: d.title.len(),
        analyze_title: d.analyze_title,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arena_matches_per_stage_derivations_at_every_worker_count(
        docs in prop::collection::vec(doc_strategy(), 0..20),
    ) {
        // Per-stage oracle: each feature derived independently, the way
        // the pre-arena pipeline stages did.
        let mut fresh_interner = Interner::new();
        let mut want: Vec<(PreparedText, Option<(TitleKey, Signature)>)> = Vec::new();
        for d in &docs {
            let text = PreparedText::new(&format!("{}\n{}", d.title, d.body));
            let title = d.analyze_title.then(|| {
                let key = TitleKey::new(&d.title);
                let sig = Signature::from_title_key(&key, &mut fresh_interner);
                (key, sig)
            });
            want.push((text, title));
        }

        for jobs in [1usize, 2, 8] {
            rememberr_par::set_jobs(NonZeroUsize::new(jobs));
            let corpus = analyze(&docs);
            rememberr_par::set_jobs(None);

            prop_assert_eq!(corpus.len(), docs.len());
            prop_assert_eq!(corpus.interner().len(), fresh_interner.len());
            for (i, (text, title)) in want.iter().enumerate() {
                prop_assert_eq!(corpus.text(i).source(), text.source());
                prop_assert!(corpus.text(i).words().eq(text.words()));
                prop_assert_eq!(corpus.text(i).token_spans(), text.token_spans());
                match title {
                    Some((key, sig)) => {
                        prop_assert_eq!(corpus.title_key(i), Some(key), "doc {} jobs {}", i, jobs);
                        prop_assert_eq!(corpus.signature(i), Some(sig), "doc {} jobs {}", i, jobs);
                        prop_assert_eq!(corpus.doc(i).token_ids(), Some(sig.token_ids()));
                        prop_assert_eq!(corpus.doc(i).bigrams(), Some(sig.bigrams()));
                    }
                    None => {
                        prop_assert!(corpus.title_key(i).is_none());
                        prop_assert!(corpus.signature(i).is_none());
                    }
                }
            }
        }
    }
}
