//! Equivalence of the indexed multi-pattern matcher and the per-pattern
//! positional scan: for random DSL pattern libraries and random texts, the
//! two must agree on `is_match`, the first match span, and the full span
//! list of every pattern — and pruned patterns must genuinely never match
//! (losslessness of anchor-based candidate generation).

use proptest::prelude::*;
use rememberr_textkit::{Pattern, PreparedText, RuleMatcher};

/// A random DSL element: literals, prefixes, alternations, gaps, numbers
/// and wildcards, over a small vocabulary so collisions actually happen.
fn elem_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-e]{1,4}",
        "[a-e]{1,4}",
        "[a-e]{1,4}",
        "[a-e]{1,3}\\*",
        "[a-e]{1,3}\\|[a-e]{1,3}",
        Just("#".to_string()),
        Just("?".to_string()),
        (0usize..3).prop_map(|n| format!("<{n}>")),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(elem_strategy(), 1..4).prop_map(|elems| elems.join(" "))
}

/// Haystacks over the same vocabulary plus numbers and out-of-vocabulary
/// words, so texts hit some anchors and miss others.
fn haystack_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            "[a-e]{1,4}",
            "[a-e]{1,4}",
            "[a-e]{1,4}",
            "[0-9]{1,3}",
            "[v-z]{1,4}",
        ],
        0..30,
    )
    .prop_map(|words| words.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn indexed_and_exhaustive_agree_on_everything(
        sources in prop::collection::vec(pattern_strategy(), 0..12),
        haystack in haystack_strategy(),
    ) {
        let patterns: Vec<Pattern> = sources
            .iter()
            .filter_map(|s| Pattern::parse(s).ok())
            .collect();
        let count = patterns.len();
        let matcher = RuleMatcher::compile(patterns.clone());
        let text = PreparedText::new(&haystack);

        let matches = matcher.match_doc(&text);
        prop_assert_eq!(matches.evaluated + matches.pruned, count as u64);

        let all = matcher.find_all(&text);
        for (id, pattern) in patterns.iter().enumerate() {
            // Oracle: the original per-pattern positional scan.
            let oracle_spans = pattern.find_in(&text);
            let oracle_first = oracle_spans.first().copied();
            prop_assert_eq!(
                matches.is_match(id),
                pattern.is_match(&text),
                "is_match diverges for {}", pattern.source()
            );
            prop_assert_eq!(
                matches.first_span(id),
                oracle_first,
                "first span diverges for {}", pattern.source()
            );
            prop_assert_eq!(
                &all[id],
                &oracle_spans,
                "span list diverges for {}", pattern.source()
            );
        }
    }

    #[test]
    fn pruned_patterns_never_match(
        sources in prop::collection::vec(pattern_strategy(), 1..12),
        haystack in haystack_strategy(),
    ) {
        let patterns: Vec<Pattern> = sources
            .iter()
            .filter_map(|s| Pattern::parse(s).ok())
            .collect();
        let matcher = RuleMatcher::compile(patterns.clone());
        let text = PreparedText::new(&haystack);
        let matches = matcher.match_doc(&text);
        // Losslessness: every matching pattern must have been a candidate,
        // i.e. prune count can never exceed the non-matching population.
        let matching = patterns.iter().filter(|p| p.is_match(&text)).count() as u64;
        prop_assert!(matches.evaluated >= matching);
        for (id, pattern) in patterns.iter().enumerate() {
            if pattern.is_match(&text) {
                prop_assert!(
                    matches.is_match(id),
                    "pattern {} matches but was pruned", pattern.source()
                );
            }
        }
    }

    #[test]
    fn snippets_come_from_the_owned_source(
        sources in prop::collection::vec(pattern_strategy(), 1..8),
        haystack in haystack_strategy(),
    ) {
        let patterns: Vec<Pattern> = sources
            .iter()
            .filter_map(|s| Pattern::parse(s).ok())
            .collect();
        let matcher = RuleMatcher::compile(patterns);
        let text = PreparedText::from_string(haystack.clone());
        let matches = matcher.match_doc(&text);
        for id in 0..matcher.len() {
            if let Some(span) = matches.first_span(id) {
                prop_assert_eq!(text.snippet(span), &haystack[span.start..span.end]);
            }
        }
    }
}
