//! Fuzz-style robustness tests for the phrase-pattern engine: arbitrary DSL
//! sources and arbitrary haystacks must never panic, and successful parses
//! must behave consistently.

use proptest::prelude::*;
use rememberr_textkit::{Pattern, PreparedText};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parsing_never_panics(source in ".{0,60}") {
        let _ = Pattern::parse(&source);
    }

    #[test]
    fn matching_never_panics(
        source in "[a-z<>#?|* ]{1,40}",
        haystack in "[ -~]{0,200}",
    ) {
        if let Ok(pattern) = Pattern::parse(&source) {
            let prepared = PreparedText::new(&haystack);
            let _ = pattern.is_match(&prepared);
            for span in pattern.find_in(&prepared) {
                // Spans must be valid, ordered ranges into the haystack.
                prop_assert!(span.start <= span.end);
                prop_assert!(span.end <= haystack.len());
                prop_assert!(haystack.is_char_boundary(span.start));
                prop_assert!(haystack.is_char_boundary(span.end));
            }
        }
    }

    #[test]
    fn find_in_spans_are_disjoint_and_sorted(
        words in prop::collection::vec("[a-d]{1,3}", 0..30),
        needle in "[a-d]{1,3}",
    ) {
        let haystack = words.join(" ");
        let pattern = Pattern::parse(&needle).expect("single literal parses");
        let prepared = PreparedText::new(&haystack);
        let spans = pattern.find_in(&prepared);
        for pair in spans.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
        // Count agrees with direct token counting.
        let expected = words.iter().filter(|w| **w == needle).count();
        prop_assert_eq!(spans.len(), expected);
    }

    #[test]
    fn is_match_agrees_with_find_in(
        source in "[a-c]{1,3}( [a-c]{1,3}){0,2}",
        haystack in "[a-c ]{0,60}",
    ) {
        if let Ok(pattern) = Pattern::parse(&source) {
            let prepared = PreparedText::new(&haystack);
            prop_assert_eq!(pattern.is_match(&prepared), !pattern.find_in(&prepared).is_empty());
        }
    }

    #[test]
    fn gaps_are_upper_bounds(
        gap in 0usize..4,
        filler in prop::collection::vec("[x-z]{1,3}", 0..6),
    ) {
        let source = format!("alpha <{gap}> omega");
        let pattern = Pattern::parse(&source).expect("gap pattern parses");
        let haystack = format!("alpha {} omega", filler.join(" "));
        let matches = pattern.matches(&haystack);
        prop_assert_eq!(matches, filler.len() <= gap, "{}", haystack);
    }
}
