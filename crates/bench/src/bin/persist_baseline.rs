//! Persistence baseline: measures save/load wall-clock and snapshot size
//! for both snapshot formats across corpus scales and pins the result as
//! `BENCH_persist.json`.
//!
//! ```text
//! persist_baseline [--out FILE] [--check FILE]
//! ```
//!
//! * `--out FILE` — write the measured baseline (corpus scale → bytes,
//!   save and load wall-clock per format) as JSON.
//! * `--check FILE` — read a previously committed baseline and fail
//!   (exit 1) if the binary snapshot now exceeds its committed byte
//!   ceiling at any scale, is not smaller than JSONL, or loads less than
//!   3x faster than JSONL at the full paper scale. Snapshot bytes are a
//!   pure function of the seeded corpus and the format, so any growth is
//!   a real regression; the speedup gate re-measures wall-clock fresh.
//!
//! Every run cross-checks correctness regardless of flags: the binary
//! roundtrip must reproduce the database exactly (JSONL is the oracle),
//! re-exported JSONL after a binary roundtrip must be byte-identical,
//! and the binary bytes must be identical at jobs ∈ {1, 2, 8}.

use std::num::NonZeroUsize;
use std::time::Instant;

use rememberr::{load, save_as, Database, SnapshotFormat};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use serde::Value;

const SCALES: [f64; 3] = [0.25, 0.5, 1.0];

/// Wall-clock repetitions; the minimum is reported, which is the
/// standard noise-floor estimator for single-process benchmarks.
const REPS: usize = 5;

/// The ≥3x load-speedup bar `--check` holds the paper scale to.
const LOAD_SPEEDUP_BAR: f64 = 3.0;

struct Measurement {
    bytes: u64,
    save_ms: f64,
    load_ms: f64,
}

fn snapshot_bytes(db: &Database, format: SnapshotFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    save_as(db, &mut buf, format).expect("in-memory save succeeds");
    buf
}

fn measure(db: &Database, format: SnapshotFormat) -> (Measurement, Vec<u8>) {
    let bytes = snapshot_bytes(db, format);
    let mut save_ms = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let buf = snapshot_bytes(db, format);
        save_ms = save_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(buf, bytes, "{format}: save is deterministic");
    }
    let mut load_ms = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let back = load(bytes.as_slice()).expect("snapshot loads");
        load_ms = load_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(&back, db, "{format}: roundtrip reproduces the database");
    }
    (
        Measurement {
            bytes: bytes.len() as u64,
            save_ms,
            load_ms,
        },
        bytes,
    )
}

fn measurement_value(m: &Measurement) -> Value {
    Value::Object(vec![
        ("bytes".to_string(), serde::Serialize::to_value(&m.bytes)),
        (
            "save_ms".to_string(),
            serde::Serialize::to_value(&m.save_ms),
        ),
        (
            "wall_clock_ms".to_string(),
            serde::Serialize::to_value(&m.load_ms),
        ),
    ])
}

fn main() {
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a file")),
            "--check" => check = Some(args.next().expect("--check needs a file")),
            other => {
                eprintln!("usage: persist_baseline [--out FILE] [--check FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let mut scale_values = Vec::new();
    let mut measured: Vec<(f64, Measurement, Measurement)> = Vec::new();
    for scale in SCALES {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );

        let (jsonl, jsonl_bytes) = measure(&db, SnapshotFormat::Jsonl);
        let (binary, binary_bytes) = measure(&db, SnapshotFormat::Binary);

        // Oracle cross-checks: the binary roundtrip must re-export
        // byte-identical JSONL, and the binary bytes must not depend on
        // the worker count.
        let roundtripped = load(binary_bytes.as_slice()).expect("binary snapshot loads");
        let reexport = snapshot_bytes(&roundtripped, SnapshotFormat::Jsonl);
        assert_eq!(
            reexport, jsonl_bytes,
            "scale {scale}: JSONL re-export after a binary roundtrip diverged"
        );
        for jobs in [1usize, 2, 8] {
            rememberr_par::set_jobs(NonZeroUsize::new(jobs));
            let buf = snapshot_bytes(&db, SnapshotFormat::Binary);
            assert_eq!(
                buf, binary_bytes,
                "scale {scale}: binary snapshot differs at jobs={jobs}"
            );
        }
        rememberr_par::set_jobs(None);

        let speedup = jsonl.load_ms / binary.load_ms;
        println!(
            "scale {scale:>4}: entries {:>5} | jsonl {:>8} bytes (save {:>6.1} ms, load {:>6.1} ms) \
             | binary {:>8} bytes (save {:>6.1} ms, load {:>6.1} ms) | load {speedup:.1}x faster",
            db.len(),
            jsonl.bytes,
            jsonl.save_ms,
            jsonl.load_ms,
            binary.bytes,
            binary.save_ms,
            binary.load_ms,
        );
        scale_values.push(Value::Object(vec![
            ("scale".to_string(), serde::Serialize::to_value(&scale)),
            ("entries".to_string(), serde::Serialize::to_value(&db.len())),
            ("jsonl".to_string(), measurement_value(&jsonl)),
            ("binary".to_string(), measurement_value(&binary)),
        ]));
        measured.push((scale, jsonl, binary));
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let scales = baseline
            .get("scales")
            .and_then(Value::as_array)
            .expect("baseline has a scales array");
        let mut failed = false;
        for recorded in scales {
            let scale: f64 =
                serde::Deserialize::from_value(recorded.get("scale").expect("scale field"))
                    .expect("numeric scale");
            let ceiling: u64 = serde::Deserialize::from_value(
                recorded
                    .get("binary")
                    .and_then(|v| v.get("bytes"))
                    .expect("binary.bytes field"),
            )
            .expect("numeric bytes");
            let Some((_, jsonl, binary)) =
                measured.iter().find(|(s, _, _)| (s - scale).abs() < 1e-9)
            else {
                continue;
            };
            if binary.bytes > ceiling {
                eprintln!(
                    "REGRESSION at scale {scale}: binary snapshot {} bytes exceeds the \
                     committed ceiling {ceiling}",
                    binary.bytes
                );
                failed = true;
            }
            if binary.bytes >= jsonl.bytes {
                eprintln!(
                    "REGRESSION at scale {scale}: binary snapshot {} bytes is not smaller \
                     than JSONL {}",
                    binary.bytes, jsonl.bytes
                );
                failed = true;
            }
            if (scale - 1.0).abs() < 1e-9 {
                let speedup = jsonl.load_ms / binary.load_ms;
                if speedup < LOAD_SPEEDUP_BAR {
                    eprintln!(
                        "REGRESSION at scale {scale}: binary load is only {speedup:.2}x faster \
                         than JSONL (bar: {LOAD_SPEEDUP_BAR}x)"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check against {path}: binary bytes within the committed ceiling, smaller than \
             JSONL, and >= {LOAD_SPEEDUP_BAR}x load speedup at paper scale"
        );
    }

    if let Some(path) = out {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                serde::Serialize::to_value(&"rememberr-bench-persist/v1"),
            ),
            ("scales".to_string(), Value::Array(scale_values)),
        ]);
        let json = serde_json::to_string_pretty(&doc).expect("baseline serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
