//! Rule-matcher baseline: measures both classification matchers across
//! corpus scales and pins the result as `BENCH_classify.json`.
//!
//! ```text
//! classify_baseline [--out FILE] [--check FILE]
//! ```
//!
//! * `--out FILE` — write the measured baseline (corpus scale →
//!   pattern_evals/patterns_pruned/wall-clock per matcher) as JSON.
//! * `--check FILE` — read a previously committed baseline and fail
//!   (exit 1) if the indexed matcher now performs more positional pattern
//!   evaluations than recorded at any scale. Evaluations are a pure
//!   function of the seeded corpus and the rule library, so any increase
//!   is a real regression, not noise; wall-clock is recorded for context
//!   but never checked.
//!
//! The run always cross-checks the two matchers against each other:
//! classified database bytes and `DecisionStats` must agree exactly (the
//! exhaustive per-pattern scan is the correctness oracle for the indexed
//! matcher).

use std::time::Instant;

use rememberr::{save, Database};
use rememberr_classify::{
    classify_database_with, DecisionStats, FourEyesConfig, HumanOracle, MatcherKind, Rules,
};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use serde::Value;

const SCALES: [f64; 3] = [0.25, 0.5, 1.0];

struct Measurement {
    pattern_evals: u64,
    patterns_pruned: u64,
    wall_clock_ms: f64,
    stats: DecisionStats,
    db_bytes: Vec<u8>,
}

fn measure(corpus: &SyntheticCorpus, rules: &Rules, matcher: MatcherKind) -> Measurement {
    let mut db = Database::from_documents(&corpus.structured);
    rememberr_obs::reset();
    rememberr_obs::enable();
    let start = Instant::now();
    let run = classify_database_with(
        &mut db,
        rules,
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
        matcher,
    );
    let wall_clock_ms = start.elapsed().as_secs_f64() * 1e3;
    let snapshot = rememberr_obs::snapshot();
    rememberr_obs::disable();
    rememberr_obs::reset();
    let mut db_bytes = Vec::new();
    save(&db, &mut db_bytes).expect("database serializes");
    Measurement {
        pattern_evals: snapshot.counters["classify.pattern_evals"],
        patterns_pruned: snapshot
            .counters
            .get("classify.patterns_pruned")
            .copied()
            .unwrap_or(0),
        wall_clock_ms,
        stats: run.stats,
        db_bytes,
    }
}

fn measurement_value(m: &Measurement) -> Value {
    Value::Object(vec![
        (
            "pattern_evals".to_string(),
            serde::Serialize::to_value(&m.pattern_evals),
        ),
        (
            "patterns_pruned".to_string(),
            serde::Serialize::to_value(&m.patterns_pruned),
        ),
        (
            "wall_clock_ms".to_string(),
            serde::Serialize::to_value(&m.wall_clock_ms),
        ),
    ])
}

fn main() {
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a file")),
            "--check" => check = Some(args.next().expect("--check needs a file")),
            other => {
                eprintln!("usage: classify_baseline [--out FILE] [--check FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let rules = Rules::standard();
    let mut scale_values = Vec::new();
    let mut indexed_by_scale: Vec<(f64, u64)> = Vec::new();
    for scale in SCALES {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let indexed = measure(&corpus, &rules, MatcherKind::Indexed);
        let exhaustive = measure(&corpus, &rules, MatcherKind::Exhaustive);

        // Oracle cross-check: identical classification, or the baseline is
        // meaningless.
        assert_eq!(
            indexed.db_bytes, exhaustive.db_bytes,
            "scale {scale}: indexed classification diverged from the exhaustive oracle"
        );
        assert_eq!(indexed.stats, exhaustive.stats);

        let ratio = if indexed.pattern_evals == 0 {
            f64::INFINITY
        } else {
            exhaustive.pattern_evals as f64 / indexed.pattern_evals as f64
        };
        println!(
            "scale {scale:>4}: unique {:>5} | exhaustive {:>8} pattern evals | indexed {:>6} \
             evals ({:>8} pruned) | {ratio:.1}x fewer | {:.1} ms vs {:.1} ms",
            indexed.stats.unique_errata,
            exhaustive.pattern_evals,
            indexed.pattern_evals,
            indexed.patterns_pruned,
            exhaustive.wall_clock_ms,
            indexed.wall_clock_ms,
        );
        indexed_by_scale.push((scale, indexed.pattern_evals));
        scale_values.push(Value::Object(vec![
            ("scale".to_string(), serde::Serialize::to_value(&scale)),
            (
                "unique_errata".to_string(),
                serde::Serialize::to_value(&indexed.stats.unique_errata),
            ),
            ("indexed".to_string(), measurement_value(&indexed)),
            ("exhaustive".to_string(), measurement_value(&exhaustive)),
        ]));
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let scales = baseline
            .get("scales")
            .and_then(Value::as_array)
            .expect("baseline has a scales array");
        let mut failed = false;
        for recorded in scales {
            let scale: f64 =
                serde::Deserialize::from_value(recorded.get("scale").expect("scale field"))
                    .expect("numeric scale");
            let ceiling: u64 = serde::Deserialize::from_value(
                recorded
                    .get("indexed")
                    .and_then(|v| v.get("pattern_evals"))
                    .expect("indexed.pattern_evals field"),
            )
            .expect("numeric pattern_evals");
            let Some(&(_, current)) = indexed_by_scale
                .iter()
                .find(|(s, _)| (s - scale).abs() < 1e-9)
            else {
                continue;
            };
            if current > ceiling {
                eprintln!(
                    "REGRESSION at scale {scale}: indexed pattern_evals {current} exceeds \
                     the committed ceiling {ceiling}"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check against {path}: indexed pattern evals within the committed ceiling");
    }

    if let Some(path) = out {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                serde::Serialize::to_value(&"rememberr-bench-classify/v1"),
            ),
            ("scales".to_string(), Value::Array(scale_values)),
        ]);
        let json = serde_json::to_string_pretty(&doc).expect("baseline serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
