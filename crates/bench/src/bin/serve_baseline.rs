//! Serve-daemon baseline: drives a real loopback load against an
//! in-process `rememberr-serve` server at the paper scale and pins the
//! result as `BENCH_serve.json`.
//!
//! ```text
//! serve_baseline [--out FILE] [--check FILE]
//! ```
//!
//! * `--out FILE` — write the measured baseline (throughput, client-side
//!   latency quantiles, oracle divergences, shed count) as JSON.
//! * `--check FILE` — read a previously committed baseline and fail
//!   (exit 1) if a *deterministic* property regressed: the fresh run must
//!   show zero indexed-vs-scan divergences and must still shed under
//!   deliberate saturation, and the committed file must carry the same
//!   schema. Wall-clock numbers are recorded for context but a fresh
//!   run's clock is never compared against the committed one — machines
//!   differ; `report --bench` gates the committed claims instead.
//!
//! Three phases, all against real sockets:
//!
//! 1. **Oracle** — every battery target is fetched twice, `engine=indexed`
//!    and `engine=scan`; any body difference is a divergence (must be 0).
//! 2. **Throughput** — keep-alive clients (one per worker) cycle the
//!    battery for a fixed request count; latency is measured client-side
//!    per request.
//! 3. **Saturation** — a deliberately tiny server (1 worker, queue depth
//!    1, slow fixture) is overloaded to prove admission control sheds
//!    with 503 instead of queueing without bound.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rememberr::Database;
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{Context, Effect, Trigger};
use rememberr_serve::{ServeConfig, Server};
use serde::Value;

const WORKERS: usize = 4;
const QUEUE_DEPTH: usize = 64;
const REQUEST_TIMEOUT_MS: u64 = 2_000;
/// Keep-alive requests each throughput client sends.
const REQUESTS_PER_CLIENT: usize = 2_500;

/// The mixed query/count battery the load clients cycle through: the
/// selective facet shapes the analysis figures serve, date windows, and a
/// composite, echoing the `query_baseline` battery over HTTP.
fn battery() -> Vec<String> {
    let mut targets = vec![
        "/count?vendor=intel&unique=1".to_string(),
        "/count?vendor=amd&unique=1".to_string(),
        "/query?vendor=intel&workaround=bios&limit=5".to_string(),
        "/count?after=2016-01-01&before=2019-01-01&unique=1".to_string(),
        "/query?annotated=1&min-triggers=2&limit=5".to_string(),
        "/count?fix=no-fix-planned&vendor=amd".to_string(),
    ];
    targets.push(format!(
        "/query?trigger={}&unique=1&limit=5",
        Trigger::ALL[0]
    ));
    targets.push(format!("/count?trigger={}&vendor=intel", Trigger::ALL[3]));
    targets.push(format!("/count?context={}&unique=1", Context::ALL[2]));
    targets.push(format!("/query?effect={}&unique=1&limit=5", Effect::ALL[1]));
    targets.push(format!("/count?effect={}&vendor=amd", Effect::ALL[0]));
    targets.push(format!(
        "/count?trigger={}&effect={}",
        Trigger::ALL[1],
        Effect::ALL[2]
    ));
    targets
}

/// A keep-alive HTTP/1.1 client over one TCP connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    /// One GET on the persistent connection; returns (status, body).
    fn get(&mut self, target: &str) -> (u16, String) {
        write!(self.stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n")
            .expect("request writes");
        // Read to the end of headers, then exactly Content-Length bytes.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk).expect("response reads") {
                0 => panic!("connection closed mid-response ({target})"),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("UTF-8 head");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no status in {head:?}"));
        let length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::to_string)
            })
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no content-length in {head:?}"));
        let body_start = head_end + 4;
        while self.buf.len() < body_start + length {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk).expect("body reads") {
                0 => panic!("connection closed mid-body ({target})"),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body =
            String::from_utf8(self.buf[body_start..body_start + length].to_vec()).expect("UTF-8");
        self.buf.drain(..body_start + length);
        (status, body)
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Builds the paper-scale annotated snapshot on disk; returns (path, len).
fn paper_snapshot() -> (PathBuf, usize) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::paper());
    let mut db = Database::from_documents(&corpus.structured);
    classify_database(
        &mut db,
        &Rules::standard(),
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
    );
    let dir = std::env::temp_dir().join(format!("rememberr-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("paper.jsonl");
    let mut bytes = Vec::new();
    rememberr::save(&db, &mut bytes).expect("snapshot serializes");
    std::fs::write(&path, bytes).expect("snapshot writes");
    (path, db.len())
}

/// Phase 1: every battery target under both engines; a body mismatch is a
/// divergence. Returns (divergences, request pairs compared).
fn oracle_phase(addr: SocketAddr, targets: &[String]) -> (u64, u64) {
    let mut client = Client::connect(addr);
    let mut divergences = 0u64;
    let mut pairs = 0u64;
    for target in targets {
        let sep = if target.contains('?') { '&' } else { '?' };
        let (s1, indexed) = client.get(&format!("{target}{sep}engine=indexed"));
        let (s2, scan) = client.get(&format!("{target}{sep}engine=scan"));
        pairs += 1;
        if s1 != 200 || s2 != 200 || indexed != scan {
            eprintln!("DIVERGENCE on {target}: indexed {s1} {indexed:?} vs scan {s2} {scan:?}");
            divergences += 1;
        }
    }
    (divergences, pairs)
}

/// Phase 2: `WORKERS` keep-alive clients cycle the battery concurrently.
/// Returns (requests, elapsed, sorted per-request latencies).
fn throughput_phase(addr: SocketAddr, targets: &[String]) -> (u64, Duration, Vec<Duration>) {
    let start = Instant::now();
    let handles: Vec<_> = (0..WORKERS)
        .map(|c| {
            let targets = targets.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for i in 0..REQUESTS_PER_CLIENT {
                    // Offset each client so they do not hit the same
                    // target in lockstep.
                    let target = &targets[(i + c * 3) % targets.len()];
                    let sent = Instant::now();
                    let (status, _body) = client.get(target);
                    assert_eq!(status, 200, "{target}");
                    latencies.push(sent.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(WORKERS * REQUESTS_PER_CLIENT);
    for handle in handles {
        latencies.extend(handle.join().expect("client thread"));
    }
    let elapsed = start.elapsed();
    latencies.sort();
    (latencies.len() as u64, elapsed, latencies)
}

/// Phase 3: a 1-worker, depth-1 server with the slow fixture is overrun;
/// admission control must shed at least one connection with 503.
fn saturation_phase(snapshot: &Path) -> u64 {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        request_timeout: Duration::from_millis(REQUEST_TIMEOUT_MS),
        drain_timeout: Duration::from_millis(2_000),
        slow_endpoint: true,
    };
    let server = Server::start(config, snapshot.to_path_buf()).expect("saturation server starts");
    let addr = server.local_addr();
    // Occupy the worker, give the acceptor time to queue it, then fill
    // the depth-1 queue and overflow it.
    let holder = std::thread::spawn(move || Client::connect(addr).get("/slow?ms=600"));
    std::thread::sleep(Duration::from_millis(150));
    let queued = std::thread::spawn(move || Client::connect(addr).get("/healthz"));
    std::thread::sleep(Duration::from_millis(100));
    let mut shed_seen = 0u64;
    for _ in 0..4 {
        let (status, _body) = Client::connect(addr).get("/healthz");
        if status == 503 {
            shed_seen += 1;
        }
    }
    assert_eq!(holder.join().expect("holder").0, 200);
    assert_eq!(queued.join().expect("queued").0, 200);
    let summary = server.stop_and_wait();
    assert_eq!(summary.shed, shed_seen, "summary agrees with client view");
    summary.shed
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a file")),
            "--check" => check = Some(args.next().expect("--check needs a file")),
            other => {
                eprintln!("usage: serve_baseline [--out FILE] [--check FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    // Long-running load: keep counters but not span records.
    rememberr_obs::reset();
    rememberr_obs::enable();
    rememberr_obs::retain_spans(false);

    let (snapshot, entries) = paper_snapshot();
    let targets = battery();

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: WORKERS,
        queue_depth: QUEUE_DEPTH,
        request_timeout: Duration::from_millis(REQUEST_TIMEOUT_MS),
        drain_timeout: Duration::from_millis(2_000),
        slow_endpoint: false,
    };
    let server = Server::start(config, snapshot.clone()).expect("server starts");
    let addr = server.local_addr();

    let (divergences, pairs) = oracle_phase(addr, &targets);
    let (requests, elapsed, latencies) = throughput_phase(addr, &targets);
    let summary = server.stop_and_wait();
    assert_eq!(summary.shed, 0, "load run must not shed below saturation");
    assert_eq!(summary.timeouts, 0, "load run must not time out");

    let throughput = requests as f64 / elapsed.as_secs_f64();
    let p50 = quantile(&latencies, 0.50);
    let p99 = quantile(&latencies, 0.99);
    println!(
        "paper scale: {entries} entries, {WORKERS} workers | {requests} requests in \
         {:.2} s = {throughput:.0} req/s | p50 {:.0} us, p99 {:.0} us | \
         {divergences} divergences over {pairs} oracle pairs",
        elapsed.as_secs_f64(),
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
    );

    let shed = saturation_phase(&snapshot);
    println!("saturation: {shed} connections shed with 503");

    // Deterministic gates of the fresh run itself.
    assert_eq!(divergences, 0, "served indexed engine diverged from scan");
    assert!(shed >= 1, "saturation produced no shed");

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let schema = baseline
            .get("schema")
            .and_then(Value::as_str)
            .expect("baseline has a schema");
        assert_eq!(
            schema, "rememberr-bench-serve/v1",
            "committed baseline carries a different schema"
        );
        let committed_entries: u64 =
            serde::Deserialize::from_value(baseline.get("entries").expect("entries field"))
                .expect("numeric entries");
        assert_eq!(
            committed_entries, entries as u64,
            "paper-scale corpus size changed; regenerate BENCH_serve.json"
        );
        println!(
            "check against {path}: schema and corpus match; fresh run has 0 divergences \
             and sheds under saturation (wall-clock is informational, not compared)"
        );
    }

    if let Some(path) = out {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                serde::Serialize::to_value(&"rememberr-bench-serve/v1"),
            ),
            ("entries".to_string(), serde::Serialize::to_value(&entries)),
            ("workers".to_string(), serde::Serialize::to_value(&WORKERS)),
            (
                "requests".to_string(),
                serde::Serialize::to_value(&requests),
            ),
            (
                "throughput_rps".to_string(),
                serde::Serialize::to_value(&throughput),
            ),
            (
                "p50_us".to_string(),
                serde::Serialize::to_value(&(p50.as_secs_f64() * 1e6)),
            ),
            (
                "p99_us".to_string(),
                serde::Serialize::to_value(&(p99.as_secs_f64() * 1e6)),
            ),
            (
                "request_timeout_ms".to_string(),
                serde::Serialize::to_value(&REQUEST_TIMEOUT_MS),
            ),
            (
                "divergences".to_string(),
                serde::Serialize::to_value(&divergences),
            ),
            (
                "oracle_requests".to_string(),
                serde::Serialize::to_value(&pairs),
            ),
            ("shed".to_string(), serde::Serialize::to_value(&shed)),
        ]);
        let json = serde_json::to_string_pretty(&doc).expect("baseline serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
