//! Query-serving baseline: measures both query engines on a battery of
//! selective facet queries across corpus scales and pins the result as
//! `BENCH_query.json`.
//!
//! ```text
//! query_baseline [--out FILE] [--check FILE]
//! ```
//!
//! * `--out FILE` — write the measured baseline (corpus scale → entries
//!   scanned / wall-clock per engine, plus index-build time) as JSON.
//! * `--check FILE` — read a previously committed baseline and fail
//!   (exit 1) if the indexed engine now scans more entries than recorded
//!   at any scale. Entries scanned is a pure function of the seeded
//!   corpus and the planner, so any increase is a real regression, not
//!   noise; wall-clock is recorded for context but never checked.
//!
//! The battery is the shape every analysis figure serves: per-vendor
//! unique-bug counts for every trigger, context, effect, MSR, and
//! workaround category, plus date-window and composite queries. The run
//! always cross-checks the two engines against each other: result id
//! sequences must match exactly (the scan is the correctness oracle for
//! the planner).

use std::time::Instant;

use rememberr::{Database, Query, QueryEngine, QueryIndex};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use rememberr_model::{
    Context, Date, Effect, ErratumId, FixStatus, MsrName, Trigger, Vendor, WorkaroundCategory,
};
use serde::Value;

const SCALES: [f64; 3] = [0.25, 0.5, 1.0];

/// The figure-shaped battery of selective facet queries.
fn battery() -> Vec<Query> {
    let mut queries = Vec::new();
    let after = Date::new(2016, 1, 1).expect("valid date");
    let before = Date::new(2019, 1, 1).expect("valid date");
    for &vendor in &Vendor::ALL {
        let base = Query::new().vendor(vendor).unique_only();
        for &trigger in Trigger::ALL {
            queries.push(base.clone().trigger(trigger));
        }
        for &context in Context::ALL {
            queries.push(base.clone().context(context));
        }
        for &effect in Effect::ALL {
            queries.push(base.clone().effect(effect));
        }
        for name in MsrName::ALL {
            queries.push(base.clone().msr(name));
        }
        for category in WorkaroundCategory::ALL {
            queries.push(base.clone().workaround(category));
        }
        // Date-window and composite shapes.
        queries.push(base.clone().disclosed_after(after).disclosed_before(before));
        queries.push(
            base.clone()
                .effect(Effect::Hang)
                .fix(FixStatus::NoFixPlanned)
                .disclosed_after(after),
        );
        queries.push(base.clone().trigger(Trigger::Reset).min_triggers(2));
    }
    queries
}

struct Measurement {
    entries_scanned: u64,
    wall_clock_ms: f64,
    index_build_ms: f64,
    ids: Vec<Vec<ErratumId>>,
}

fn measure(db: &Database, queries: &[Query], engine: QueryEngine) -> Measurement {
    rememberr_obs::reset();
    rememberr_obs::enable();
    let (index, index_build_ms) = match engine {
        QueryEngine::Indexed => {
            let start = Instant::now();
            let index = QueryIndex::build(db);
            (Some(index), start.elapsed().as_secs_f64() * 1e3)
        }
        QueryEngine::Scan => (None, 0.0),
    };
    let start = Instant::now();
    let ids: Vec<Vec<ErratumId>> = queries
        .iter()
        .map(|q| {
            let hits = match &index {
                Some(index) => q.run_indexed(index, db),
                None => q.run(db),
            };
            hits.iter().map(|e| e.id()).collect()
        })
        .collect();
    let wall_clock_ms = start.elapsed().as_secs_f64() * 1e3;
    let snap = rememberr_obs::snapshot();
    rememberr_obs::disable();
    Measurement {
        entries_scanned: snap
            .counters
            .get("query.entries_scanned")
            .copied()
            .unwrap_or(0),
        wall_clock_ms,
        index_build_ms,
        ids,
    }
}

fn measurement_value(m: &Measurement) -> Value {
    Value::Object(vec![
        (
            "entries_scanned".to_string(),
            serde::Serialize::to_value(&m.entries_scanned),
        ),
        (
            "wall_clock_ms".to_string(),
            serde::Serialize::to_value(&m.wall_clock_ms),
        ),
        (
            "index_build_ms".to_string(),
            serde::Serialize::to_value(&m.index_build_ms),
        ),
    ])
}

fn main() {
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a file")),
            "--check" => check = Some(args.next().expect("--check needs a file")),
            other => {
                eprintln!("usage: query_baseline [--out FILE] [--check FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let queries = battery();
    let mut scale_values = Vec::new();
    let mut indexed_by_scale: Vec<(f64, u64)> = Vec::new();
    for scale in SCALES {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );

        let indexed = measure(&db, &queries, QueryEngine::Indexed);
        let scan = measure(&db, &queries, QueryEngine::Scan);

        // Oracle cross-check: identical result sequences for every query,
        // or the baseline is meaningless.
        assert_eq!(
            indexed.ids.len(),
            scan.ids.len(),
            "scale {scale}: battery sizes diverged"
        );
        for (i, (a, b)) in indexed.ids.iter().zip(&scan.ids).enumerate() {
            assert_eq!(
                a, b,
                "scale {scale}: query #{i} ({:?}) diverged from the scan oracle",
                queries[i]
            );
        }

        let ratio = if indexed.entries_scanned == 0 {
            f64::INFINITY
        } else {
            scan.entries_scanned as f64 / indexed.entries_scanned as f64
        };
        println!(
            "scale {scale:>4}: entries {:>5}, {} queries | scan {:>8} entries scanned \
             ({:>6.1} ms) | indexed {:>6} ({:>6.1} ms, +{:.1} ms build) | {ratio:.1}x fewer",
            db.len(),
            queries.len(),
            scan.entries_scanned,
            scan.wall_clock_ms,
            indexed.entries_scanned,
            indexed.wall_clock_ms,
            indexed.index_build_ms,
        );
        indexed_by_scale.push((scale, indexed.entries_scanned));
        scale_values.push(Value::Object(vec![
            ("scale".to_string(), serde::Serialize::to_value(&scale)),
            ("entries".to_string(), serde::Serialize::to_value(&db.len())),
            (
                "queries".to_string(),
                serde::Serialize::to_value(&queries.len()),
            ),
            ("indexed".to_string(), measurement_value(&indexed)),
            ("scan".to_string(), measurement_value(&scan)),
        ]));
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let scales = baseline
            .get("scales")
            .and_then(Value::as_array)
            .expect("baseline has a scales array");
        let mut failed = false;
        for recorded in scales {
            let scale: f64 =
                serde::Deserialize::from_value(recorded.get("scale").expect("scale field"))
                    .expect("numeric scale");
            let ceiling: u64 = serde::Deserialize::from_value(
                recorded
                    .get("indexed")
                    .and_then(|v| v.get("entries_scanned"))
                    .expect("indexed.entries_scanned field"),
            )
            .expect("numeric entries_scanned");
            let Some(&(_, current)) = indexed_by_scale
                .iter()
                .find(|(s, _)| (s - scale).abs() < 1e-9)
            else {
                continue;
            };
            if current > ceiling {
                eprintln!(
                    "REGRESSION at scale {scale}: indexed entries_scanned {current} exceeds \
                     the committed ceiling {ceiling}"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check against {path}: indexed entries scanned within the committed ceiling");
    }

    if let Some(path) = out {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                serde::Serialize::to_value(&"rememberr-bench-query/v1"),
            ),
            ("scales".to_string(), Value::Array(scale_values)),
        ]);
        let json = serde_json::to_string_pretty(&doc).expect("baseline serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
