//! End-to-end pipeline baseline: measures the single-pass (shared
//! corpus-analysis arena) pipeline against per-stage re-tokenization across
//! corpus scales and pins the result as `BENCH_pipeline.json`.
//!
//! ```text
//! pipeline_baseline [--out FILE] [--check FILE]
//! ```
//!
//! * `--out FILE` — write the measured baseline (corpus scale →
//!   tokenize-calls/wall-clock per mode) as JSON.
//! * `--check FILE` — read a previously committed baseline and fail
//!   (exit 1) if the one-pass mode now tokenizes more often than recorded
//!   at any scale. Tokenize calls are a pure function of the seeded corpus
//!   (the shared arena tokenizes each entry exactly once), so any increase
//!   is a real regression, not noise; wall-clock is recorded for context
//!   and gated separately by `report --bench` on the committed file.
//!
//! The run always cross-checks the two modes against each other: database
//! bytes, dedup statistics, decision statistics, and assist summaries must
//! agree exactly (per-stage is the correctness oracle for the shared
//! arena). It also asserts the tentpole property itself: in one-pass mode
//! `textkit.tokenize_calls` equals the number of database entries.

use std::time::Instant;

use rememberr::{save, CandidateGen, Database, DedupStrategy};
use rememberr_analysis::{assist_highlights, assist_highlights_analyzed, FullReport};
use rememberr_classify::{
    classify_database_analyzed, classify_database_with, FourEyesConfig, HumanOracle, MatcherKind,
    Rules,
};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use serde::Value;

const SCALES: [f64; 3] = [0.25, 0.5, 1.0];

/// Pipeline runs per mode at each scale; the reported wall clock is the
/// minimum, the standard way to strip scheduler and allocator noise from
/// a wall-clock measurement on a shared machine. Counters and outputs are
/// deterministic across repeats, so only the timing varies.
const REPEATS: usize = 5;

struct Measurement {
    tokenize_calls: u64,
    wall_clock_ms: f64,
    entries: usize,
    db_bytes: Vec<u8>,
    dedup_stats: rememberr::DedupStats,
    decision_stats: rememberr_classify::DecisionStats,
    assist: rememberr_analysis::AssistSummary,
}

/// Runs one full pipeline (documents → dedup → classify → assist →
/// report) in the given mode, measuring wall clock and tokenizations.
/// Corpus generation stays outside the measured window: both modes consume
/// the same pre-built documents.
fn measure(corpus: &SyntheticCorpus, rules: &Rules, one_pass: bool) -> Measurement {
    rememberr_obs::reset();
    rememberr_obs::enable();
    let start = Instant::now();
    let (db, run, assist) = if one_pass {
        let (mut db, arena) = Database::from_documents_analyzed(
            &corpus.structured,
            DedupStrategy::default(),
            CandidateGen::default(),
        );
        let run = classify_database_analyzed(
            &mut db,
            rules,
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
            MatcherKind::default(),
            &arena,
        );
        let assist = assist_highlights_analyzed(&db, rules, &arena);
        (db, run, assist)
    } else {
        let mut db = Database::from_documents_opts(
            &corpus.structured,
            DedupStrategy::default(),
            CandidateGen::default(),
        );
        let run = classify_database_with(
            &mut db,
            rules,
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
            MatcherKind::default(),
        );
        let assist = assist_highlights(&db, rules);
        (db, run, assist)
    };
    let report = FullReport::build(&db, run.four_eyes.as_ref(), None);
    drop(report);
    let wall_clock_ms = start.elapsed().as_secs_f64() * 1e3;
    let snap = rememberr_obs::snapshot();
    rememberr_obs::disable();
    let tokenize_calls = snap
        .counters
        .get("textkit.tokenize_calls")
        .copied()
        .unwrap_or(0);

    let mut db_bytes = Vec::new();
    save(&db, &mut db_bytes).expect("database serializes");
    Measurement {
        tokenize_calls,
        wall_clock_ms,
        entries: db.len(),
        db_bytes,
        dedup_stats: db.dedup_stats(),
        decision_stats: run.stats,
        assist,
    }
}

fn measurement_value(m: &Measurement) -> Value {
    Value::Object(vec![
        (
            "tokenize_calls".to_string(),
            serde::Serialize::to_value(&m.tokenize_calls),
        ),
        (
            "wall_clock_ms".to_string(),
            serde::Serialize::to_value(&m.wall_clock_ms),
        ),
    ])
}

fn main() {
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a file")),
            "--check" => check = Some(args.next().expect("--check needs a file")),
            other => {
                eprintln!("usage: pipeline_baseline [--out FILE] [--check FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let mut scale_values = Vec::new();
    let mut one_pass_by_scale: Vec<(f64, u64)> = Vec::new();
    let rules = Rules::standard();
    for scale in SCALES {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        // Interleave the modes so slow phases of the host machine (page
        // cache pressure, background work) hit both evenly, and keep the
        // minimum wall clock per mode.
        let mut per_stage = measure(&corpus, &rules, false);
        let mut one_pass = measure(&corpus, &rules, true);
        for _ in 1..REPEATS {
            let p = measure(&corpus, &rules, false);
            if p.wall_clock_ms < per_stage.wall_clock_ms {
                per_stage = p;
            }
            let o = measure(&corpus, &rules, true);
            if o.wall_clock_ms < one_pass.wall_clock_ms {
                one_pass = o;
            }
        }

        // Oracle cross-check: identical output, or the baseline is
        // meaningless.
        assert_eq!(
            one_pass.db_bytes, per_stage.db_bytes,
            "scale {scale}: one-pass database bytes diverged from per-stage"
        );
        assert_eq!(one_pass.dedup_stats, per_stage.dedup_stats);
        assert_eq!(one_pass.decision_stats, per_stage.decision_stats);
        assert_eq!(one_pass.assist, per_stage.assist);
        // The tentpole property: the shared arena tokenizes each erratum
        // exactly once across dedup, classify, and the assist.
        assert_eq!(
            one_pass.tokenize_calls, one_pass.entries as u64,
            "scale {scale}: one-pass mode re-tokenized (calls != entries)"
        );

        let ratio = if one_pass.tokenize_calls == 0 {
            f64::INFINITY
        } else {
            per_stage.tokenize_calls as f64 / one_pass.tokenize_calls as f64
        };
        println!(
            "scale {scale:>4}: entries {:>5} | per_stage {:>6} tokenize calls ({:>7.1} ms) | \
             one_pass {:>5} ({:>7.1} ms) | {ratio:.1}x fewer",
            one_pass.entries,
            per_stage.tokenize_calls,
            per_stage.wall_clock_ms,
            one_pass.tokenize_calls,
            one_pass.wall_clock_ms,
        );
        one_pass_by_scale.push((scale, one_pass.tokenize_calls));
        scale_values.push(Value::Object(vec![
            ("scale".to_string(), serde::Serialize::to_value(&scale)),
            (
                "entries".to_string(),
                serde::Serialize::to_value(&one_pass.entries),
            ),
            ("one_pass".to_string(), measurement_value(&one_pass)),
            ("per_stage".to_string(), measurement_value(&per_stage)),
        ]));
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let scales = baseline
            .get("scales")
            .and_then(Value::as_array)
            .expect("baseline has a scales array");
        let mut failed = false;
        for recorded in scales {
            let scale: f64 =
                serde::Deserialize::from_value(recorded.get("scale").expect("scale field"))
                    .expect("numeric scale");
            let ceiling: u64 = serde::Deserialize::from_value(
                recorded
                    .get("one_pass")
                    .and_then(|v| v.get("tokenize_calls"))
                    .expect("one_pass.tokenize_calls field"),
            )
            .expect("numeric tokenize_calls");
            let Some(&(_, current)) = one_pass_by_scale
                .iter()
                .find(|(s, _)| (s - scale).abs() < 1e-9)
            else {
                continue;
            };
            if current > ceiling {
                eprintln!(
                    "REGRESSION at scale {scale}: one_pass tokenize_calls {current} exceeds \
                     the committed ceiling {ceiling}"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check against {path}: one_pass tokenize calls within the committed ceiling");
    }

    if let Some(path) = out {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                serde::Serialize::to_value(&"rememberr-bench-pipeline/v1"),
            ),
            ("scales".to_string(), Value::Array(scale_values)),
        ]);
        let json = serde_json::to_string_pretty(&doc).expect("baseline serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
