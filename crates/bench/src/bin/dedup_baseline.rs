//! Dedup candidate-generation baseline: measures both cascade candidate
//! generators across corpus scales and pins the result as `BENCH_dedup.json`.
//!
//! ```text
//! dedup_baseline [--out FILE] [--check FILE]
//! ```
//!
//! * `--out FILE` — write the measured baseline (corpus scale →
//!   comparisons/pruned/wall-clock per generator) as JSON.
//! * `--check FILE` — read a previously committed baseline and fail
//!   (exit 1) if the indexed path now performs more full edit-distance
//!   comparisons than recorded at any scale. Comparisons are a pure
//!   function of the seeded corpus, so any increase is a real regression,
//!   not noise; wall-clock is recorded for context but never checked.
//!
//! The run always cross-checks the two generators against each other:
//! cluster keys and `cascade_merges` must agree exactly (the exhaustive
//! enumerator is the correctness oracle for the indexed path).

use std::time::Instant;

use rememberr::{assign_keys_with, CandidateGen, Database, DedupStrategy};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
use serde::Value;

const SCALES: [f64; 3] = [0.25, 0.5, 1.0];

struct Measurement {
    comparisons_made: u64,
    candidates_pruned: u64,
    cascade_merges: usize,
    wall_clock_ms: f64,
    keys: Vec<Option<u32>>,
}

fn measure(db: &Database, gen: CandidateGen) -> Measurement {
    let mut entries = db.entries().to_vec();
    for e in &mut entries {
        e.key = None;
    }
    let start = Instant::now();
    let stats = assign_keys_with(&mut entries, DedupStrategy::default(), gen);
    let wall_clock_ms = start.elapsed().as_secs_f64() * 1e3;
    Measurement {
        comparisons_made: stats.comparisons_made,
        candidates_pruned: stats.candidates_pruned,
        cascade_merges: stats.cascade_merges,
        wall_clock_ms,
        keys: entries.iter().map(|e| e.key.map(|k| k.value())).collect(),
    }
}

fn measurement_value(m: &Measurement) -> Value {
    Value::Object(vec![
        (
            "comparisons_made".to_string(),
            serde::Serialize::to_value(&m.comparisons_made),
        ),
        (
            "candidates_pruned".to_string(),
            serde::Serialize::to_value(&m.candidates_pruned),
        ),
        (
            "cascade_merges".to_string(),
            serde::Serialize::to_value(&m.cascade_merges),
        ),
        (
            "wall_clock_ms".to_string(),
            serde::Serialize::to_value(&m.wall_clock_ms),
        ),
    ])
}

fn main() {
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a file")),
            "--check" => check = Some(args.next().expect("--check needs a file")),
            other => {
                eprintln!("usage: dedup_baseline [--out FILE] [--check FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let mut scale_values = Vec::new();
    let mut indexed_by_scale: Vec<(f64, u64)> = Vec::new();
    for scale in SCALES {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let db = Database::from_documents(&corpus.structured);
        let indexed = measure(&db, CandidateGen::Indexed);
        let exhaustive = measure(&db, CandidateGen::Exhaustive);

        // Oracle cross-check: identical clustering, or the baseline is
        // meaningless.
        assert_eq!(
            indexed.keys, exhaustive.keys,
            "scale {scale}: indexed clustering diverged from the exhaustive oracle"
        );
        assert_eq!(indexed.cascade_merges, exhaustive.cascade_merges);

        let ratio = if indexed.comparisons_made == 0 {
            f64::INFINITY
        } else {
            exhaustive.comparisons_made as f64 / indexed.comparisons_made as f64
        };
        println!(
            "scale {scale:>4}: entries {:>5} | exhaustive {:>6} comparisons | indexed {:>4} \
             comparisons ({:>5} pruned) | {ratio:.1}x fewer | {:.1} ms vs {:.1} ms",
            db.len(),
            exhaustive.comparisons_made,
            indexed.comparisons_made,
            indexed.candidates_pruned,
            exhaustive.wall_clock_ms,
            indexed.wall_clock_ms,
        );
        indexed_by_scale.push((scale, indexed.comparisons_made));
        scale_values.push(Value::Object(vec![
            ("scale".to_string(), serde::Serialize::to_value(&scale)),
            ("entries".to_string(), serde::Serialize::to_value(&db.len())),
            ("indexed".to_string(), measurement_value(&indexed)),
            ("exhaustive".to_string(), measurement_value(&exhaustive)),
        ]));
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let scales = baseline
            .get("scales")
            .and_then(Value::as_array)
            .expect("baseline has a scales array");
        let mut failed = false;
        for recorded in scales {
            let scale: f64 =
                serde::Deserialize::from_value(recorded.get("scale").expect("scale field"))
                    .expect("numeric scale");
            let ceiling: u64 = serde::Deserialize::from_value(
                recorded
                    .get("indexed")
                    .and_then(|v| v.get("comparisons_made"))
                    .expect("indexed.comparisons_made field"),
            )
            .expect("numeric comparisons_made");
            let Some(&(_, current)) = indexed_by_scale
                .iter()
                .find(|(s, _)| (s - scale).abs() < 1e-9)
            else {
                continue;
            };
            if current > ceiling {
                eprintln!(
                    "REGRESSION at scale {scale}: indexed comparisons_made {current} exceeds \
                     the committed ceiling {ceiling}"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check against {path}: indexed comparisons within the committed ceiling");
    }

    if let Some(path) = out {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                serde::Serialize::to_value(&"rememberr-bench-dedup/v1"),
            ),
            ("scales".to_string(), Value::Array(scale_values)),
        ]);
        let json = serde_json::to_string_pretty(&doc).expect("baseline serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
