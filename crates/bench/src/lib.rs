//! Shared fixtures for the benchmark suite.

use std::sync::OnceLock;

use rememberr::Database;
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_docgen::{CorpusSpec, SyntheticCorpus};

/// The paper-scale corpus, generated once per process.
pub fn paper_corpus() -> &'static SyntheticCorpus {
    static CORPUS: OnceLock<SyntheticCorpus> = OnceLock::new();
    CORPUS.get_or_init(SyntheticCorpus::paper)
}

/// A paper-scale database, keyed but not annotated.
pub fn paper_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| Database::from_documents(&paper_corpus().structured))
}

/// A paper-scale database with full annotations (rules + simulated
/// four-eyes), as every figure bench needs.
pub fn annotated_paper_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let corpus = paper_corpus();
        let mut db = Database::from_documents(&corpus.structured);
        classify_database(
            &mut db,
            &Rules::standard(),
            HumanOracle::Simulated(&corpus.truth),
            &FourEyesConfig::default(),
        );
        db
    })
}

/// A 20%-scale corpus for the more expensive end-to-end benches.
pub fn small_corpus() -> &'static SyntheticCorpus {
    static CORPUS: OnceLock<SyntheticCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| SyntheticCorpus::generate(&CorpusSpec::scaled(0.2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        assert_eq!(paper_db().len(), 2_563);
        assert!(annotated_paper_db()
            .entries()
            .iter()
            .all(|e| e.annotation.is_some()));
        assert!(small_corpus().total_errata() > 100);
    }
}
