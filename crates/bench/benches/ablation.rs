//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! 1. Intel dedup: exact-title-only vs the similarity cascade (cost; the
//!    recall difference is asserted by `tests/ground_truth_eval.rs`).
//! 2. Phrase-pattern engine vs a naive lowercase-substring scan. The naive
//!    scan is faster but *wrong*: it is order- and proximity-insensitive
//!    ("check the machine" false-positives the "machine check" rule), which
//!    is why the compiled engine is the default despite the cost.
//! 3. Relevance pre-filter: prepared-text reuse vs re-tokenizing per rule.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rememberr::{assign_keys, DbEntry, DedupStrategy};
use rememberr_bench::paper_db;
use rememberr_classify::Rules;
use rememberr_textkit::PreparedText;

fn bench_dedup_strategies(c: &mut Criterion) {
    let entries: Vec<DbEntry> = paper_db().entries().to_vec();
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(20);
    for (name, strategy) in [
        ("exact_title_only", DedupStrategy::ExactTitleOnly),
        ("similarity_cascade", DedupStrategy::default()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || entries.clone(),
                |mut e| black_box(assign_keys(&mut e, strategy)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Naive baseline: match each rule by lowercasing the text and searching
/// for each alternative as a substring (what a quick script would do).
fn naive_match(lower_text: &str, pattern_source: &str) -> bool {
    pattern_source.split_whitespace().all(|elem| {
        if elem.starts_with('<') || elem == "#" || elem == "?" {
            return true; // gaps and wildcards trivially "match"
        }
        elem.split('|')
            .any(|alt| lower_text.contains(alt.trim_end_matches('*')))
    })
}

fn bench_pattern_engine(c: &mut Criterion) {
    let rules = Rules::standard();
    let db = paper_db();
    let texts: Vec<String> = db
        .entries()
        .iter()
        .take(200)
        .map(|e| e.erratum.full_text())
        .collect();
    let sources: Vec<String> = rules
        .strong()
        .iter()
        .map(|(_, p)| p.source().to_string())
        .collect();

    let mut group = c.benchmark_group("ablation_pattern_engine");
    group.sample_size(10);
    group.bench_function("compiled_phrase_patterns", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for text in &texts {
                let prepared = PreparedText::new(text);
                for (_, pattern) in rules.strong() {
                    if pattern.is_match(&prepared) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("naive_substring_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for text in &texts {
                let lower = text.to_ascii_lowercase();
                for source in &sources {
                    if naive_match(&lower, source) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_prepared_text_reuse(c: &mut Criterion) {
    let rules = Rules::standard();
    let db = paper_db();
    let texts: Vec<String> = db
        .entries()
        .iter()
        .take(50)
        .map(|e| e.erratum.full_text())
        .collect();

    let mut group = c.benchmark_group("ablation_prepared_text");
    group.sample_size(10);
    group.bench_function("prepare_once_per_erratum", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for text in &texts {
                let prepared = PreparedText::new(text);
                for (_, pattern) in rules.strong() {
                    hits += usize::from(pattern.is_match(&prepared));
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("prepare_per_rule", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for text in &texts {
                for (_, pattern) in rules.strong() {
                    let prepared = PreparedText::new(text);
                    hits += usize::from(pattern.is_match(&prepared));
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dedup_strategies,
    bench_pattern_engine,
    bench_prepared_text_reuse
);
criterion_main!(benches);
