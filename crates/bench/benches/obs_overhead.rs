//! Overhead of the observability layer.
//!
//! The `rememberr-obs` entry points are compiled into every pipeline stage
//! and must be free when collection is off (the default): each one costs a
//! relaxed atomic load and a branch. This group measures that no-op path
//! directly (counter increments, span guards) and through a full extraction
//! run with collection disabled vs enabled, backing the "<2% overhead when
//! disabled" design goal.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rememberr_bench::paper_corpus;
use rememberr_extract::extract_document;

fn bench_noop_primitives(c: &mut Criterion) {
    rememberr_obs::disable();
    rememberr_obs::reset();
    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("count_disabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                rememberr_obs::count("bench.noop_counter", black_box(i));
            }
        })
    });
    group.bench_function("span_disabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _span = rememberr_obs::span(black_box("bench.noop_span"));
            }
        })
    });
    rememberr_obs::enable();
    group.bench_function("count_enabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                rememberr_obs::count("bench.live_counter", black_box(i));
            }
        })
    });
    group.bench_function("span_enabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _span = rememberr_obs::span(black_box("bench.live_span"));
            }
            // Keep the completed-span buffer from growing across samples.
            let _ = rememberr_obs::take_spans();
        })
    });
    rememberr_obs::disable();
    rememberr_obs::reset();
    group.finish();
}

fn bench_instrumented_extraction(c: &mut Criterion) {
    let corpus = paper_corpus();
    let (largest, design) = corpus
        .rendered
        .iter()
        .map(|r| (r.text.as_str(), r.design))
        .max_by_key(|(t, _)| t.len())
        .expect("non-empty corpus");
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    rememberr_obs::disable();
    rememberr_obs::reset();
    group.bench_function("extract_document_obs_disabled", |b| {
        b.iter(|| black_box(extract_document(design, largest).expect("extracts")))
    });
    rememberr_obs::enable();
    group.bench_function("extract_document_obs_enabled", |b| {
        b.iter(|| {
            let out = black_box(extract_document(design, largest).expect("extracts"));
            let _ = rememberr_obs::take_spans();
            out
        })
    });
    rememberr_obs::disable();
    rememberr_obs::reset();
    group.finish();
}

criterion_group!(
    benches,
    bench_noop_primitives,
    bench_instrumented_extraction
);
criterion_main!(benches);
