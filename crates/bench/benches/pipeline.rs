//! Pipeline-stage benchmarks: corpus generation, rendering, extraction,
//! deduplication, classification and persistence — plus the `parallel`
//! group, which sweeps the worker count over the stages the parallel
//! execution layer fans out.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;

use rememberr::{
    assign_keys, assign_keys_with, load, save, save_as, CandidateGen, Database, DbEntry,
    DedupStrategy, Query, QueryIndex, SnapshotFormat,
};
use rememberr_bench::{annotated_paper_db, paper_corpus, paper_db, small_corpus};
use rememberr_classify::{
    classify_database, classify_database_with, classify_erratum, FourEyesConfig, HumanOracle,
    MatcherKind, Rules,
};
use rememberr_docgen::{render_document, CorpusSpec, SyntheticCorpus};
use rememberr_extract::{extract_corpus, extract_document};
use rememberr_model::{Context, Design, Effect, Trigger, Vendor};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("corpus_20pct", |b| {
        let spec = CorpusSpec::scaled(0.2);
        b.iter(|| black_box(SyntheticCorpus::generate(&spec)))
    });
    group.bench_function("corpus_paper_scale", |b| {
        let spec = CorpusSpec::paper();
        b.iter(|| black_box(SyntheticCorpus::generate(&spec)))
    });
    group.bench_function("render_largest_document", |b| {
        let corpus = paper_corpus();
        let (doc, _) = corpus
            .structured
            .iter()
            .zip(&corpus.rendered)
            .max_by_key(|(d, _)| d.len())
            .expect("non-empty corpus");
        b.iter(|| black_box(render_document(doc, &corpus.truth.defects)))
    });
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let corpus = paper_corpus();
    let (largest, design) = corpus
        .rendered
        .iter()
        .map(|r| (r.text.as_str(), r.design))
        .max_by_key(|(t, _)| t.len())
        .expect("non-empty corpus");
    let mut group = c.benchmark_group("extraction");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Bytes(largest.len() as u64));
    group.bench_function("extract_largest_document", |b| {
        b.iter(|| black_box(extract_document(design, largest).expect("extracts")))
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let db = paper_db();
    let entries: Vec<DbEntry> = db.entries().to_vec();
    let mut group = c.benchmark_group("dedup");
    group.sample_size(20);
    group.bench_function("assign_keys_2563_entries", |b| {
        b.iter_batched(
            || entries.clone(),
            |mut e| black_box(assign_keys(&mut e, DedupStrategy::default())),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_dedup_candidates(c: &mut Criterion) {
    // Indexed vs exhaustive cascade candidate generation, sweeping the
    // corpus size. Both points of each pair produce identical clusters
    // (the equivalence suite asserts it); the delta is pure candidate
    // pruning plus similarity fast paths.
    let mut group = c.benchmark_group("dedup_candidates");
    group.sample_size(10);
    for scale in [0.25f64, 0.5, 1.0] {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(scale));
        let entries: Vec<DbEntry> = Database::from_documents(&corpus.structured)
            .entries()
            .to_vec();
        let pct = (scale * 100.0) as u32;
        for (name, gen) in [
            ("indexed", CandidateGen::Indexed),
            ("exhaustive", CandidateGen::Exhaustive),
        ] {
            group.bench_function(&format!("{name}_{pct}pct"), |b| {
                b.iter_batched(
                    || entries.clone(),
                    |mut e| black_box(assign_keys_with(&mut e, DedupStrategy::default(), gen)),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_classify_matcher(c: &mut Criterion) {
    // Indexed vs exhaustive rule matching over the whole library. Both
    // points of each pair produce byte-identical classifications (the
    // equivalence suite asserts it); the delta is pure anchor-token
    // pruning plus single-pass snippet extraction. Pure-auto mode keeps
    // the measurement about matching, not the four-eyes simulation.
    let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.25));
    let rules = Rules::standard();
    let mut group = c.benchmark_group("classify_matcher");
    group.sample_size(10);
    for (name, matcher) in [
        ("indexed", MatcherKind::Indexed),
        ("exhaustive", MatcherKind::Exhaustive),
    ] {
        group.bench_function(&format!("{name}_25pct"), |b| {
            b.iter_batched(
                || Database::from_documents(&corpus.structured),
                |mut db| {
                    black_box(classify_database_with(
                        &mut db,
                        &rules,
                        HumanOracle::None,
                        &FourEyesConfig::default(),
                        matcher,
                    ))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let corpus = paper_corpus();
    let rules = Rules::standard();
    let db = paper_db();
    let mut group = c.benchmark_group("classification");
    group.sample_size(10);
    group.bench_function("classify_one_erratum_all_60_categories", |b| {
        let erratum = &db.entries()[0].erratum;
        b.iter(|| black_box(classify_erratum(&rules, erratum)))
    });
    group.bench_function("classify_database_paper_scale", |b| {
        b.iter_batched(
            || Database::from_documents(&corpus.structured),
            |mut db| {
                black_box(classify_database(
                    &mut db,
                    &rules,
                    HumanOracle::Simulated(&corpus.truth),
                    &FourEyesConfig::default(),
                ))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let db = paper_db();
    let mut serialized = Vec::new();
    save(db, &mut serialized).expect("save succeeds");
    let mut group = c.benchmark_group("persistence");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Bytes(serialized.len() as u64));
    group.bench_function("save_jsonl", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(serialized.len());
            save(db, &mut buf).expect("save succeeds");
            black_box(buf)
        })
    });
    group.bench_function("load_jsonl", |b| {
        b.iter(|| black_box(load(serialized.as_slice()).expect("load succeeds")))
    });
    group.finish();
}

fn bench_persist_snapshot(c: &mut Criterion) {
    // JSONL vs rememberr-bin/v1 on the annotated paper-scale database —
    // the snapshot the query-serving scenarios start from. The binary
    // side pays a string-table build on save and buys back a load with
    // no per-record text parsing; `persist_baseline` pins the ratio.
    let db = annotated_paper_db();
    let mut group = c.benchmark_group("persist_snapshot");
    group.sample_size(20);
    for (save_name, load_name, format) in [
        ("save_jsonl", "load_jsonl", SnapshotFormat::Jsonl),
        ("save_binary", "load_binary", SnapshotFormat::Binary),
    ] {
        let mut serialized = Vec::new();
        save_as(db, &mut serialized, format).expect("save succeeds");
        group.throughput(criterion::Throughput::Bytes(serialized.len() as u64));
        group.bench_function(save_name, |b| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(serialized.len());
                save_as(db, &mut buf, format).expect("save succeeds");
                black_box(buf)
            })
        });
        group.bench_function(load_name, |b| {
            b.iter(|| black_box(load(serialized.as_slice()).expect("load succeeds")))
        });
    }
    group.finish();
}

fn bench_small_end_to_end(c: &mut Criterion) {
    let corpus = small_corpus();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("rendered_text_to_keyed_db_20pct", |b| {
        b.iter(|| {
            let mut documents = Vec::new();
            for rendered in &corpus.rendered {
                documents.push(
                    extract_document(rendered.design, &rendered.text)
                        .expect("extracts")
                        .document,
                );
            }
            black_box(Database::from_documents(&documents))
        })
    });
    group.finish();
}

fn bench_query_serving(c: &mut Criterion) {
    // Indexed vs scan query serving over the annotated paper-scale
    // database, on the battery shape the analysis figures issue: one
    // unique-bug count per vendor × category. Both engines return
    // byte-identical result sequences (the equivalence suite asserts
    // it); the delta is posting-list intersection vs repeated full
    // scans. The one-off index build is measured separately so its
    // amortized cost is visible next to the per-battery savings.
    let db = annotated_paper_db();
    let mut battery = Vec::new();
    for &vendor in &Vendor::ALL {
        let base = Query::new().vendor(vendor).unique_only();
        for &trigger in Trigger::ALL {
            battery.push(base.clone().trigger(trigger));
        }
        for &context in Context::ALL {
            battery.push(base.clone().context(context));
        }
        for &effect in Effect::ALL {
            battery.push(base.clone().effect(effect));
        }
    }

    let mut group = c.benchmark_group("query_serving");
    group.sample_size(10);
    group.bench_function("build_index_paper_scale", |b| {
        b.iter(|| black_box(QueryIndex::build(db)))
    });
    let index = QueryIndex::build(db);
    group.bench_function("facet_battery_indexed", |b| {
        b.iter(|| {
            for query in &battery {
                black_box(query.count_indexed(&index, db));
            }
        })
    });
    group.bench_function("facet_battery_scan", |b| {
        b.iter(|| {
            for query in &battery {
                black_box(query.count(db));
            }
        })
    });
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    // Worker-count sweep over the two heaviest fan-out stages, at paper
    // scale: full-corpus extraction (28 documents, 2,563 errata) and the
    // dedup cascade. jobs=1 is the sequential baseline; output is
    // byte-identical at every point of the sweep (see the determinism
    // suite), so the sweep measures pure throughput.
    let corpus = paper_corpus();
    let rendered: Vec<(Design, &str)> = corpus
        .rendered
        .iter()
        .map(|r| (r.design, r.text.as_str()))
        .collect();
    let entries: Vec<DbEntry> = paper_db().entries().to_vec();

    let max_jobs = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let mut sweep = vec![1usize, 2, max_jobs];
    sweep.sort_unstable();
    sweep.dedup();

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for &jobs in &sweep {
        rememberr_par::set_jobs(NonZeroUsize::new(jobs));
        group.bench_function(&format!("extract_corpus_paper_jobs{jobs}"), |b| {
            b.iter(|| black_box(extract_corpus(rendered.iter().copied()).expect("extracts")))
        });
        group.bench_function(&format!("dedup_assign_keys_jobs{jobs}"), |b| {
            b.iter_batched(
                || entries.clone(),
                |mut e| black_box(assign_keys(&mut e, DedupStrategy::default())),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(&format!("generate_corpus_paper_jobs{jobs}"), |b| {
            let spec = CorpusSpec::paper();
            b.iter(|| black_box(SyntheticCorpus::generate(&spec)))
        });
    }
    rememberr_par::set_jobs(None);
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_extraction,
    bench_dedup,
    bench_dedup_candidates,
    bench_classify_matcher,
    bench_classification,
    bench_persistence,
    bench_persist_snapshot,
    bench_small_end_to_end,
    bench_query_serving,
    bench_parallel
);
criterion_main!(benches);
