//! One benchmark per paper figure/table: how long each analysis takes to
//! regenerate from the full 2,563-erratum database.
//!
//! Run with `cargo bench -p rememberr-bench --bench figures`. The rendered
//! shapes themselves are asserted by the test suite; these benches track
//! the cost of regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rememberr_analysis as analysis;
use rememberr_bench::{annotated_paper_db, paper_corpus};
use rememberr_classify::{classify_database, FourEyesConfig, HumanOracle, Rules};
use rememberr_model::Vendor;

fn bench_figures(c: &mut Criterion) {
    let db = annotated_paper_db();
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);

    group.bench_function("table3_corpus_stats", |b| {
        b.iter(|| black_box(analysis::corpus_stats(db)))
    });
    group.bench_function("fig02_timeline", |b| {
        b.iter(|| {
            for vendor in Vendor::ALL {
                black_box(analysis::fig02_disclosure_timeline(db, vendor));
            }
        })
    });
    group.bench_function("fig03_heredity", |b| {
        b.iter(|| black_box(analysis::fig03_heredity(db)))
    });
    group.bench_function("fig04_shared_set", |b| {
        b.iter(|| black_box(analysis::fig04_shared_set_timeline(db)))
    });
    group.bench_function("fig05_latency", |b| {
        b.iter(|| black_box(analysis::fig05_latency(db)))
    });
    group.bench_function("fig06_workarounds", |b| {
        b.iter(|| black_box(analysis::fig06_workarounds(db)))
    });
    group.bench_function("fig07_fixes", |b| {
        b.iter(|| black_box(analysis::fig07_fixes(db)))
    });
    group.bench_function("fig10_trigger_frequency", |b| {
        b.iter(|| black_box(analysis::fig10_trigger_frequency(db, 10)))
    });
    group.bench_function("fig11_trigger_counts", |b| {
        b.iter(|| black_box(analysis::fig11_trigger_counts(db)))
    });
    group.bench_function("fig12_correlation", |b| {
        b.iter(|| black_box(analysis::fig12_trigger_correlation(db)))
    });
    group.bench_function("fig13_class_evolution", |b| {
        b.iter(|| black_box(analysis::fig13_class_evolution(db)))
    });
    group.bench_function("fig14_class_share", |b| {
        b.iter(|| black_box(analysis::fig14_class_share(db)))
    });
    group.bench_function("fig15_external_breakdown", |b| {
        b.iter(|| black_box(analysis::fig15_external_breakdown(db)))
    });
    group.bench_function("fig16_feature_breakdown", |b| {
        b.iter(|| black_box(analysis::fig16_feature_breakdown(db)))
    });
    group.bench_function("fig17_context_frequency", |b| {
        b.iter(|| black_box(analysis::fig17_context_frequency(db, 10)))
    });
    group.bench_function("fig18_effect_frequency", |b| {
        b.iter(|| black_box(analysis::fig18_effect_frequency(db, 10)))
    });
    group.bench_function("fig19_msr_witnesses", |b| {
        b.iter(|| black_box(analysis::fig19_msr_witnesses(db, 8)))
    });
    group.bench_function("observations_o1_to_o13", |b| {
        b.iter(|| black_box(analysis::observations(db)))
    });
    group.finish();
}

fn bench_effort_figures(c: &mut Criterion) {
    // Figures 8/9 need the four-eyes outcome; benchmark both the simulation
    // and the chart derivation.
    let corpus = paper_corpus();
    let mut group = c.benchmark_group("figures_effort");
    group.sample_size(10);
    group.bench_function("fig08_fig09_four_eyes_and_charts", |b| {
        b.iter(|| {
            let mut db = rememberr::Database::from_documents(&corpus.structured);
            let run = classify_database(
                &mut db,
                &Rules::standard(),
                HumanOracle::Simulated(&corpus.truth),
                &FourEyesConfig::default(),
            );
            let outcome = run.four_eyes.expect("simulated oracle");
            black_box((
                analysis::fig08_classification_steps(&outcome),
                analysis::fig09_agreement(&outcome),
            ))
        })
    });
    group.finish();
}

fn bench_guidance(c: &mut Criterion) {
    let db = annotated_paper_db();
    let mut group = c.benchmark_group("guidance");
    group.sample_size(10);
    group.bench_function("campaign_plan_10_steps", |b| {
        b.iter(|| black_box(analysis::plan_campaign(db, 10, 3, 4)))
    });
    group.bench_function("observation_recommendation", |b| {
        let stimuli: rememberr_model::TriggerSet = [
            rememberr_model::Trigger::ConfigRegister,
            rememberr_model::Trigger::Throttling,
        ]
        .into_iter()
        .collect();
        b.iter(|| black_box(analysis::recommend_observation_points(db, &stimuli)))
    });
    group.bench_function("full_report", |b| {
        b.iter(|| black_box(analysis::FullReport::build(db, None, None)))
    });
    group.bench_function("rediscovery_all_pairs", |b| {
        b.iter(|| black_box(analysis::rediscovery_by_pair(db)))
    });
    group.bench_function("observation_budget_sweep", |b| {
        b.iter(|| black_box(analysis::observation_budget_sweep(db, 4, 3, 5)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_effort_figures, bench_guidance);
criterion_main!(benches);
