//! Minimal argument parsing for the CLI (no external parser dependency).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand, `--key value` options, and
/// repeated/flag options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Single-valued options. Repeating one with the same value is
    /// harmless; contradictory repeats are rejected at parse time.
    pub options: BTreeMap<String, String>,
    /// Multi-valued options, in order of appearance.
    pub multi: BTreeMap<String, Vec<String>>,
    /// Boolean flags.
    pub flags: Vec<String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// An option is missing its value.
    MissingValue(String),
    /// A bare positional argument where an option was expected.
    UnexpectedPositional(String),
    /// An option name no command understands.
    UnknownOption(String),
    /// A single-valued option given twice with different values
    /// (option, first value, second value). Silently letting the last
    /// occurrence win would hide the contradiction.
    ConflictingValues(String, String, String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "missing subcommand"),
            ArgsError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgsError::UnexpectedPositional(a) => write!(f, "unexpected argument {a:?}"),
            ArgsError::UnknownOption(k) => write!(f, "unknown option --{k}"),
            ArgsError::ConflictingValues(k, first, second) => write!(
                f,
                "option --{k} given twice with conflicting values: {first:?} then {second:?}"
            ),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Option names that may repeat (collected into `multi`).
const MULTI_OPTIONS: &[&str] = &["trigger", "context", "effect"];

/// Option names that are boolean flags (no value).
const FLAG_OPTIONS: &[&str] = &["unique", "annotated", "no-humans", "help", "trace", "bench"];

/// Single-valued option names understood by at least one command.
/// Anything else is rejected up front, so a typo fails with usage text
/// instead of being silently ignored.
const VALUE_OPTIONS: &[&str] = &[
    "out",
    "scale",
    "seed",
    "docs",
    "db",
    "truth",
    "csv-dir",
    "vendor",
    "design",
    "trigger-class",
    "msr",
    "workaround",
    "fix",
    "after",
    "before",
    "min-triggers",
    "limit",
    "query-engine",
    "steps",
    "triggers",
    "effects",
    "metrics",
    "metrics-out",
    "trace-out",
    "jobs",
    "dedup-candidates",
    "classify-matcher",
    "bench-dedup",
    "bench-classify",
    "bench-pipeline",
    "bench-query",
    "bench-persist",
    "bench-out",
    "bench-serve",
    "snapshot-format",
    "addr",
    "workers",
    "queue-depth",
    "request-timeout-ms",
];

/// Parses a raw argument list (without the program name).
///
/// # Errors
///
/// Returns [`ArgsError`] for a missing subcommand, a valueless option, a
/// stray positional argument, or a single-valued option repeated with
/// contradictory values.
pub fn parse<I, S>(raw: I) -> Result<ParsedArgs, ArgsError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut iter = raw.into_iter().map(Into::into).peekable();
    let command = iter.next().ok_or(ArgsError::MissingCommand)?;
    if command.starts_with('-') && command != "--help" {
        return Err(ArgsError::MissingCommand);
    }
    let mut parsed = ParsedArgs {
        command: command.trim_start_matches('-').to_string(),
        ..ParsedArgs::default()
    };
    while let Some(arg) = iter.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(ArgsError::UnexpectedPositional(arg));
        };
        let key = key.to_string();
        if FLAG_OPTIONS.contains(&key.as_str()) {
            parsed.flags.push(key);
        } else {
            if !MULTI_OPTIONS.contains(&key.as_str()) && !VALUE_OPTIONS.contains(&key.as_str()) {
                return Err(ArgsError::UnknownOption(key));
            }
            let value = iter
                .next()
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| ArgsError::MissingValue(key.clone()))?;
            if MULTI_OPTIONS.contains(&key.as_str()) {
                parsed.multi.entry(key).or_default().push(value);
            } else if let Some(previous) = parsed.options.get(&key) {
                if previous != &value {
                    return Err(ArgsError::ConflictingValues(key, previous.clone(), value));
                }
            } else {
                parsed.options.insert(key, value);
            }
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// A single-valued option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A single-valued option parsed into `T`, or `default` if absent.
    ///
    /// # Errors
    ///
    /// Returns a message naming the option when parsing fails.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {text:?}")),
        }
    }

    /// All values of a repeatable option.
    pub fn get_multi(&self, key: &str) -> &[String] {
        self.multi.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if the flag was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The `--jobs N` worker count, if given.
    ///
    /// # Errors
    ///
    /// Rejects `0` and non-numeric values: the worker count must be a
    /// positive integer (`1` selects the true sequential path).
    pub fn jobs(&self) -> Result<Option<std::num::NonZeroUsize>, String> {
        match self.get("jobs") {
            None => Ok(None),
            Some(text) => text
                .parse::<std::num::NonZeroUsize>()
                .map(Some)
                .map_err(|_| {
                    format!("invalid value for --jobs: {text:?} (expected a positive integer)")
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_options_and_flags() {
        let parsed = parse([
            "query",
            "--db",
            "db.jsonl",
            "--trigger",
            "Trg_EXT_rst",
            "--trigger",
            "Trg_EXT_pci",
            "--unique",
        ])
        .unwrap();
        assert_eq!(parsed.command, "query");
        assert_eq!(parsed.get("db"), Some("db.jsonl"));
        assert_eq!(parsed.get_multi("trigger").len(), 2);
        assert!(parsed.has_flag("unique"));
        assert!(!parsed.has_flag("no-humans"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse(Vec::<String>::new()), Err(ArgsError::MissingCommand));
        assert_eq!(
            parse(["query", "--db"]),
            Err(ArgsError::MissingValue("db".into()))
        );
        assert_eq!(
            parse(["query", "stray"]),
            Err(ArgsError::UnexpectedPositional("stray".into()))
        );
        assert_eq!(
            parse(["query", "--db", "--unique"]),
            Err(ArgsError::MissingValue("db".into()))
        );
        assert_eq!(
            parse(["query", "--frobnicate", "9"]),
            Err(ArgsError::UnknownOption("frobnicate".into()))
        );
    }

    #[test]
    fn dedup_candidates_option_parses() {
        let parsed = parse([
            "extract",
            "--docs",
            "d",
            "--out",
            "o",
            "--dedup-candidates",
            "exhaustive",
        ])
        .unwrap();
        assert_eq!(parsed.get("dedup-candidates"), Some("exhaustive"));
    }

    #[test]
    fn classify_matcher_option_parses() {
        let parsed = parse([
            "classify",
            "--db",
            "d",
            "--out",
            "o",
            "--classify-matcher",
            "exhaustive",
        ])
        .unwrap();
        assert_eq!(parsed.get("classify-matcher"), Some("exhaustive"));
    }

    #[test]
    fn observability_flags_parse() {
        let parsed = parse([
            "extract",
            "--docs",
            "d",
            "--out",
            "o",
            "--metrics-out",
            "m",
            "--trace",
            "--trace-out",
            "t.json",
        ])
        .unwrap();
        assert!(parsed.has_flag("trace"));
        assert_eq!(parsed.get("metrics-out"), Some("m"));
        assert_eq!(parsed.get("trace-out"), Some("t.json"));
    }

    #[test]
    fn profile_and_bench_options_parse() {
        let parsed = parse(["profile", "--scale", "0.25", "--jobs", "2"]).unwrap();
        assert_eq!(parsed.command, "profile");
        assert_eq!(parsed.get_parsed("scale", 1.0).unwrap(), 0.25);
        let parsed = parse([
            "report",
            "--bench",
            "--bench-dedup",
            "BENCH_dedup.json",
            "--bench-classify",
            "BENCH_classify.json",
        ])
        .unwrap();
        assert!(parsed.has_flag("bench"));
        assert_eq!(parsed.get("bench-dedup"), Some("BENCH_dedup.json"));
        assert_eq!(parsed.get("bench-classify"), Some("BENCH_classify.json"));
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let parsed = parse(["generate", "--scale", "0.5"]).unwrap();
        assert_eq!(parsed.get_parsed("scale", 1.0).unwrap(), 0.5);
        assert_eq!(parsed.get_parsed("seed", 7u64).unwrap(), 7);
        let bad = parse(["generate", "--scale", "abc"]).unwrap();
        assert!(bad.get_parsed("scale", 1.0).is_err());
    }

    #[test]
    fn jobs_accepts_positive_rejects_zero_and_garbage() {
        let parsed = parse(["extract", "--docs", "d", "--out", "o", "--jobs", "4"]).unwrap();
        assert_eq!(
            parsed.jobs().unwrap().map(std::num::NonZeroUsize::get),
            Some(4)
        );
        assert_eq!(
            parse(["extract", "--docs", "d"]).unwrap().jobs().unwrap(),
            None
        );
        let zero = parse(["extract", "--jobs", "0"]).unwrap();
        assert!(zero.jobs().unwrap_err().contains("--jobs"));
        let garbage = parse(["extract", "--jobs", "many"]).unwrap();
        assert!(garbage.jobs().unwrap_err().contains("positive integer"));
        let negative = parse(["extract", "--jobs", "-2"]).unwrap();
        assert!(negative.jobs().unwrap_err().contains("-2"));
    }

    #[test]
    fn help_flag_is_a_command() {
        let parsed = parse(["--help"]).unwrap();
        assert_eq!(parsed.command, "help");
    }

    #[test]
    fn query_facet_options_parse() {
        let parsed = parse([
            "query",
            "--db",
            "db.jsonl",
            "--design",
            "Core 6",
            "--trigger-class",
            "Trg_EXT",
            "--msr",
            "MCx_STATUS",
            "--workaround",
            "bios",
            "--fix",
            "fixed",
            "--after",
            "2016-01-01",
            "--before",
            "2019-06-01",
            "--annotated",
            "--query-engine",
            "scan",
        ])
        .unwrap();
        assert_eq!(parsed.get("design"), Some("Core 6"));
        assert_eq!(parsed.get("trigger-class"), Some("Trg_EXT"));
        assert_eq!(parsed.get("msr"), Some("MCx_STATUS"));
        assert_eq!(parsed.get("workaround"), Some("bios"));
        assert_eq!(parsed.get("fix"), Some("fixed"));
        assert_eq!(parsed.get("after"), Some("2016-01-01"));
        assert_eq!(parsed.get("before"), Some("2019-06-01"));
        assert!(parsed.has_flag("annotated"));
        assert_eq!(parsed.get("query-engine"), Some("scan"));
    }

    #[test]
    fn conflicting_duplicate_options_are_rejected() {
        let err = parse(["query", "--vendor", "intel", "--vendor", "amd"]).unwrap_err();
        assert_eq!(
            err,
            ArgsError::ConflictingValues("vendor".into(), "intel".into(), "amd".into())
        );
        assert!(err.to_string().contains("--vendor"));
        assert!(err.to_string().contains("conflicting"));
        // Repeating the same value is harmless; repeatable facets still
        // repeat freely.
        let parsed = parse([
            "query",
            "--vendor",
            "intel",
            "--vendor",
            "intel",
            "--effect",
            "Eff_HNG_hng",
            "--effect",
            "Eff_USB_usb",
        ])
        .unwrap();
        assert_eq!(parsed.get("vendor"), Some("intel"));
        assert_eq!(parsed.get_multi("effect").len(), 2);
    }
}
