//! `rememberr` — command-line interface to the RemembERR pipeline.
//!
//! ```sh
//! rememberr-cli generate --out corpus/ --scale 0.2
//! rememberr-cli extract  --docs corpus/ --out db.jsonl
//! rememberr-cli classify --db db.jsonl --out db.jsonl --truth corpus/truth.json
//! rememberr-cli report   --db db.jsonl --csv-dir figures/
//! rememberr-cli query    --db db.jsonl --trigger Trg_CFG_wrg --unique
//! rememberr-cli campaign --db db.jsonl --steps 10
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
