//! `rememberr` — command-line interface to the RemembERR pipeline.
//!
//! ```sh
//! rememberr-cli generate --out corpus/ --scale 0.2
//! rememberr-cli extract  --docs corpus/ --out db.jsonl
//! rememberr-cli classify --db db.jsonl --out db.jsonl --truth corpus/truth.json
//! rememberr-cli report   --db db.jsonl --csv-dir figures/
//! rememberr-cli query    --db db.jsonl --trigger Trg_CFG_wrg --unique
//! rememberr-cli campaign --db db.jsonl --steps 10
//! rememberr-cli stats    --metrics m.json
//! rememberr-cli profile  --scale 0.25 --jobs 2 --trace-out trace.json
//! ```
//!
//! Every command accepts three observability options:
//!
//! * `--trace` prints the hierarchical span tree of the run to stderr;
//! * `--metrics-out FILE` writes a JSON metrics snapshot (deterministic
//!   event counters plus wall-clock duration histograms) after the run;
//! * `--trace-out FILE` writes the stitched span tree as Chrome
//!   trace-event JSON, loadable in `chrome://tracing` or Perfetto, with
//!   one lane per worker thread.
//!
//! Collection is disabled unless one of the three is given, so normal runs
//! pay only a relaxed atomic load per instrumentation point.
//!
//! Every command also accepts `--jobs N`, the worker-thread count for the
//! parallel pipeline stages (default: all available cores). Databases,
//! dedup statistics, and metric counter sections are byte-identical at any
//! worker count; `--jobs 1` runs the true sequential path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod commands;
mod paths;

use std::process::ExitCode;

use paths::validate_out_path;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            return ExitCode::FAILURE;
        }
    };

    let trace = parsed.has_flag("trace");
    let metrics_out = parsed.get("metrics-out").map(str::to_string);
    let trace_out = parsed.get("trace-out").map(str::to_string);
    let bench_out = parsed.get("bench-out").map(str::to_string);
    for (option, path) in [
        ("metrics-out", &metrics_out),
        ("trace-out", &trace_out),
        ("bench-out", &bench_out),
    ] {
        if let Some(path) = path {
            if let Err(e) = validate_out_path(option, path) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if trace || metrics_out.is_some() || trace_out.is_some() {
        rememberr_obs::enable();
    }

    let result = commands::run(&parsed);

    // Emit observability output even when the command failed: a partial
    // trace of a failing run is exactly when it is most wanted.
    if trace {
        eprint!("{}", rememberr_obs::render_trace());
    }
    if let Some(path) = metrics_out {
        let json = rememberr_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = trace_out {
        let spans = rememberr_obs::take_spans_stitched();
        let json = rememberr_obs::chrome_trace(&spans);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    match result {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
