//! CLI subcommand implementations.
//!
//! Each command is a plain function from parsed arguments to a `Result`
//! with a human-readable error, so they are directly unit-testable without
//! spawning processes.

use std::fs;
use std::path::{Path, PathBuf};

use rememberr::{
    load, save_as, CandidateGen, Database, DedupStrategy, Query, QueryEngine, SnapshotFormat,
};
use rememberr_analysis::{assist_highlights_analyzed, export_csvs, plan_campaign, FullReport};
use rememberr_classify::{
    classify_database_analyzed, classify_database_with, FourEyesConfig, HumanOracle, MatcherKind,
    Rules,
};
use rememberr_docgen::{CorpusSpec, GroundTruth, SyntheticCorpus};
use rememberr_extract::{extract_corpus, extract_document};
use rememberr_model::{
    parse_fix, parse_vendor, parse_workaround, Context, Date, Design, Effect, MsrName, Trigger,
    TriggerClass,
};

use crate::args::ParsedArgs;

/// Convenience alias: commands return printable output or an error string.
pub type CmdResult = Result<String, String>;

/// File name of the ground truth inside a generated corpus directory.
pub const TRUTH_FILE: &str = "truth.json";

/// `rememberr generate --out DIR [--scale F] [--seed N]`
///
/// Writes the 28 rendered documents (one `.txt` per design, named by the
/// document reference) plus `truth.json` into `DIR`.
pub fn cmd_generate(args: &ParsedArgs) -> CmdResult {
    let out: PathBuf = args.get("out").ok_or("generate needs --out DIR")?.into();
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let mut spec = if (scale - 1.0).abs() < f64::EPSILON {
        CorpusSpec::paper()
    } else {
        CorpusSpec::scaled(scale)
    };
    spec.seed = args.get_parsed("seed", spec.seed)?;

    let corpus = SyntheticCorpus::generate(&spec);
    fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    for rendered in &corpus.rendered {
        let path = out.join(format!("{}.txt", rendered.design.reference()));
        fs::write(&path, &rendered.text)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    let truth = serde_json::to_string(&corpus.truth).map_err(|e| e.to_string())?;
    fs::write(out.join(TRUTH_FILE), truth).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} documents ({} errata) and {TRUTH_FILE} to {}",
        corpus.rendered.len(),
        corpus.total_errata(),
        out.display()
    ))
}

/// `rememberr extract --docs DIR --out DB.jsonl`
///
/// Parses every `<reference>.txt` in `DIR`, runs duplicate keying, and
/// saves the database.
pub fn cmd_extract(args: &ParsedArgs) -> CmdResult {
    let docs_dir: PathBuf = args.get("docs").ok_or("extract needs --docs DIR")?.into();
    let out: PathBuf = args
        .get("out")
        .ok_or("extract needs --out DB.jsonl")?
        .into();
    let candidates: CandidateGen = args.get_parsed("dedup-candidates", CandidateGen::default())?;
    let format: SnapshotFormat = args.get_parsed("snapshot-format", SnapshotFormat::default())?;

    // Read the page streams sequentially (I/O), then fan the CPU-heavy
    // parsing out across workers; results come back in input (Design::ALL)
    // order, so the database is identical at every worker count, and the
    // first failing document (in that order) wins deterministically.
    let mut inputs: Vec<(Design, PathBuf, String)> = Vec::new();
    for design in Design::ALL {
        let path = docs_dir.join(format!("{}.txt", design.reference()));
        if !path.exists() {
            continue;
        }
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        inputs.push((design, path, text));
    }
    if inputs.is_empty() {
        return Err(format!("no documents found in {}", docs_dir.display()));
    }
    let extracted = rememberr_par::par_map(&inputs, |(design, path, text)| {
        extract_document(*design, text).map_err(|e| format!("{}: {e}", path.display()))
    });
    let mut documents = Vec::with_capacity(inputs.len());
    let mut defect_total = 0usize;
    for result in extracted {
        let extracted = result?;
        defect_total += extracted.report.total();
        documents.push(extracted.document);
    }

    let db = Database::from_documents_opts(&documents, DedupStrategy::default(), candidates);
    write_db(&db, &out, format)?;
    Ok(format!(
        "extracted {} documents -> {} entries, {} unique bugs, {} defects; saved {}",
        documents.len(),
        db.len(),
        db.unique_count(),
        defect_total,
        out.display()
    ))
}

/// `rememberr classify --db DB.jsonl --out DB2.jsonl [--truth truth.json]
/// [--no-humans] [--classify-matcher indexed|exhaustive]`
pub fn cmd_classify(args: &ParsedArgs) -> CmdResult {
    let matcher: MatcherKind = args.get_parsed("classify-matcher", MatcherKind::default())?;
    let format: SnapshotFormat = args.get_parsed("snapshot-format", SnapshotFormat::default())?;
    let mut db = read_db(args)?;
    let out: PathBuf = args
        .get("out")
        .ok_or("classify needs --out DB.jsonl")?
        .into();

    let truth = match args.get("truth") {
        Some(path) if !args.has_flag("no-humans") => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(serde_json::from_str::<GroundTruth>(&text).map_err(|e| e.to_string())?)
        }
        _ => None,
    };
    let oracle = match &truth {
        Some(t) => HumanOracle::Simulated(t),
        None => HumanOracle::None,
    };
    let run = classify_database_with(
        &mut db,
        &Rules::standard(),
        oracle,
        &FourEyesConfig::default(),
        matcher,
    );
    write_db(&db, &out, format)?;
    Ok(format!(
        "classified {} unique errata: {} of {} decisions auto-resolved ({:.1}% reduction); saved {}",
        run.stats.unique_errata,
        run.stats.auto_decided,
        run.stats.raw_decisions,
        100.0 * run.stats.reduction(),
        out.display()
    ))
}

/// `rememberr report --db DB.jsonl [--csv-dir DIR]`, or
/// `rememberr report --bench [--bench-dedup FILE] [--bench-classify FILE]
/// [--bench-pipeline FILE] [--bench-query FILE]`
pub fn cmd_report(args: &ParsedArgs) -> CmdResult {
    if args.has_flag("bench") {
        return cmd_report_bench(args);
    }
    let db = read_db(args)?;
    let report = FullReport::build(&db, None, None);
    if let Some(dir) = args.get("csv-dir") {
        let written = export_csvs(&report, Path::new(dir)).map_err(|e| e.to_string())?;
        return Ok(format!(
            "{}\nwrote {} CSV files to {dir}",
            report.render_text(),
            written.len()
        ));
    }
    Ok(report.render_text())
}

/// `rememberr query --db DB.jsonl [--vendor intel|amd] [--design NAME]
/// [--trigger CODE]... [--trigger-class CODE] [--context CODE]...
/// [--effect CODE]... [--msr NAME] [--workaround CAT] [--fix STATUS]
/// [--after YYYY-MM-DD] [--before YYYY-MM-DD] [--min-triggers N]
/// [--unique] [--annotated] [--query-engine indexed|scan]`
pub fn cmd_query(args: &ParsedArgs) -> CmdResult {
    let engine: QueryEngine = args.get_parsed("query-engine", QueryEngine::default())?;
    let db = read_db(args)?;
    let mut query = Query::new();
    if let Some(vendor) = args.get("vendor") {
        query = query.vendor(parse_vendor(vendor)?);
    }
    if let Some(design) = args.get("design") {
        let design: Design = design.parse().map_err(|_| {
            format!("unknown design {design:?} (label like \"Core 6\" or reference)")
        })?;
        query = query.design(design);
    }
    for code in args.get_multi("trigger") {
        let trigger: Trigger = code
            .parse()
            .map_err(|_| format!("unknown trigger code {code:?}"))?;
        query = query.trigger(trigger);
    }
    if let Some(code) = args.get("trigger-class") {
        let class: TriggerClass = code
            .parse()
            .map_err(|_| format!("unknown trigger class {code:?}"))?;
        query = query.trigger_class(class);
    }
    for code in args.get_multi("context") {
        let context: Context = code
            .parse()
            .map_err(|_| format!("unknown context code {code:?}"))?;
        query = query.context(context);
    }
    for code in args.get_multi("effect") {
        let effect: Effect = code
            .parse()
            .map_err(|_| format!("unknown effect code {code:?}"))?;
        query = query.effect(effect);
    }
    if let Some(name) = args.get("msr") {
        let msr: MsrName = name
            .parse()
            .map_err(|_| format!("unknown MSR name {name:?}"))?;
        query = query.msr(msr);
    }
    if let Some(text) = args.get("workaround") {
        query = query.workaround(parse_workaround(text)?);
    }
    if let Some(text) = args.get("fix") {
        query = query.fix(parse_fix(text)?);
    }
    if let Some(text) = args.get("after") {
        query = query.disclosed_after(parse_date("after", text)?);
    }
    if let Some(text) = args.get("before") {
        query = query.disclosed_before(parse_date("before", text)?);
    }
    let min: usize = args.get_parsed("min-triggers", 0)?;
    if min > 0 {
        query = query.min_triggers(min);
    }
    if args.has_flag("unique") {
        query = query.unique_only();
    }
    if args.has_flag("annotated") {
        query = query.annotated_only();
    }

    let hits = query.run_with(&db, engine);
    let mut out = format!("{} matching errata\n", hits.len());
    for entry in hits.iter().take(args.get_parsed("limit", 20usize)?) {
        out.push_str(&format!(
            "{}  {}  [{}]\n",
            entry.id(),
            entry.erratum.title,
            entry.provenance.disclosure_date
        ));
    }
    Ok(out)
}

/// `rememberr campaign --db DB.jsonl [--steps N] [--triggers N] [--effects N]`
pub fn cmd_campaign(args: &ParsedArgs) -> CmdResult {
    let db = read_db(args)?;
    let steps: usize = args.get_parsed("steps", 10)?;
    let triggers: usize = args.get_parsed("triggers", 3)?;
    let effects: usize = args.get_parsed("effects", 4)?;
    let plan = plan_campaign(&db, steps, triggers, effects);
    Ok(plan.render_text())
}

/// `rememberr export --db DB.jsonl --out records.txt`
///
/// Writes every unique annotated erratum in the paper's proposed
/// machine-readable format (Table VII), separated by blank lines — the
/// open-data form of the database.
pub fn cmd_export(args: &ParsedArgs) -> CmdResult {
    use rememberr_model::MachineErratum;
    let db = read_db(args)?;
    let out: PathBuf = args.get("out").ok_or("export needs --out FILE")?.into();
    let mut text = String::new();
    let mut count = 0usize;
    for entry in db.unique_entries() {
        let record = MachineErratum {
            key: entry.key.ok_or("database is not deduplicated")?,
            title: entry.erratum.title.clone(),
            annotation: entry.annotation.clone().unwrap_or_default(),
            comments: String::new(),
            root_cause: None,
            workaround: entry.erratum.workaround.clone(),
            status: entry.erratum.status.clone(),
        };
        text.push_str(&record.render());
        text.push('\n');
        count += 1;
    }
    fs::write(&out, text).map_err(|e| format!("{}: {e}", out.display()))?;
    Ok(format!(
        "exported {count} unique errata in Table VII format to {}",
        out.display()
    ))
}

/// `rememberr serve --db DB.jsonl [--addr HOST:PORT] [--workers N]
/// [--queue-depth N] [--request-timeout-ms N]`
///
/// Loads the snapshot once, then blocks serving HTTP until `POST
/// /shutdown` (or the process is killed); the returned string is the exit
/// summary. Option validation happens before the snapshot is read so a
/// typo fails immediately, not after a multi-second load.
pub fn cmd_serve(args: &ParsedArgs) -> CmdResult {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8377").to_string();
    addr.parse::<std::net::SocketAddr>().map_err(|_| {
        format!("invalid --addr {addr:?} (expected HOST:PORT, e.g. 127.0.0.1:8377)")
    })?;
    let workers: usize = args.get_parsed("workers", 4)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let queue_depth: usize = args.get_parsed("queue-depth", 64)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    let timeout_ms: u64 = args.get_parsed("request-timeout-ms", 2_000)?;
    if timeout_ms == 0 {
        return Err("--request-timeout-ms must be at least 1".into());
    }
    let db_path: PathBuf = args.get("db").ok_or("serve needs --db DB.jsonl")?.into();

    let config = rememberr_serve::ServeConfig {
        addr,
        workers,
        queue_depth,
        request_timeout: std::time::Duration::from_millis(timeout_ms),
        ..rememberr_serve::ServeConfig::default()
    };
    // A daemon must not accumulate span records; counters and the latency
    // histogram stay on and feed `GET /metrics`.
    rememberr_obs::enable();
    rememberr_obs::retain_spans(false);
    let server = rememberr_serve::Server::start(config, db_path)?;
    println!(
        "serving on http://{} ({workers} workers, queue depth {queue_depth}, \
         {timeout_ms} ms deadline); POST /shutdown to stop",
        server.local_addr()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let summary = server.wait();
    Ok(format!(
        "served {} requests ({} shed, {} timeouts, {} reloads); generation {} at exit",
        summary.requests, summary.shed, summary.timeouts, summary.reloads, summary.generation
    ))
}

/// One registered benchmark baseline: where it lives, what schema it must
/// carry, and how it is rendered and gated. New baselines are added here —
/// `cmd_report_bench` iterates the registry, and any `BENCH_*.json` in the
/// working directory that is *not* registered is reported as a failure
/// rather than silently skipped.
struct BenchSpec {
    /// CLI override option (`--bench-dedup FILE`).
    option: &'static str,
    /// Committed file name, also the registry key for the directory scan.
    default_path: &'static str,
    /// Exact `"schema"` string the file must carry.
    schema: &'static str,
    /// Human title for the report heading.
    title: &'static str,
    /// How the file is rendered and gated.
    kind: BenchKind,
}

/// The two baseline shapes the report understands.
enum BenchKind {
    /// A fast-vs-slow effort trajectory over corpus scales
    /// (the `{"scales": [...]}` shape every pipeline benchmark uses).
    Trajectory {
        /// Scale-entry field naming the corpus size.
        size_field: &'static str,
        /// Per-side field holding the deterministic effort metric.
        effort_field: &'static str,
        /// `(fast, slow)` side names inside each scale entry.
        sides: (&'static str, &'static str),
        /// Pass/fail rule.
        gate: BenchGate,
    },
    /// The serve daemon load benchmark (single document, not a trajectory).
    Serve,
}

/// Every baseline `report --bench` knows about, in render order.
const BENCH_REGISTRY: &[BenchSpec] = &[
    BenchSpec {
        option: "bench-dedup",
        default_path: "BENCH_dedup.json",
        schema: "rememberr-bench-dedup/v1",
        title: "dedup candidate generation",
        kind: BenchKind::Trajectory {
            size_field: "entries",
            effort_field: "comparisons_made",
            sides: ("indexed", "exhaustive"),
            // Pinned gate: lossless pruning — the indexed path never does
            // more full edit-distance comparisons than the exhaustive
            // oracle.
            gate: BenchGate::FastAtMostSlow,
        },
    },
    BenchSpec {
        option: "bench-classify",
        default_path: "BENCH_classify.json",
        schema: "rememberr-bench-classify/v1",
        title: "classification rule matching",
        kind: BenchKind::Trajectory {
            size_field: "unique_errata",
            effort_field: "pattern_evals",
            sides: ("indexed", "exhaustive"),
            // Pinned gate: the indexed matcher keeps its >=10x eval
            // reduction.
            gate: BenchGate::ReductionAtLeast(10.0),
        },
    },
    BenchSpec {
        option: "bench-pipeline",
        default_path: "BENCH_pipeline.json",
        schema: "rememberr-bench-pipeline/v1",
        title: "single-pass corpus analysis",
        kind: BenchKind::Trajectory {
            size_field: "entries",
            effort_field: "tokenize_calls",
            sides: ("one_pass", "per_stage"),
            // Pinned gate: sharing the analysis arena keeps the
            // end-to-end pipeline at least as fast as per-stage
            // re-tokenization at the full paper scale (smaller scales are
            // noise-dominated).
            gate: BenchGate::WallAtMostAtScale(1.0),
        },
    },
    BenchSpec {
        option: "bench-query",
        default_path: "BENCH_query.json",
        schema: "rememberr-bench-query/v1",
        title: "indexed query serving",
        kind: BenchKind::Trajectory {
            size_field: "entries",
            effort_field: "entries_scanned",
            sides: ("indexed", "scan"),
            // Pinned gate: posting-list intersection visits at most a
            // tenth of the entries the scan engine does on the selective
            // facet battery.
            gate: BenchGate::ReductionAtLeast(10.0),
        },
    },
    BenchSpec {
        option: "bench-persist",
        default_path: "BENCH_persist.json",
        schema: "rememberr-bench-persist/v1",
        title: "binary columnar snapshots",
        kind: BenchKind::Trajectory {
            size_field: "entries",
            effort_field: "bytes",
            sides: ("binary", "jsonl"),
            // Pinned gate: the binary snapshot is smaller than JSONL at
            // every scale and loads at least 3x faster at the full paper
            // scale (smaller scales are noise-dominated).
            gate: BenchGate::SmallerAndFasterAtScale {
                speedup: 3.0,
                scale: 1.0,
            },
        },
    },
    BenchSpec {
        option: "bench-serve",
        default_path: "BENCH_serve.json",
        schema: "rememberr-bench-serve/v1",
        title: "concurrent query serving",
        kind: BenchKind::Serve,
    },
];

/// `rememberr report --bench`: renders every registered benchmark baseline
/// (see [`BENCH_REGISTRY`]) with pass/fail against the pinned gates.
/// Doubles as a schema check: a baseline that fails to parse or lacks a
/// gate field is a failure, as is any unreadable registered file or any
/// unregistered `BENCH_*.json` lying in the working directory — nothing is
/// silently skipped. With `--bench-out FILE`, the rendered report is also
/// written to `FILE` (even when a gate fails, so CI can archive the
/// failing report).
fn cmd_report_bench(args: &ParsedArgs) -> CmdResult {
    let mut out = String::new();
    let mut all_pass = true;
    for (i, spec) in BENCH_REGISTRY.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let path = args.get(spec.option).unwrap_or(spec.default_path);
        let rendered = match &spec.kind {
            BenchKind::Trajectory {
                size_field,
                effort_field,
                sides,
                gate,
            } => render_bench_file(
                &mut out,
                path,
                spec.schema,
                spec.title,
                size_field,
                effort_field,
                *sides,
                *gate,
            ),
            BenchKind::Serve => render_serve_bench(&mut out, path, spec.schema, spec.title),
        };
        // An unreadable or malformed file is a named failure in the
        // report, not an abort: the remaining baselines still render so
        // CI artifacts show the full picture.
        all_pass &= rendered.unwrap_or_else(|message| {
            out.push_str(&format!("bench baseline {path}: FAIL — {message}\n"));
            false
        });
    }
    out.push('\n');
    all_pass &= render_unregistered_baselines(&mut out)?;
    out.push_str(if all_pass {
        "\nall pinned gates PASS\n"
    } else {
        "\nPINNED GATE FAILURE (see above)\n"
    });
    if let Some(path) = args.get("bench-out") {
        fs::write(path, &out).map_err(|e| format!("cannot write bench report to {path}: {e}"))?;
    }
    if all_pass {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Scans the working directory for `BENCH_*.json` files that no registry
/// entry claims and lists each one as an explicit failure. A baseline that
/// exists but is not wired into [`BENCH_REGISTRY`] would otherwise be a
/// gate that silently never runs.
fn render_unregistered_baselines(out: &mut String) -> Result<bool, String> {
    let mut strays: Vec<String> = Vec::new();
    let entries = fs::read_dir(".").map_err(|e| format!("cannot scan working directory: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot scan working directory: {e}"))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("BENCH_")
            && name.ends_with(".json")
            && !BENCH_REGISTRY.iter().any(|s| s.default_path == name)
        {
            strays.push(name.to_string());
        }
    }
    strays.sort();
    if strays.is_empty() {
        return Ok(true);
    }
    for name in &strays {
        out.push_str(&format!(
            "unregistered baseline {name}: FAIL — present in the working \
             directory but not in the bench registry (its gate never runs)\n"
        ));
    }
    Ok(false)
}

/// Renders the serve load benchmark (`rememberr-bench-serve/v1`): one
/// paper-scale document rather than a scale trajectory. Gates are the
/// deterministic claims the committed baseline makes: zero divergences
/// between the served indexed engine and the scan oracle, at least one
/// shed under deliberate saturation, a measured p99 under the request
/// deadline, and throughput at or above the 5,000 req/s floor.
fn render_serve_bench(
    out: &mut String,
    path: &str,
    want_schema: &str,
    title: &str,
) -> Result<bool, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(serde::Value::as_str)
        .ok_or_else(|| format!("{path}: missing \"schema\" field"))?;
    if schema != want_schema {
        return Err(format!(
            "{path}: schema {schema:?}, expected {want_schema:?}"
        ));
    }
    let get_u64 = |field: &str| -> Result<u64, String> {
        let value = doc
            .get(field)
            .ok_or_else(|| format!("{path}: missing {field:?}"))?;
        serde::Deserialize::from_value(value).map_err(|e| format!("{path}: {field}: {e}"))
    };
    let get_f64 = |field: &str| -> Result<f64, String> {
        let value = doc
            .get(field)
            .ok_or_else(|| format!("{path}: missing {field:?}"))?;
        serde::Deserialize::from_value(value).map_err(|e| format!("{path}: {field}: {e}"))
    };
    let entries = get_u64("entries")?;
    let workers = get_u64("workers")?;
    let requests = get_u64("requests")?;
    let throughput = get_f64("throughput_rps")?;
    let p50_us = get_f64("p50_us")?;
    let p99_us = get_f64("p99_us")?;
    let timeout_ms = get_u64("request_timeout_ms")?;
    let divergences = get_u64("divergences")?;
    let oracle_requests = get_u64("oracle_requests")?;
    let shed = get_u64("shed")?;

    out.push_str(&format!("bench trajectory: {title} ({path})\n"));
    out.push_str(&format!(
        "  {entries} entries, {workers} workers: {requests} requests at \
         {throughput:.0} req/s | p50 {p50_us:.0} us, p99 {p99_us:.0} us \
         (deadline {timeout_ms} ms)\n",
    ));
    out.push_str(&format!(
        "  oracle: {divergences} divergences over {oracle_requests} \
         indexed-vs-scan request pairs | saturation: {shed} shed\n",
    ));
    let mut all_pass = true;
    let mut gate = |label: String, pass: bool| {
        all_pass &= pass;
        out.push_str(&format!(
            "  gate: {label} — {}\n",
            if pass { "PASS" } else { "FAIL" }
        ));
    };
    gate(
        "served bodies byte-identical to the scan oracle".to_string(),
        divergences == 0 && oracle_requests > 0,
    );
    gate(
        "saturation sheds with 503 (shed >= 1)".to_string(),
        shed >= 1,
    );
    gate(
        format!("p99 under the {timeout_ms} ms request deadline"),
        p99_us < timeout_ms as f64 * 1_000.0,
    );
    gate(
        format!("throughput >= 5000 req/s (measured {throughput:.0})"),
        throughput >= 5_000.0,
    );
    Ok(all_pass)
}

/// The pass/fail rule a benchmark baseline is held to.
#[derive(Clone, Copy)]
enum BenchGate {
    /// The fast side's effort must not exceed the slow (oracle) side's.
    FastAtMostSlow,
    /// Slow/fast effort ratio must be at least this.
    ReductionAtLeast(f64),
    /// The fast side's wall clock must not exceed the slow side's at the
    /// given scale (other scales are informational).
    WallAtMostAtScale(f64),
    /// The fast side's effort (bytes) must be below the slow side's at
    /// every scale, and its wall clock at least `speedup` times faster at
    /// the given scale (other scales' wall clocks are informational).
    SmallerAndFasterAtScale { speedup: f64, scale: f64 },
}

/// Renders one `BENCH_*.json` trajectory; returns whether every scale
/// passed its gate. `sides` names the two measured variants as
/// `(fast, slow)` — the JSON objects each scale entry holds. Errors
/// describe schema violations.
#[allow(clippy::too_many_arguments)]
fn render_bench_file(
    out: &mut String,
    path: &str,
    want_schema: &str,
    title: &str,
    size_field: &str,
    effort_field: &str,
    sides: (&str, &str),
    gate: BenchGate,
) -> Result<bool, String> {
    let (fast_side, slow_side) = sides;
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(serde::Value::as_str)
        .ok_or_else(|| format!("{path}: missing \"schema\" field"))?;
    if schema != want_schema {
        return Err(format!(
            "{path}: schema {schema:?}, expected {want_schema:?}"
        ));
    }
    let scales = doc
        .get("scales")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| format!("{path}: missing \"scales\" array"))?;
    if scales.is_empty() {
        return Err(format!("{path}: \"scales\" is empty"));
    }

    let field_u64 = |scale: &serde::Value, side: &str, field: &str| -> Result<u64, String> {
        let value = scale
            .get(side)
            .and_then(|v| v.get(field))
            .ok_or_else(|| format!("{path}: missing {side}.{field}"))?;
        serde::Deserialize::from_value(value).map_err(|e| format!("{path}: {side}.{field}: {e}"))
    };
    let field_f64 = |scale: &serde::Value, side: &str, field: &str| -> Result<f64, String> {
        let value = scale
            .get(side)
            .and_then(|v| v.get(field))
            .ok_or_else(|| format!("{path}: missing {side}.{field}"))?;
        serde::Deserialize::from_value(value).map_err(|e| format!("{path}: {side}.{field}: {e}"))
    };

    out.push_str(&format!("bench trajectory: {title} ({path})\n"));
    let mut all_pass = true;
    for entry in scales {
        let scale: f64 = serde::Deserialize::from_value(
            entry
                .get("scale")
                .ok_or_else(|| format!("{path}: scale entry missing \"scale\""))?,
        )
        .map_err(|e| format!("{path}: scale: {e}"))?;
        let size: u64 = serde::Deserialize::from_value(
            entry
                .get(size_field)
                .ok_or_else(|| format!("{path}: scale {scale}: missing {size_field:?}"))?,
        )
        .map_err(|e| format!("{path}: {size_field}: {e}"))?;
        let fast = field_u64(entry, fast_side, effort_field)?;
        let slow = field_u64(entry, slow_side, effort_field)?;
        let fast_ms = field_f64(entry, fast_side, "wall_clock_ms")?;
        let slow_ms = field_f64(entry, slow_side, "wall_clock_ms")?;
        let reduction = if fast == 0 {
            f64::INFINITY
        } else {
            slow as f64 / fast as f64
        };
        let pass = match gate {
            BenchGate::FastAtMostSlow => fast <= slow,
            BenchGate::ReductionAtLeast(bar) => reduction >= bar,
            BenchGate::WallAtMostAtScale(gated) => {
                (scale - gated).abs() > f64::EPSILON || fast_ms <= slow_ms
            }
            BenchGate::SmallerAndFasterAtScale {
                speedup,
                scale: gated,
            } => {
                fast < slow
                    && ((scale - gated).abs() > f64::EPSILON || slow_ms >= speedup * fast_ms)
            }
        };
        all_pass &= pass;
        out.push_str(&format!(
            "  scale {scale:>4}: {size:>5} {size_field} | {slow_side} {slow:>7} \
             {effort_field} ({slow_ms:>6.1} ms) | {fast_side} {fast:>6} \
             ({fast_ms:>6.1} ms) | {reduction:>5.1}x | {}\n",
            if pass { "PASS" } else { "FAIL" }
        ));
    }
    let gate_line = match gate {
        BenchGate::FastAtMostSlow => {
            format!("gate: {fast_side} {effort_field} never exceeds the {slow_side} oracle")
        }
        BenchGate::ReductionAtLeast(bar) => {
            format!("gate: {effort_field} reduction >= {bar:.0}x at every scale")
        }
        BenchGate::WallAtMostAtScale(gated) => {
            format!("gate: {fast_side} wall clock <= {slow_side} at scale {gated}")
        }
        BenchGate::SmallerAndFasterAtScale { speedup, scale } => format!(
            "gate: {fast_side} {effort_field} < {slow_side} at every scale, \
             load >= {speedup:.0}x faster at scale {scale}"
        ),
    };
    out.push_str(&format!(
        "  {gate_line} — {}\n",
        if all_pass { "PASS" } else { "FAIL" }
    ));
    Ok(all_pass)
}

/// `rememberr profile [--scale F] [--seed N] [--jobs N]
/// [--dedup-candidates ...] [--classify-matcher ...]`
///
/// Runs the full in-process pipeline (generate → extract → dedup →
/// classify → analyze) with profiling on and prints a per-stage
/// self/child-time table plus per-worker utilization. Combine with
/// `--trace-out FILE` to also capture the Chrome trace of the same run.
pub fn cmd_profile(args: &ParsedArgs) -> CmdResult {
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let candidates: CandidateGen = args.get_parsed("dedup-candidates", CandidateGen::default())?;
    let matcher: MatcherKind = args.get_parsed("classify-matcher", MatcherKind::default())?;
    let mut spec = if (scale - 1.0).abs() < f64::EPSILON {
        CorpusSpec::paper()
    } else {
        CorpusSpec::scaled(scale)
    };
    spec.seed = args.get_parsed("seed", spec.seed)?;

    // The profile owns the run: start from a clean slate so earlier
    // activity (and the CLI root span) does not pollute the table.
    rememberr_obs::reset();
    rememberr_obs::enable();

    let corpus = SyntheticCorpus::generate(&spec);
    let (documents, defects) =
        extract_corpus(corpus.rendered.iter().map(|r| (r.design, r.text.as_str())))
            .map_err(|e| e.to_string())?;
    // Single-pass mode: one shared analysis arena feeds dedup, classify,
    // and the highlighting assist, so each erratum is tokenized exactly
    // once (the `textkit.tokenize_calls` counter below shows it).
    let rules = Rules::standard();
    let (mut db, arena) =
        Database::from_documents_analyzed(&documents, DedupStrategy::default(), candidates);
    let run = classify_database_analyzed(
        &mut db,
        &rules,
        HumanOracle::Simulated(&corpus.truth),
        &FourEyesConfig::default(),
        matcher,
        &arena,
    );
    let assist = assist_highlights_analyzed(&db, &rules, &arena);
    drop(assist);
    let report = FullReport::build(&db, run.four_eyes.as_ref(), Some(defects));
    drop(report);

    // Clone rather than take: `--trace-out` still exports the same spans
    // after this command returns.
    let spans = rememberr_obs::stitch_spans(rememberr_obs::completed_spans());
    let rows = rememberr_obs::profile_rows(&spans);
    let wall_ns = rememberr_obs::root_wall_ns(&spans);
    let snap = rememberr_obs::snapshot();

    let mut out = format!(
        "pipeline profile: scale {scale}, seed {}, jobs {} ({} unique errata)\n\n",
        spec.seed,
        rememberr_par::jobs(),
        run.stats.unique_errata,
    );
    out.push_str(&rememberr_obs::render_profile(&rows, wall_ns));
    out.push('\n');
    out.push_str(&render_corpus_counters(&snap));
    out.push('\n');
    out.push_str(&render_worker_utilization(&snap));
    Ok(out)
}

/// Renders the shared-arena counters of the single-pass pipeline: how many
/// documents the corpus analysis covered and how many tokenization passes
/// the whole run paid for. The arena itself contributes exactly one
/// tokenization per entry; the remainder comes from corpus generation and
/// extraction-time title comparisons upstream of the database build.
fn render_corpus_counters(snap: &rememberr_obs::Snapshot) -> String {
    let mut out = String::from("corpus analysis (deterministic):\n");
    let names = ["corpus.docs_analyzed", "textkit.tokenize_calls"];
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    for name in names {
        let value = snap.counters.get(name).copied().unwrap_or(0);
        out.push_str(&format!("  {name:width$}  {value}\n"));
    }
    out
}

/// Renders the snapshot's `par` section: per-worker busy time and task
/// counts plus the max/min busy-time imbalance ratio.
fn render_worker_utilization(snap: &rememberr_obs::Snapshot) -> String {
    let mut out = String::from("workers (wall clock):\n");
    if snap.par.is_empty() {
        out.push_str("  (none — sequential run)\n");
        return out;
    }
    let busiest = snap.par.values().map(|w| w.busy_ns).max().unwrap_or(0);
    for (name, w) in &snap.par {
        let share = if busiest == 0 {
            0.0
        } else {
            100.0 * w.busy_ns as f64 / busiest as f64
        };
        out.push_str(&format!(
            "  {name}  busy {:>10.3} ms  tasks {:>6}  {share:>5.1}% of busiest\n",
            w.busy_ns as f64 / 1e6,
            w.tasks,
        ));
    }
    match snap.worker_imbalance() {
        Some(ratio) => {
            out.push_str(&format!("  imbalance ratio (max/min busy): {ratio:.2}\n"));
        }
        None => out.push_str("  imbalance ratio: n/a (fewer than two workers)\n"),
    }
    out
}

/// `rememberr stats --metrics m.json` or `rememberr stats --db DB.jsonl`
///
/// Pretty-prints a metrics snapshot: either one previously written with
/// `--metrics-out`, or a fresh one collected while loading a database.
pub fn cmd_stats(args: &ParsedArgs) -> CmdResult {
    let (snapshot, db_line) = match (args.get("metrics"), args.get("db")) {
        (Some(path), _) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let snap = serde_json::from_str::<rememberr_obs::Snapshot>(&text)
                .map_err(|e| format!("{path}: not a metrics snapshot: {e}"))?;
            (snap, None)
        }
        (None, Some(path)) => {
            let line = describe_snapshot_file(path)?;
            rememberr_obs::enable();
            let db = read_db(args)?;
            let snap = rememberr_obs::snapshot();
            let line = format!("{line}, {} entries\n\n", db.len());
            drop(db);
            (snap, Some(line))
        }
        (None, None) => return Err("stats needs --metrics FILE or --db DB.jsonl".into()),
    };
    Ok(format!(
        "{}{}",
        db_line.unwrap_or_default(),
        render_snapshot(&snapshot)
    ))
}

/// One line naming a snapshot file's format (sniffed from its magic, the
/// same dispatch `load` uses) and its size on disk.
fn describe_snapshot_file(path: &str) -> Result<String, String> {
    use std::io::Read as _;
    let mut file = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let size = file.metadata().map_err(|e| format!("{path}: {e}"))?.len();
    let mut head = [0u8; 4];
    let mut got = 0;
    while got < head.len() {
        match file
            .read(&mut head[got..])
            .map_err(|e| format!("{path}: {e}"))?
        {
            0 => break,
            n => got += n,
        }
    }
    let format = SnapshotFormat::sniff(&head[..got]);
    Ok(format!("snapshot: {format} format, {size} bytes"))
}

/// Renders a metrics snapshot as aligned text.
fn render_snapshot(snap: &rememberr_obs::Snapshot) -> String {
    let mut out = String::new();
    out.push_str("counters (deterministic):\n");
    if snap.counters.is_empty() {
        out.push_str("  (none)\n");
    }
    let width = snap.counters.keys().map(String::len).max().unwrap_or(0);
    for (name, value) in &snap.counters {
        out.push_str(&format!("  {name:width$}  {value}\n"));
    }
    out.push_str("\ndurations (wall clock):\n");
    if snap.durations.is_empty() {
        out.push_str("  (none)\n");
    }
    let width = snap.durations.keys().map(String::len).max().unwrap_or(0);
    for (name, h) in &snap.durations {
        out.push_str(&format!(
            "  {name:width$}  n={} total={:.3}ms mean={:.3}ms p50={:.3}ms p99={:.3}ms max={:.3}ms\n",
            h.count,
            h.total_ns as f64 / 1e6,
            h.mean_ns() as f64 / 1e6,
            h.quantile_ns(0.50) as f64 / 1e6,
            h.quantile_ns(0.99) as f64 / 1e6,
            h.max_ns as f64 / 1e6,
        ));
    }
    if !snap.par.is_empty() {
        out.push('\n');
        out.push_str(&render_worker_utilization(snap));
    }
    out
}

/// Usage text.
pub fn usage() -> String {
    "rememberr — the RemembERR errata pipeline

USAGE:
  rememberr generate --out DIR [--scale F] [--seed N]
  rememberr extract  --docs DIR --out DB.jsonl [--dedup-candidates indexed|exhaustive]
                     [--snapshot-format jsonl|binary]
  rememberr classify --db DB.jsonl --out DB.jsonl [--truth truth.json] [--no-humans]
                     [--classify-matcher indexed|exhaustive]
                     [--snapshot-format jsonl|binary]
  rememberr report   --db DB.jsonl [--csv-dir DIR]
  rememberr report   --bench [--bench-dedup FILE] [--bench-classify FILE]
                     [--bench-pipeline FILE] [--bench-query FILE]
                     [--bench-persist FILE] [--bench-serve FILE]
                     [--bench-out FILE]
  rememberr query    --db DB.jsonl [--vendor intel|amd] [--design NAME]
                     [--trigger CODE]... [--trigger-class CODE]
                     [--context CODE]... [--effect CODE]... [--msr NAME]
                     [--workaround CAT] [--fix STATUS] [--after YYYY-MM-DD]
                     [--before YYYY-MM-DD] [--min-triggers N] [--unique]
                     [--annotated] [--limit N] [--query-engine indexed|scan]
  rememberr campaign --db DB.jsonl [--steps N] [--triggers N] [--effects N]
  rememberr export   --db DB.jsonl --out records.txt
  rememberr serve    --db DB.jsonl [--addr HOST:PORT] [--workers N]
                     [--queue-depth N] [--request-timeout-ms N]
  rememberr stats    --metrics m.json | --db DB.jsonl
  rememberr profile  [--scale F] [--seed N] [--jobs N]

OBSERVABILITY (any command):
  --trace              print the span tree of the run to stderr
  --metrics-out FILE   write a JSON metrics snapshot after the run
  --trace-out FILE     write a Chrome trace-event JSON of the run (load in
                       chrome://tracing or https://ui.perfetto.dev); one
                       lane per worker thread

PROFILE:
  rememberr profile runs the full in-process pipeline (generate ->
  extract -> dedup -> classify -> analyze) in single-pass mode (one
  shared corpus-analysis arena) with profiling on and prints a per-stage
  self/child-time table, the corpus-analysis counters
  (corpus.docs_analyzed, textkit.tokenize_calls), per-worker utilization,
  and the busy-time imbalance ratio. Combine with --trace-out for a trace
  of the same run.

SNAPSHOTS (extract, classify):
  --snapshot-format jsonl|binary
                       on-disk database format (default: jsonl). \"jsonl\"
                       is the line-oriented interchange format and the
                       correctness oracle; \"binary\" is the
                       rememberr-bin/v1 columnar format (string table +
                       checksummed sections) that loads several times
                       faster. Every reader sniffs the format from the
                       file's magic bytes, so --db accepts either.

SERVE:
  rememberr serve loads the snapshot once (JSONL or binary, sniffed),
  builds the query index, and serves HTTP on --addr (default
  127.0.0.1:8377) from a fixed worker pool:
    GET /query?vendor=intel&trigger=CODE&...   CLI-compatible parameters
    GET /count?...      bare match count       GET /stats   snapshot info
    GET /metrics        obs counters JSON      GET /healthz liveness
    POST /reload        hot-swap the snapshot  POST /shutdown  drain+exit
  Admission is bounded: at most --queue-depth accepted connections wait
  for a worker; beyond that the daemon sheds with 503 Retry-After. Each
  request gets --request-timeout-ms (default 2000) from accept; overruns
  return 504. Identical requests yield byte-identical bodies at any
  worker count; ?engine=scan serves from the full-scan oracle.

BENCH REPORT:
  rememberr report --bench reads every committed benchmark baseline in
  its registry (BENCH_dedup.json, BENCH_classify.json,
  BENCH_pipeline.json, BENCH_query.json, BENCH_persist.json,
  BENCH_serve.json) and renders the perf trajectory with PASS/FAIL
  against the pinned gates; exits nonzero on a schema violation, a gate
  failure, an unreadable registered baseline, or a BENCH_*.json in the
  working directory that no registry entry claims (nothing is silently
  skipped). --bench-out FILE also writes the rendered report to FILE
  (even on gate failure, for CI artifacts). The pipeline series compares
  the single-pass shared-arena run (one_pass: each erratum tokenized
  exactly once, see the textkit.tokenize_calls counter) against per-stage
  re-tokenization; the query series compares posting-list intersection
  (indexed) against the full-scan oracle on a battery of selective facet
  queries; the serve baseline pins zero indexed-vs-scan divergences over
  HTTP, shedding under saturation, p99 under the deadline, and the
  5,000 req/s floor.

QUERY:
  --query-engine indexed|scan
                       query serving engine (default: indexed). \"indexed\"
                       intersects per-facet posting lists driven by the
                       most selective one; \"scan\" is the full-scan
                       correctness oracle. Results are identical either
                       way.

PARALLELISM (any command):
  --jobs N             worker threads for parallel stages (default: all
                       cores; 1 = sequential). Output is identical at any
                       worker count.

DEDUP (extract):
  --dedup-candidates indexed|exhaustive
                       cascade candidate generator (default: indexed).
                       \"indexed\" prunes pairs with an inverted token
                       index and similarity fast paths; \"exhaustive\" is
                       the all-pairs correctness oracle. The resulting
                       database is byte-identical either way.

CLASSIFY:
  --classify-matcher indexed|exhaustive
                       rule-library matcher (default: indexed). \"indexed\"
                       matches the whole library in one pass over an
                       anchor-token posting index; \"exhaustive\" is the
                       per-pattern correctness oracle. The classified
                       database is byte-identical either way.
"
    .to_string()
}

/// Dispatches a parsed command.
pub fn run(args: &ParsedArgs) -> CmdResult {
    // Worker count for every parallel stage this command reaches (docgen
    // rendering, extraction, the dedup cascade, classification, analysis).
    // Validated up front so `--jobs 0`/garbage fails before any work.
    rememberr_par::set_jobs(args.jobs()?);
    // `profile` owns its own span lifecycle: it resets the collector and
    // reads completed spans before returning, so an enclosing root span
    // (still open at that point) would orphan every stage underneath it.
    if args.command == "profile" {
        return cmd_profile(args);
    }
    // Root span of the trace tree: every stage span nests under the
    // command that triggered it.
    let _span = rememberr_obs::span_with_detail("cli.run", args.command.clone());
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "extract" => cmd_extract(args),
        "classify" => cmd_classify(args),
        "report" => cmd_report(args),
        "query" => cmd_query(args),
        "campaign" => cmd_campaign(args),
        "export" => cmd_export(args),
        "serve" => cmd_serve(args),
        "stats" => cmd_stats(args),
        "help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

fn parse_date(option: &str, text: &str) -> Result<Date, String> {
    text.parse()
        .map_err(|_| format!("invalid value for --{option}: {text:?} (expected YYYY-MM-DD)"))
}

fn read_db(args: &ParsedArgs) -> Result<Database, String> {
    let path = args.get("db").ok_or("this command needs --db DB.jsonl")?;
    let file = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    load(file).map_err(|e| format!("{path}: {e}"))
}

fn write_db(db: &Database, path: &Path, format: SnapshotFormat) -> Result<(), String> {
    let file = fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    save_as(db, file, format).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rememberr-cli-{}-{name}", std::process::id()))
    }

    #[test]
    fn generate_extract_classify_report_roundtrip() {
        let dir = tmp("corpus");
        let db_path = tmp("db.jsonl");
        let db2_path = tmp("db2.jsonl");

        let out = cmd_generate(
            &parse([
                "generate",
                "--out",
                dir.to_str().unwrap(),
                "--scale",
                "0.05",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("wrote 28 documents"));
        assert!(dir.join(TRUTH_FILE).exists());

        let out = cmd_extract(
            &parse([
                "extract",
                "--docs",
                dir.to_str().unwrap(),
                "--out",
                db_path.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("unique bugs"));

        let truth = dir.join(TRUTH_FILE);
        let out = cmd_classify(
            &parse([
                "classify",
                "--db",
                db_path.to_str().unwrap(),
                "--out",
                db2_path.to_str().unwrap(),
                "--truth",
                truth.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("auto-resolved"));

        let out =
            cmd_report(&parse(["report", "--db", db2_path.to_str().unwrap()]).unwrap()).unwrap();
        assert!(out.contains("Fig. 12"));
        assert!(out.contains("Observations O1-O13"));

        let out = cmd_query(
            &parse([
                "query",
                "--db",
                db2_path.to_str().unwrap(),
                "--trigger",
                "Trg_CFG_wrg",
                "--unique",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("matching errata"));

        let export_path = tmp("records.txt");
        let out = cmd_export(
            &parse([
                "export",
                "--db",
                db2_path.to_str().unwrap(),
                "--out",
                export_path.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("Table VII format"));
        let records = fs::read_to_string(&export_path).unwrap();
        assert!(records.contains("Triggers:"));
        let _ = fs::remove_file(&export_path);

        let out = cmd_campaign(
            &parse([
                "campaign",
                "--db",
                db2_path.to_str().unwrap(),
                "--steps",
                "2",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("Test campaign plan"));

        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_file(&db_path);
        let _ = fs::remove_file(&db2_path);
    }

    #[test]
    fn helpful_errors() {
        assert!(cmd_generate(&parse(["generate"]).unwrap())
            .unwrap_err()
            .contains("--out"));
        assert!(
            cmd_extract(&parse(["extract", "--docs", "/nonexistent", "--out", "x"]).unwrap())
                .unwrap_err()
                .contains("no documents")
        );
        assert!(run(&parse(["frobnicate"]).unwrap())
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&parse(["help"]).unwrap()).unwrap().contains("USAGE"));
        assert!(cmd_query(&parse(["query", "--db", "x", "--vendor", "via"]).unwrap()).is_err());
    }

    #[test]
    fn classify_rejects_bad_matcher() {
        let err = cmd_classify(
            &parse([
                "classify",
                "--db",
                "x",
                "--out",
                "y",
                "--classify-matcher",
                "fast",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(
            err.contains("invalid value for --classify-matcher"),
            "{err}"
        );
    }

    #[test]
    fn query_rejects_bad_codes() {
        // Build a tiny db first.
        let dir = tmp("q-corpus");
        let db_path = tmp("q-db.jsonl");
        cmd_generate(
            &parse([
                "generate",
                "--out",
                dir.to_str().unwrap(),
                "--scale",
                "0.02",
            ])
            .unwrap(),
        )
        .unwrap();
        cmd_extract(
            &parse([
                "extract",
                "--docs",
                dir.to_str().unwrap(),
                "--out",
                db_path.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        let err = cmd_query(
            &parse([
                "query",
                "--db",
                db_path.to_str().unwrap(),
                "--trigger",
                "Trg_FAKE_xyz",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown trigger"));

        // The new facet flags parse and the two engines print identical
        // results.
        let db = db_path.to_str().unwrap();
        for argv in [
            vec!["query", "--db", db, "--workaround", "bios", "--unique"],
            vec!["query", "--db", db, "--fix", "no-fix-planned"],
            vec!["query", "--db", db, "--design", "Core 6"],
            vec![
                "query",
                "--db",
                db,
                "--after",
                "2016-01-01",
                "--before",
                "2019-01-01",
            ],
            vec!["query", "--db", db, "--msr", "MCx_STATUS"],
            vec!["query", "--db", db, "--trigger-class", "Trg_EXT"],
            vec!["query", "--db", db, "--annotated"],
        ] {
            let indexed = cmd_query(&parse(argv.clone()).unwrap()).unwrap();
            let mut scan_argv = argv.clone();
            scan_argv.extend(["--query-engine", "scan"]);
            let scan = cmd_query(&parse(scan_argv).unwrap()).unwrap();
            assert_eq!(indexed, scan, "{argv:?}");
        }
        let bad =
            cmd_query(&parse(["query", "--db", db, "--workaround", "magic"]).unwrap()).unwrap_err();
        assert!(bad.contains("unknown workaround category"), "{bad}");
        assert!(bad.contains("bios"), "lists the valid values: {bad}");
        let bad = cmd_query(&parse(["query", "--db", db, "--fix", "maybe"]).unwrap()).unwrap_err();
        assert!(bad.contains("unknown fix status"), "{bad}");
        let bad = cmd_query(&parse(["query", "--db", db, "--after", "soon"]).unwrap()).unwrap_err();
        assert!(bad.contains("--after"), "{bad}");
        assert!(bad.contains("YYYY-MM-DD"), "{bad}");

        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_file(&db_path);
    }

    #[test]
    fn query_rejects_bad_engine_before_reading_the_db() {
        // Strict validation like --jobs/--classify-matcher: the engine
        // value fails even though the database path does not exist.
        let err =
            cmd_query(&parse(["query", "--db", "/nonexistent", "--query-engine", "fast"]).unwrap())
                .unwrap_err();
        assert!(err.contains("invalid value for --query-engine"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_options_before_reading_the_db() {
        // Every sizing option fails strict validation even though the
        // database path does not exist — the error names the option, not
        // the missing file.
        for (argv, wanted) in [
            (
                vec!["serve", "--db", "/nonexistent", "--addr", "nonsense"],
                "--addr",
            ),
            (
                vec!["serve", "--db", "/nonexistent", "--workers", "0"],
                "--workers",
            ),
            (
                vec!["serve", "--db", "/nonexistent", "--workers", "many"],
                "--workers",
            ),
            (
                vec!["serve", "--db", "/nonexistent", "--queue-depth", "0"],
                "--queue-depth",
            ),
            (
                vec!["serve", "--db", "/nonexistent", "--request-timeout-ms", "0"],
                "--request-timeout-ms",
            ),
        ] {
            let err = cmd_serve(&parse(argv.clone()).unwrap()).unwrap_err();
            assert!(err.contains(wanted), "{argv:?}: {err}");
            assert!(!err.contains("/nonexistent"), "{argv:?}: {err}");
        }
        // With valid options the snapshot load is what fails.
        let err = cmd_serve(&parse(["serve", "--db", "/nonexistent"]).unwrap()).unwrap_err();
        assert!(err.contains("/nonexistent"), "{err}");
    }

    #[test]
    fn serve_bench_renderer_gates_the_committed_claims() {
        let doc = |divergences: u64, throughput: f64, p99_us: f64, shed_field: &str| {
            format!(
                r#"{{"schema": "rememberr-bench-serve/v1",
                     "entries": 2563, "workers": 4, "requests": 20000,
                     "throughput_rps": {throughput}, "p50_us": 350.0,
                     "p99_us": {p99_us}, "request_timeout_ms": 2000,
                     "divergences": {divergences}, "oracle_requests": 600,
                     {shed_field} "requests_after": 1}}"#
            )
        };
        let path = tmp("bench-serve-good.json");
        fs::write(&path, doc(0, 8000.0, 1800.0, r#""shed": 3,"#)).unwrap();
        let mut out = String::new();
        assert!(render_serve_bench(
            &mut out,
            path.to_str().unwrap(),
            "rememberr-bench-serve/v1",
            "concurrent query serving"
        )
        .unwrap());
        assert!(out.contains("8000 req/s"), "{out}");
        assert!(!out.contains("FAIL"), "{out}");

        // One divergence, sub-floor throughput, and p99 over the deadline
        // each flip their gate to FAIL without erroring the render.
        fs::write(&path, doc(1, 900.0, 2_500_000.0, r#""shed": 3,"#)).unwrap();
        let mut out = String::new();
        assert!(!render_serve_bench(
            &mut out,
            path.to_str().unwrap(),
            "rememberr-bench-serve/v1",
            "concurrent query serving"
        )
        .unwrap());
        assert_eq!(out.matches("FAIL").count(), 3, "{out}");

        // A missing field is a schema violation, not a silent pass.
        fs::write(&path, doc(0, 8000.0, 1800.0, "")).unwrap();
        let err = render_serve_bench(
            &mut out,
            path.to_str().unwrap(),
            "rememberr-bench-serve/v1",
            "concurrent query serving",
        )
        .unwrap_err();
        assert!(err.contains("shed"), "{err}");
        let _ = fs::remove_file(&path);
    }
}
