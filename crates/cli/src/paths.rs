//! Output-path validation shared by every `--*-out FILE` option.

use std::path::Path;

/// Checks that `path` is plausibly writable *before* the run: not an
/// existing directory, and inside a parent directory that exists. Catching
/// this up front means a multi-minute pipeline run cannot end by throwing
/// away its output on a typo'd path. Every file-writing option
/// (`--metrics-out`, `--trace-out`, `--bench-out`) shares this check, so
/// they all fail with the same message shape.
pub fn validate_out_path(option: &str, path: &str) -> Result<(), String> {
    let p = Path::new(path);
    if p.is_dir() {
        return Err(format!(
            "--{option} {path}: is a directory, expected a file path"
        ));
    }
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(format!(
                "--{option} {path}: parent directory {} does not exist",
                parent.display()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_directories_and_missing_parents() {
        let dir = std::env::temp_dir();
        let err = validate_out_path("metrics-out", dir.to_str().unwrap()).unwrap_err();
        assert!(err.contains("is a directory"), "{err}");

        let missing = dir.join("no-such-subdir").join("out.json");
        let err = validate_out_path("bench-out", missing.to_str().unwrap()).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");

        let ok = dir.join("out.json");
        validate_out_path("trace-out", ok.to_str().unwrap()).unwrap();
    }
}
