//! End-to-end tests of the installed binary: argument rejection, the
//! generate/extract round trip, and the observability surface
//! (`--metrics-out`, `--trace`, `--trace-out`, `stats`, `profile`,
//! `report --bench`).

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rememberr-cli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rememberr-obs-{}-{name}", std::process::id()))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_flag_prints_usage_and_fails() {
    let out = run(&["query", "--frobnicate", "9"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown option --frobnicate"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn missing_subcommand_prints_usage_and_fails() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn pipeline_roundtrip_with_metrics_and_trace() {
    let dir = tmp("corpus");
    let db = tmp("db.jsonl");
    let db2 = tmp("db2.jsonl");
    let m_extract = tmp("extract-metrics.json");
    let m_extract2 = tmp("extract-metrics-2.json");
    let m_classify = tmp("classify-metrics.json");

    // Generate a small corpus.
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--scale",
        "0.05",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote 28 documents"));

    // Extract with metrics and trace enabled.
    let out = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db.to_str().unwrap(),
        "--metrics-out",
        m_extract.to_str().unwrap(),
        "--trace",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("unique bugs"));
    // The span tree went to stderr.
    let trace = stderr(&out);
    assert!(trace.contains("cli.run [extract]"), "{trace}");
    assert!(trace.contains("extract.document"), "{trace}");
    assert!(trace.contains("dedup.assign_keys"), "{trace}");

    // The snapshot is valid JSON that serde_json re-parses, with the
    // documented counters present.
    let text = fs::read_to_string(&m_extract).unwrap();
    let snap: rememberr_obs::Snapshot = serde_json::from_str(&text).expect("valid snapshot");
    for counter in [
        "extract.pages_scanned",
        "extract.defect_double_added",
        "extract.defect_unmentioned",
        "extract.defect_name_collisions",
        "extract.defect_missing_fields",
        "extract.defect_duplicate_fields",
        "extract.defect_inconsistent_msrs",
        "extract.defect_intra_doc_duplicates",
        "extract.defect_status_summary_mismatches",
        "dedup.comparisons_made",
        "dedup.entries_keyed",
        "persist.records_written",
        "persist.bytes_written",
    ] {
        assert!(snap.counters.contains_key(counter), "missing {counter}");
    }
    assert!(snap.counters["extract.pages_scanned"] > 0);
    assert!(snap.counters["dedup.entries_keyed"] > 0);

    // A second identically seeded run produces a byte-identical counter
    // section (durations are wall clock and may differ).
    let out = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db.to_str().unwrap(),
        "--metrics-out",
        m_extract2.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text2 = fs::read_to_string(&m_extract2).unwrap();
    let snap2: rememberr_obs::Snapshot = serde_json::from_str(&text2).unwrap();
    assert_eq!(snap.counters_json(), snap2.counters_json());

    // Classify with metrics: the relevance-filter reduction is counted.
    let out = run(&[
        "classify",
        "--db",
        db.to_str().unwrap(),
        "--out",
        db2.to_str().unwrap(),
        "--truth",
        dir.join("truth.json").to_str().unwrap(),
        "--metrics-out",
        m_classify.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let snap: rememberr_obs::Snapshot =
        serde_json::from_str(&fs::read_to_string(&m_classify).unwrap()).unwrap();
    for counter in [
        "classify.raw_decisions",
        "classify.relevance_eliminations",
        "classify.human_decisions",
        "classify.four_eyes_steps",
        "classify.pattern_evals",
        "classify.patterns_pruned",
    ] {
        assert!(snap.counters.contains_key(counter), "missing {counter}");
    }
    let raw = snap.counters["classify.raw_decisions"];
    let auto = snap.counters["classify.relevance_eliminations"];
    let human = snap.counters["classify.human_decisions"];
    assert_eq!(auto + human, raw);
    assert!(auto > human, "filter should eliminate most decisions");
    // The indexed matcher (the default) prunes most of the rule library.
    assert!(
        snap.counters["classify.patterns_pruned"] > snap.counters["classify.pattern_evals"],
        "expected pruning to dominate: {:?}",
        snap.counters
    );

    // `stats` renders a snapshot file as text.
    let out = run(&["stats", "--metrics", m_classify.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("counters (deterministic):"), "{text}");
    assert!(text.contains("classify.relevance_eliminations"), "{text}");
    assert!(text.contains("durations (wall clock):"), "{text}");

    let _ = fs::remove_dir_all(&dir);
    for f in [&db, &db2, &m_extract, &m_extract2, &m_classify] {
        let _ = fs::remove_file(f);
    }
}

#[test]
fn jobs_rejects_zero_and_non_numeric() {
    for bad in ["0", "many", "-2", "1.5"] {
        let out = run(&["extract", "--docs", "x", "--out", "y", "--jobs", bad]);
        assert!(!out.status.success(), "--jobs {bad} was accepted");
        let err = stderr(&out);
        assert!(err.contains("invalid value for --jobs"), "{err}");
    }
}

#[test]
fn jobs_runs_are_byte_identical() {
    let dir = tmp("jobs-corpus");
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--scale",
        "0.08",
        "--seed",
        "11",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // The same seeded corpus, extracted at three worker counts with full
    // profiling enabled (`--trace-out` turns the span collector on):
    // database bytes and metric counter sections must be identical
    // (durations, spans, and worker telemetry are wall clock and may
    // differ).
    let mut baseline: Option<(Vec<u8>, String)> = None;
    for jobs in ["1", "2", "8"] {
        let db = tmp(&format!("jobs{jobs}-db.jsonl"));
        let metrics = tmp(&format!("jobs{jobs}-metrics.json"));
        let trace = tmp(&format!("jobs{jobs}-trace.json"));
        let out = run(&[
            "extract",
            "--docs",
            dir.to_str().unwrap(),
            "--out",
            db.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--jobs",
            jobs,
        ]);
        assert!(out.status.success(), "--jobs {jobs}: {}", stderr(&out));
        let db_bytes = fs::read(&db).unwrap();
        let snap: rememberr_obs::Snapshot =
            serde_json::from_str(&fs::read_to_string(&metrics).unwrap()).unwrap();
        let counters = snap.counters_json();
        match &baseline {
            None => baseline = Some((db_bytes, counters)),
            Some((want_db, want_counters)) => {
                assert_eq!(&db_bytes, want_db, "database differs at --jobs {jobs}");
                assert_eq!(&counters, want_counters, "counters differ at --jobs {jobs}");
            }
        }
        assert!(trace.exists(), "--jobs {jobs}: no trace written");
        let _ = fs::remove_file(&db);
        let _ = fs::remove_file(&metrics);
        let _ = fs::remove_file(&trace);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The `ph:"X"` complete events of a parsed Chrome trace, as
/// `(name, tid)` pairs.
fn complete_events(trace: &serde::Value) -> Vec<(String, u64)> {
    trace
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(serde::Value::as_str) == Some("X"))
        .map(|e| {
            let name = e.get("name").and_then(serde::Value::as_str).unwrap();
            let tid: u64 = serde::Deserialize::from_value(e.get("tid").unwrap()).unwrap();
            (name.to_string(), tid)
        })
        .collect()
}

#[test]
fn trace_out_writes_a_chrome_trace_with_bounded_worker_lanes() {
    let dir = tmp("trace-corpus");
    let db = tmp("trace-db.jsonl");
    let trace_path = tmp("trace.json");
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--scale",
        "0.05",
        "--seed",
        "17",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let out = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--jobs",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // The file is JSON our serde round-trips, in Chrome trace-event shape.
    let text = fs::read_to_string(&trace_path).unwrap();
    let trace: serde::Value = serde_json::from_str(&text).expect("trace parses");
    let events = complete_events(&trace);
    let names: Vec<&str> = events.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"cli.run"), "{names:?}");
    assert!(names.contains(&"extract.document"), "{names:?}");
    assert!(names.contains(&"dedup.assign_keys"), "{names:?}");

    // One lane per worker: the par.worker events occupy at most --jobs
    // distinct tids, none of them the main lane (tid 0).
    let worker_tids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|(n, _)| n == "par.worker")
        .map(|&(_, tid)| tid)
        .collect();
    assert!(!worker_tids.is_empty(), "no worker spans in {names:?}");
    assert!(worker_tids.len() <= 2, "{worker_tids:?}");
    assert!(!worker_tids.contains(&0), "{worker_tids:?}");

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&db);
    let _ = fs::remove_file(&trace_path);
}

#[test]
fn bad_output_paths_fail_before_any_work() {
    // A directory target and a missing parent directory are both rejected
    // up front; nothing else is written (no corpus --out dir appears).
    let dir = tmp("validate-dir");
    fs::create_dir_all(&dir).unwrap();
    let never = tmp("never-created");
    for flag in ["--metrics-out", "--trace-out", "--bench-out"] {
        let out = run(&[
            "generate",
            "--out",
            never.to_str().unwrap(),
            "--scale",
            "0.02",
            flag,
            dir.to_str().unwrap(),
        ]);
        assert!(!out.status.success(), "{flag} accepted a directory");
        let err = stderr(&out);
        assert!(err.contains("is a directory"), "{flag}: {err}");

        let orphan = dir.join("no-such-subdir").join("out.json");
        let out = run(&[
            "generate",
            "--out",
            never.to_str().unwrap(),
            "--scale",
            "0.02",
            flag,
            orphan.to_str().unwrap(),
        ]);
        assert!(!out.status.success(), "{flag} accepted a missing parent");
        let err = stderr(&out);
        assert!(err.contains("does not exist"), "{flag}: {err}");
    }
    assert!(!never.exists(), "command ran despite invalid output path");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn profile_prints_stage_table_and_worker_utilization() {
    let trace_path = tmp("profile-trace.json");
    let out = run(&[
        "profile",
        "--scale",
        "0.05",
        "--seed",
        "23",
        "--jobs",
        "2",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // The self/child-time table header and the pipeline stages.
    assert!(text.contains("self ms"), "{text}");
    assert!(text.contains("child ms"), "{text}");
    assert!(text.contains("total ms"), "{text}");
    assert!(text.contains("extract.document"), "{text}");
    assert!(text.contains("dedup.assign_keys"), "{text}");
    assert!(text.contains("classify.database"), "{text}");
    assert!(text.contains("analysis.full_report"), "{text}");
    // The shared-arena counters of the single-pass run.
    assert!(text.contains("corpus analysis (deterministic):"), "{text}");
    assert!(text.contains("corpus.docs_analyzed"), "{text}");
    assert!(text.contains("textkit.tokenize_calls"), "{text}");
    // Worker utilization plus the imbalance ratio.
    assert!(text.contains("workers (wall clock):"), "{text}");
    assert!(text.contains("w00"), "{text}");
    assert!(text.contains("imbalance ratio"), "{text}");
    // The same run also exported its trace, with the stage spans in it.
    let trace: serde::Value =
        serde_json::from_str(&fs::read_to_string(&trace_path).unwrap()).unwrap();
    let events = complete_events(&trace);
    assert!(events.iter().any(|(n, _)| n == "extract.corpus"));
    let _ = fs::remove_file(&trace_path);
}

#[test]
fn report_bench_passes_on_committed_baselines_and_rejects_garbage() {
    // The committed baselines at the repo root must parse, carry the
    // pinned gate fields, and pass their gates.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dedup = root.join("BENCH_dedup.json");
    let classify = root.join("BENCH_classify.json");
    let pipeline = root.join("BENCH_pipeline.json");
    let query = root.join("BENCH_query.json");
    let persist = root.join("BENCH_persist.json");
    let serve = root.join("BENCH_serve.json");
    let report_path = tmp("bench-report.txt");
    let out = run(&[
        "report",
        "--bench",
        "--bench-dedup",
        dedup.to_str().unwrap(),
        "--bench-classify",
        classify.to_str().unwrap(),
        "--bench-pipeline",
        pipeline.to_str().unwrap(),
        "--bench-query",
        query.to_str().unwrap(),
        "--bench-persist",
        persist.to_str().unwrap(),
        "--bench-serve",
        serve.to_str().unwrap(),
        "--bench-out",
        report_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("bench trajectory: dedup candidate generation"));
    assert!(text.contains("bench trajectory: classification rule matching"));
    assert!(text.contains("bench trajectory: single-pass corpus analysis"));
    assert!(text.contains("bench trajectory: indexed query serving"));
    assert!(text.contains("bench trajectory: binary columnar snapshots"));
    assert!(text.contains("bench trajectory: concurrent query serving"));
    assert!(text.contains("tokenize_calls"), "{text}");
    assert!(text.contains("entries_scanned"), "{text}");
    assert!(text.contains("bytes"), "{text}");
    assert!(text.contains("divergences"), "{text}");
    assert!(text.contains("all pinned gates PASS"), "{text}");
    assert!(!text.contains("FAIL"), "{text}");
    // --bench-out wrote the same rendered report (stdout printing adds a
    // trailing newline on top of it).
    let written = fs::read_to_string(&report_path).unwrap();
    assert_eq!(format!("{written}\n"), text);
    let _ = fs::remove_file(&report_path);

    // A baseline with the wrong schema tag is a hard error (this is the
    // CI schema check).
    let bogus = tmp("bogus-bench.json");
    fs::write(&bogus, "{\"schema\": \"rememberr-bench-dedup/v999\"}").unwrap();
    let out = run(&[
        "report",
        "--bench",
        "--bench-dedup",
        bogus.to_str().unwrap(),
        "--bench-classify",
        classify.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("schema"), "{}", stderr(&out));

    // And so is a file that is not JSON at all.
    fs::write(&bogus, "not json").unwrap();
    let out = run(&[
        "report",
        "--bench",
        "--bench-dedup",
        bogus.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not valid JSON"), "{}", stderr(&out));
    let _ = fs::remove_file(&bogus);
}

#[test]
fn classify_matchers_and_jobs_are_byte_identical() {
    let dir = tmp("cm-corpus");
    let db = tmp("cm-db.jsonl");
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--scale",
        "0.08",
        "--seed",
        "13",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Classified database bytes must be identical across both matchers and
    // every worker count; counter sections must be identical across worker
    // counts for a fixed matcher (the matchers themselves report different
    // pattern_evals — that is the point).
    let truth = dir.join("truth.json");
    let mut db_baseline: Option<Vec<u8>> = None;
    for matcher in ["indexed", "exhaustive"] {
        let mut counter_baseline: Option<String> = None;
        for jobs in ["1", "8"] {
            let db2 = tmp(&format!("cm-{matcher}-{jobs}-db.jsonl"));
            let metrics = tmp(&format!("cm-{matcher}-{jobs}-metrics.json"));
            let out = run(&[
                "classify",
                "--db",
                db.to_str().unwrap(),
                "--out",
                db2.to_str().unwrap(),
                "--truth",
                truth.to_str().unwrap(),
                "--classify-matcher",
                matcher,
                "--jobs",
                jobs,
                "--metrics-out",
                metrics.to_str().unwrap(),
            ]);
            assert!(out.status.success(), "{matcher}/{jobs}: {}", stderr(&out));
            let bytes = fs::read(&db2).unwrap();
            match &db_baseline {
                None => db_baseline = Some(bytes),
                Some(want) => {
                    assert_eq!(&bytes, want, "database differs at {matcher} --jobs {jobs}")
                }
            }
            let snap: rememberr_obs::Snapshot =
                serde_json::from_str(&fs::read_to_string(&metrics).unwrap()).unwrap();
            let counters = snap.counters_json();
            match &counter_baseline {
                None => counter_baseline = Some(counters),
                Some(want) => {
                    assert_eq!(
                        &counters, want,
                        "counters differ at {matcher} --jobs {jobs}"
                    )
                }
            }
            let _ = fs::remove_file(&db2);
            let _ = fs::remove_file(&metrics);
        }
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&db);
}

#[test]
fn metrics_disabled_runs_emit_nothing() {
    // Without --trace/--metrics-out the run must not print a trace.
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(stderr(&out).is_empty());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn snapshot_format_binary_roundtrips_through_the_cli() {
    let dir = tmp("binfmt-corpus");
    let db_jsonl = tmp("binfmt-db.jsonl");
    let db_bin = tmp("binfmt-db.bin");
    let db_bin2 = tmp("binfmt-db2.bin");
    let reexport = tmp("binfmt-reexport.jsonl");

    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--scale",
        "0.05",
        "--seed",
        "11",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Extract the same corpus in both formats; the binary file must carry
    // the magic, be smaller, and yield the same pipeline summary.
    let out_jsonl = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db_jsonl.to_str().unwrap(),
        "--snapshot-format",
        "jsonl",
    ]);
    assert!(out_jsonl.status.success(), "{}", stderr(&out_jsonl));
    let out_bin = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db_bin.to_str().unwrap(),
        "--snapshot-format",
        "binary",
    ]);
    assert!(out_bin.status.success(), "{}", stderr(&out_bin));
    // Same pipeline summary either way (only the saved path differs).
    let summary = |out: &Output| stdout(out).split("; saved").next().unwrap().to_string();
    assert_eq!(summary(&out_jsonl), summary(&out_bin));
    assert!(stdout(&out_jsonl).contains("unique bugs"));

    let jsonl_bytes = fs::read(&db_jsonl).unwrap();
    let bin_bytes = fs::read(&db_bin).unwrap();
    assert!(bin_bytes.starts_with(b"RMBR"), "binary magic missing");
    assert!(bin_bytes.len() < jsonl_bytes.len());

    // `stats --db` sniffs the format from the file, not the flag.
    let out = run(&["stats", "--db", db_bin.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("snapshot: binary format"), "{text}");
    assert!(text.contains("bytes"), "{text}");
    let out = run(&["stats", "--db", db_jsonl.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("snapshot: jsonl format"));

    // Classification reads the binary snapshot transparently, and the
    // JSONL it writes matches a classify run fed from the JSONL twin.
    let out = run(&[
        "classify",
        "--db",
        db_bin.to_str().unwrap(),
        "--out",
        reexport.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let via_binary = fs::read(&reexport).unwrap();
    let out = run(&[
        "classify",
        "--db",
        db_jsonl.to_str().unwrap(),
        "--out",
        reexport.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let via_jsonl = fs::read(&reexport).unwrap();
    assert_eq!(via_binary, via_jsonl);

    // Binary bytes are worker-count invariant through the CLI too.
    let out = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db_bin2.to_str().unwrap(),
        "--snapshot-format",
        "binary",
        "--jobs",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(fs::read(&db_bin2).unwrap(), bin_bytes);

    for path in [&db_jsonl, &db_bin, &db_bin2, &reexport] {
        let _ = fs::remove_file(path);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_format_rejects_unknown_values() {
    let out = run(&[
        "extract",
        "--docs",
        "unused",
        "--out",
        "unused",
        "--snapshot-format",
        "msgpack",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("invalid value for --snapshot-format"), "{err}");
}

#[test]
fn serve_smoke_over_the_binary() {
    use std::io::{BufRead, BufReader, Read, Write};

    // Build a tiny snapshot.
    let dir = tmp("serve-corpus");
    let db = tmp("serve-db.jsonl");
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--scale",
        "0.05",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&[
        "extract",
        "--docs",
        dir.to_str().unwrap(),
        "--out",
        db.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Start the daemon on an ephemeral port; the startup line names it.
    let mut child = bin()
        .args([
            "serve",
            "--db",
            db.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut child_out = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut startup = String::new();
    child_out.read_line(&mut startup).expect("startup line");
    assert!(
        startup.contains("serving on http://127.0.0.1:"),
        "{startup}"
    );
    assert!(startup.contains("2 workers"), "{startup}");
    let addr = startup
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in startup line")
        .to_string();

    let request = |method: &str, target: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n"
        )
        .expect("request writes");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("response reads");
        String::from_utf8(raw).expect("UTF-8 response")
    };
    assert!(request("GET", "/healthz").ends_with("ok\n"));
    let query = request("GET", "/query?vendor=intel&limit=2");
    assert!(query.contains("200 OK"), "{query}");
    assert!(query.contains("matching errata"), "{query}");
    let shutdown = request("POST", "/shutdown");
    assert!(shutdown.contains("shutting down"), "{shutdown}");

    // The daemon drains, prints its summary, and exits zero.
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "{status:?}");
    let mut rest = String::new();
    child_out.read_to_string(&mut rest).expect("summary reads");
    assert!(rest.contains("served"), "{rest}");
    assert!(rest.contains("generation 1 at exit"), "{rest}");

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&db);
}
