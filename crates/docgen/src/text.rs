//! Rendering of erratum prose from ground-truth categories.
//!
//! Each abstract category owns a small bank of English phrases modelled on
//! real vendor errata; a bug's title, description and implication are
//! assembled from the phrases of its true categories. Phrase choice is a
//! pure function of `(corpus seed, bug key, variant)`, so the same bug
//! renders identically in every document that lists it — except for the
//! deliberately varied titles of the near-duplicate pairs, which exercise
//! the similarity-based duplicate detector.

use rand::{Rng, SeedableRng};
use rememberr_model::{Context, Effect, Trigger, Vendor, WorkaroundCategory};

use crate::bugpool::BugSeed;
use crate::rng::CorpusRng;
use crate::sampler::BugProfile;
use crate::spec::CorpusSpec;

/// Fully rendered erratum text for one bug, plus the concrete-level
/// annotation strings derived from the same phrases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugText {
    /// Erratum title.
    pub title: String,
    /// Description field.
    pub description: String,
    /// Implications field.
    pub implications: String,
    /// Workaround field.
    pub workaround: String,
    /// Status field.
    pub status: String,
    /// Concrete-level trigger snippets (ground truth).
    pub concrete_triggers: Vec<String>,
    /// Concrete-level context snippets (ground truth).
    pub concrete_contexts: Vec<String>,
    /// Concrete-level effect snippets (ground truth).
    pub concrete_effects: Vec<String>,
}

/// Title-position phrases for a trigger ("<trigger phrase> May ...").
fn trigger_title(t: Trigger, pick: usize) -> &'static str {
    use Trigger::*;
    let bank: &[&str] = match t {
        CacheLineBoundary => &[
            "A Load Crossing a Cache Line Boundary",
            "Data Accesses Spanning a Cache Line Boundary",
        ],
        PageBoundary => &[
            "A Misaligned Store Crossing a Page Boundary",
            "An Access Straddling a Page Boundary",
        ],
        MemoryMapBoundary => &[
            "An Access Near the Canonical Address Boundary",
            "Operations at a Memory Map Boundary",
        ],
        MemoryMapped => &[
            "An Access to a Memory-Mapped I/O Range",
            "Reads From Memory-Mapped Registers",
        ],
        Atomic => &[
            "A Locked Atomic Operation",
            "Transactional Memory Operations",
        ],
        Fence => &[
            "Executing a Serializing Instruction",
            "A Memory Fence Instruction",
        ],
        SegmentMode => &[
            "Using an Unusual Segment Configuration",
            "A Segment Limit Violation",
        ],
        PageTableWalk => &["A Page Table Walk", "Concurrent Page Table Walks"],
        NestedTranslation => &[
            "Nested Page Table Translation",
            "A Guest Page Table Walk Using Nested Paging",
        ],
        Flush => &["Flushing a Cache Line", "A TLB Flush Operation"],
        Speculative => &[
            "A Speculative Memory Access",
            "Speculative Execution Past a Branch",
        ],
        CounterOverflow => &[
            "A Performance Counter Overflow",
            "Counter Overflow Conditions",
        ],
        TimerEvent => &["An APIC Timer Event", "Expiration of a Timer"],
        MachineCheck => &["A Machine Check Exception", "Machine Check Events"],
        IllegalInstruction => &["Executing an Undefined Opcode", "An Illegal Instruction"],
        ResumeFromSmm => &[
            "Resuming From System Management Mode",
            "An RSM Instruction Leaving SMM",
        ],
        VmTransition => &[
            "A VM Entry or VM Exit",
            "Transitions Between Hypervisor and Guest",
        ],
        Paging => &["Changing Paging Modes", "Enabling or Disabling Paging"],
        VmConfig => &[
            "Certain Virtual Machine Control Settings",
            "An Unusual VMCS Configuration",
        ],
        ConfigRegister => &[
            "Writing Certain Model Specific Registers",
            "An Inconsistent MSR Configuration",
            "Setting a Reserved Configuration Register Bit",
        ],
        PowerStateChange => &[
            "Resuming From a Core C6 Power State",
            "A Package Power State Transition",
            "Entering a Deep Sleep State",
        ],
        Throttling => &[
            "Thermal Throttling Events",
            "A Change in Power Supply Conditions",
            "Frequency Throttling",
        ],
        Reset => &["A Warm Reset", "Cold Reset Sequences"],
        Pcie => &["Ongoing PCIe Traffic", "A PCIe Link Retraining"],
        Usb => &["USB Device Activity", "A USB Controller Transfer"],
        Dram => &["A Specific DRAM Configuration", "DDR Training Sequences"],
        Iommu => &["An Access Through the IOMMU", "IOMMU Translations"],
        SystemBus => &["Heavy System Bus Activity", "HyperTransport Link Traffic"],
        FloatingPoint => &[
            "Execution of x87 Floating-Point Instructions",
            "An FSAVE or FNSAVE Instruction",
        ],
        Debug => &[
            "Using Hardware Breakpoints",
            "Single-Stepping With Debug Registers",
        ],
        Cpuid => &["A CPUID Request", "Reading Design Identification"],
        Monitoring => &["A MONITOR and MWAIT Sequence", "MWAIT Instruction Usage"],
        Tracing => &["Processor Trace Packet Generation", "Branch Trace Messages"],
        CustomFeature => &[
            "Certain SSE Instruction Sequences",
            "Using Extended Vector Instructions",
        ],
    };
    bank[pick % bank.len()]
}

/// Description-position clauses for a trigger.
fn trigger_clause(t: Trigger, pick: usize) -> &'static str {
    use Trigger::*;
    let bank: &[&str] = match t {
        CacheLineBoundary => &[
            "a data operation crosses a cache line boundary",
            "a load straddles two cache lines",
        ],
        PageBoundary => &[
            "an access crosses a page boundary",
            "a misaligned store spans a page boundary",
        ],
        MemoryMapBoundary => &[
            "an address falls near the canonical boundary of the memory map",
            "a data operation reaches a memory map boundary",
        ],
        MemoryMapped => &[
            "software accesses a memory-mapped I/O range",
            "a read targets a memory-mapped register",
        ],
        Atomic => &[
            "a locked atomic read-modify-write is executed",
            "a transactional memory region is active",
        ],
        Fence => &[
            "a serializing instruction such as MFENCE is executed",
            "a memory fence drains the store buffer",
        ],
        SegmentMode => &[
            "an unusual segment mode is configured",
            "a segment limit check is required",
        ],
        PageTableWalk => &[
            "the core performs a page table walk",
            "a hardware page walk is in progress",
        ],
        NestedTranslation => &[
            "a translation uses nested page tables",
            "a guest physical address is translated through nested paging",
        ],
        Flush => &[
            "a cache line is flushed with CLFLUSH",
            "a TLB entry is invalidated",
        ],
        Speculative => &[
            "a speculative memory operation is issued",
            "execution proceeds speculatively past a branch",
        ],
        CounterOverflow => &[
            "a performance counter overflows",
            "an overflow of an internal counter occurs",
        ],
        TimerEvent => &[
            "an APIC timer event fires",
            "a timer interrupt is delivered",
        ],
        MachineCheck => &[
            "a machine check exception is being delivered",
            "a machine check event is logged",
        ],
        IllegalInstruction => &[
            "an undefined opcode is fetched",
            "an illegal instruction is executed",
        ],
        ResumeFromSmm => &[
            "the processor resumes from System Management Mode",
            "an RSM instruction returns from SMM",
        ],
        VmTransition => &[
            "a transition between the hypervisor and a guest occurs",
            "a VM entry or VM exit is performed",
        ],
        Paging => &[
            "the paging mechanism is reconfigured",
            "paging is enabled or disabled",
        ],
        VmConfig => &[
            "a virtual machine control field holds an unusual value",
            "the VMCS is configured with specific settings",
        ],
        ConfigRegister => &[
            "software writes a specific value to a configuration register",
            "a model specific register is programmed with a reserved encoding",
            "an MSR write changes the operating configuration",
        ],
        PowerStateChange => &[
            "the core resumes from the C6 power state",
            "a package power state transition is in progress",
            "the processor enters a deep sleep state",
        ],
        Throttling => &[
            "thermal throttling engages",
            "power supply conditions change abruptly",
            "the processor is throttling its frequency",
        ],
        Reset => &[
            "a warm reset is applied",
            "a cold reset sequence is initiated",
        ],
        Pcie => &[
            "PCIe traffic is ongoing",
            "a PCIe link retrains to a lower speed",
        ],
        Usb => &[
            "a USB controller transfer is active",
            "USB device activity is present",
        ],
        Dram => &[
            "a specific DRAM configuration is populated",
            "DDR interface training is in progress",
        ],
        Iommu => &[
            "a device access is translated through the IOMMU",
            "an IOMMU translation misses its cache",
        ],
        SystemBus => &[
            "the system bus carries heavy traffic",
            "HyperTransport link activity is sustained",
        ],
        FloatingPoint => &[
            "an x87 floating-point instruction such as FSAVE is executed",
            "floating-point state is saved with FNSAVE",
        ],
        Debug => &[
            "a hardware breakpoint is armed in the debug registers",
            "single-stepping is enabled through debug features",
        ],
        Cpuid => &[
            "a CPUID leaf is queried",
            "design identification is read through CPUID",
        ],
        Monitoring => &[
            "a MONITOR and MWAIT pair is executed",
            "the core is waiting in MWAIT",
        ],
        Tracing => &[
            "processor trace packets are being generated",
            "branch trace messages are enabled",
        ],
        CustomFeature => &[
            "a specific SSE instruction sequence is executed",
            "extended vector instructions are in use",
        ],
    };
    bank[pick % bank.len()]
}

/// Context clauses ("while ...").
fn context_clause(c: Context, pick: usize) -> &'static str {
    use Context::*;
    let bank: &[&str] = match c {
        Boot => &["during BIOS initialization", "while the system is booting"],
        VmGuest => &[
            "while running as a virtual machine guest",
            "inside a virtualized guest environment",
        ],
        RealMode => &[
            "in real-address mode or virtual-8086 mode",
            "while operating in real mode",
        ],
        Hypervisor => &["while operating as a hypervisor", "in VMX root operation"],
        Smm => &["while in System Management Mode", "during SMM execution"],
        SecurityFeature => &[
            "when a security feature such as SGX or SVM is enabled",
            "with memory encryption enabled",
        ],
        SingleCore => &[
            "in a single-core configuration",
            "when only one core is active",
        ],
        Package => &[
            "on specific package types",
            "for certain package configurations",
        ],
        Temperature => &[
            "at elevated operating temperatures",
            "under specific temperature conditions",
        ],
        Voltage => &[
            "at specific supply voltages",
            "under marginal voltage conditions",
        ],
    };
    bank[pick % bank.len()]
}

/// Title-position consequences ("... May <phrase>").
fn effect_title(e: Effect, pick: usize) -> &'static str {
    use Effect::*;
    let bank: &[&str] = match e {
        Unpredictable => &[
            "Lead to Unpredictable System Behavior",
            "Cause Unpredictable Results",
        ],
        Hang => &["Cause the Processor to Hang", "Result in a System Hang"],
        Crash => &["Cause an Unexpected Crash", "Crash the Processor"],
        BootFailure => &["Prevent the System From Booting", "Cause a Boot Failure"],
        MachineCheck => &[
            "Signal a Machine Check Exception",
            "Cause an Erroneous Machine Check",
        ],
        Uncorrectable => &[
            "Report an Uncorrectable Error",
            "Log an Uncorrectable Error",
        ],
        SpuriousFault => &["Cause a Spurious Page Fault", "Raise a Spurious Fault"],
        MissingFault => &[
            "Fail to Deliver an Expected Fault",
            "Suppress a Required Exception",
        ],
        WrongFaultId => &[
            "Report an Incorrect Fault Identifier",
            "Deliver Faults in the Wrong Order",
        ],
        PerfCounter => &[
            "Produce Incorrect Performance Counter Values",
            "Over-Count Performance Events",
        ],
        MsrValue => &[
            "Be Saved Incorrectly",
            "Corrupt a Model Specific Register",
            "Leave a Stale MSR Value",
        ],
        Pcie => &["Degrade the PCIe Link", "Cause PCIe Transaction Errors"],
        Usb => &["Drop USB Transactions", "Cause USB Device Errors"],
        Multimedia => &[
            "Corrupt Audio or Graphics Output",
            "Cause Display Artifacts",
        ],
        Dram => &[
            "Interact Abnormally With DRAM",
            "Cause Memory Interface Errors",
        ],
        Power => &[
            "Increase Power Consumption Abnormally",
            "Prevent Power State Entry",
        ],
    };
    bank[pick % bank.len()]
}

/// Implication sentences.
fn effect_implication(e: Effect, pick: usize) -> &'static str {
    use Effect::*;
    let bank: &[&str] = match e {
        Unpredictable => &[
            "This may result in unpredictable system behavior.",
            "Software relying on this behavior may not operate properly.",
        ],
        Hang => &[
            "System may hang or reset.",
            "The processor may become unresponsive.",
        ],
        Crash => &[
            "The system may crash unexpectedly.",
            "An unexpected shutdown may occur.",
        ],
        BootFailure => &[
            "The system may fail to boot.",
            "A boot failure may be observed.",
        ],
        MachineCheck => &[
            "A machine check exception may be signaled.",
            "An unexpected machine check may occur.",
        ],
        Uncorrectable => &[
            "An uncorrectable error may be reported.",
            "Error containment may report an uncorrectable error.",
        ],
        SpuriousFault => &[
            "A spurious fault may be delivered to software.",
            "Software may observe an unexpected page fault.",
        ],
        MissingFault => &[
            "An expected fault may not be delivered.",
            "A required exception may be missing.",
        ],
        WrongFaultId => &[
            "The reported fault identifier may be incorrect.",
            "Faults may be delivered in the wrong order.",
        ],
        PerfCounter => &[
            "Performance monitoring counters may contain incorrect values.",
            "Performance counter readings may be inaccurate.",
        ],
        MsrValue => &[
            "The affected register may contain an incorrect value.",
            "Software reading the register may observe a corrupted value.",
        ],
        Pcie => &[
            "Errors may be observable on the PCIe side.",
            "PCIe devices may observe malformed transactions.",
        ],
        Usb => &[
            "USB devices may observe dropped transactions.",
            "Issues may be observable on the USB side.",
        ],
        Multimedia => &[
            "Audio or graphics corruption may be visible.",
            "Multimedia output may be disturbed.",
        ],
        Dram => &[
            "Abnormal interaction with DRAM may be observed.",
            "The memory interface may misbehave.",
        ],
        Power => &[
            "Abnormal power consumption may be measured.",
            "The package may fail to reach the requested power state.",
        ],
    };
    bank[pick % bank.len()]
}

/// Trivial-trigger clauses for errata without a clear trigger.
const TRIVIAL_CLAUSES: [&str; 3] = [
    "during normal operation with usual load and store activity",
    "under intense workloads",
    "in the course of ordinary instruction execution",
];

/// The vague preamble marking "complex set of conditions" errata.
const COMPLEX_PREAMBLE: &str =
    "Under a highly specific and detailed set of internal timing conditions";

/// Neutral title qualifiers used to disambiguate otherwise-identical titles
/// of distinct bugs. Deliberately free of category keywords so they never
/// influence classification.
const TITLE_QUALIFIERS: [&str; 16] = [
    " on Some Steppings",
    " Under Rare Timing",
    " in Specific Platform Layouts",
    " Following Repeated Execution",
    " After Extended Uptime",
    " With Certain Microcode Revisions",
    " on Multi-Socket Platforms",
    " During Early Silicon Bring-Up",
    " When Lightly Loaded",
    " Under Sustained Activity",
    " in Corner-Case Sequences",
    " on Selected SKUs",
    " With Legacy Firmware",
    " in Back-to-Back Sequences",
    " Across Consecutive Operations",
    " Within a Narrow Window",
];

/// Derives the deterministic per-bug RNG.
fn bug_rng(spec: &CorpusSpec, bug: &BugSeed, style: u32) -> CorpusRng {
    let mix = spec
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(bug.key.value()) << 8)
        .wrapping_add(u64::from(style).wrapping_mul(0x517C_C1B7_2722_0A95));
    CorpusRng::seed_from_u64(mix)
}

/// Renders the full erratum text for a bug.
///
/// `variant` selects the phrasing of duplicated listings; the near-duplicate
/// pairs render one document with `variant = 1` so titles differ slightly
/// between documents. `style` reshuffles the phrase picks and (for
/// `style > 0`) appends a neutral title qualifier — the assembly stage
/// increments it until every unique bug has a distinct normalized title,
/// preserving the study's observation that "identical titles imply
/// identical errata".
pub fn render_bug_text(
    spec: &CorpusSpec,
    bug: &BugSeed,
    profile: &BugProfile,
    variant: u32,
    style: u32,
) -> BugText {
    let mut rng = bug_rng(spec, bug, style);
    let ann = &profile.annotation;

    let triggers: Vec<Trigger> = ann.triggers.iter().collect();
    let contexts: Vec<Context> = ann.contexts.iter().collect();
    let effects: Vec<Effect> = ann.effects.iter().collect();

    // Per-category base picks chosen once (variant shifts them for titles).
    let base_pick: usize = rng.random_range(0..4usize);

    // ---- Title -------------------------------------------------------------
    let title_subject = match triggers.first() {
        Some(&t) => trigger_title(t, base_pick).to_string(),
        None => "The Processor".to_string(),
    };
    let primary_effect = *effects.first().expect("every bug has an effect");
    // Near-duplicate variants keep the title "nearly identical": a modal
    // swap plus a qualifier, like the minor phrasing variations the study
    // found between documents.
    let modal = if variant == 0 { "May" } else { "Might" };
    let variant_qualifier = if variant == 0 { "" } else { " in Some Cases" };
    let style_qualifier = if style == 0 {
        ""
    } else {
        TITLE_QUALIFIERS[(style as usize - 1 + rng.random_range(0..TITLE_QUALIFIERS.len()))
            % TITLE_QUALIFIERS.len()]
    };
    let title = format!(
        "{} {} {}{}{}",
        title_subject,
        modal,
        effect_title(primary_effect, base_pick),
        style_qualifier,
        variant_qualifier
    );

    // ---- Description ---------------------------------------------------------
    let concrete_triggers: Vec<String> = if triggers.is_empty() {
        vec![TRIVIAL_CLAUSES[base_pick % TRIVIAL_CLAUSES.len()].to_string()]
    } else {
        triggers
            .iter()
            .map(|&t| trigger_clause(t, base_pick).to_string())
            .collect()
    };
    let concrete_contexts: Vec<String> = contexts
        .iter()
        .map(|&c| context_clause(c, base_pick).to_string())
        .collect();
    let concrete_effects: Vec<String> = effects
        .iter()
        .map(|&e| effect_title(e, base_pick).to_string())
        .collect();

    let mut description = String::new();
    if ann.complex_conditions {
        description.push_str(COMPLEX_PREAMBLE);
        description.push_str(", ");
    }
    description.push_str("when ");
    description.push_str(&join_clauses(&concrete_triggers));
    if !concrete_contexts.is_empty() {
        description.push(' ');
        description.push_str(&concrete_contexts.join(" or "));
    }
    description.push_str(", the processor may not behave as expected. ");
    description.push_str(&format!(
        "This erratum may {}.",
        lowercase_first(effect_title(primary_effect, base_pick))
    ));
    // Bug-specific operating parameters, as real errata carry ("a code
    // footprint exceeding 32 KB", "a highly specific window"). The window
    // length is injective in the bug key, which makes descriptions unique
    // per bug — the textual near-identity signal the duplicate-detection
    // cascade verifies, mirroring the study's finding that identical titles
    // come with identical remaining fields.
    description.push_str(&format!(
        " The condition requires a window of approximately {} core cycles and at least {} back-to-back operations.",
        16 + bug.key.value(),
        2 + bug.key.value() % 13
    ));
    for msr in &ann.msrs {
        description.push_str(&format!(
            " The {} register (MSR {:#X}) may contain an incorrect value.",
            msr.name, msr.claimed_address
        ));
    }

    // ---- Implications ----------------------------------------------------------
    let implications = effects
        .iter()
        .map(|&e| effect_implication(e, base_pick))
        .collect::<Vec<_>>()
        .join(" ");

    BugText {
        title,
        description,
        implications,
        workaround: profile.workaround.document_phrase().to_string(),
        status: profile.fix.document_phrase().to_string(),
        concrete_triggers,
        concrete_contexts,
        concrete_effects,
    }
}

/// Joins trigger clauses conjunctively, mirroring real erratum phrasing.
fn join_clauses(clauses: &[String]) -> String {
    match clauses.len() {
        0 => String::new(),
        1 => clauses[0].clone(),
        2 => format!("{} while {}", clauses[0], clauses[1]),
        _ => {
            let head = clauses[..clauses.len() - 1].join(", ");
            format!(
                "{}, in combination with {}",
                head,
                clauses[clauses.len() - 1]
            )
        }
    }
}

fn lowercase_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Alternative workaround phrase for the AMD near-miss pair (errata like
/// no. 1327 / no. 1329 that differ only in their suggested workaround).
pub fn alternative_workaround(category: WorkaroundCategory) -> &'static str {
    match category {
        WorkaroundCategory::Bios => "BIOS should program the recommended settings at boot.",
        WorkaroundCategory::Software => "The operating system should avoid the listed sequence.",
        WorkaroundCategory::Peripherals => "The device should retry the affected transaction.",
        WorkaroundCategory::Absent => "Contact your field representative for guidance.",
        WorkaroundCategory::None => "None identified at this time.",
        WorkaroundCategory::DocumentationFix => "See the updated documentation.",
    }
}

/// Marker used by classification rules to detect vague errata.
pub fn complex_conditions_marker() -> &'static str {
    COMPLEX_PREAMBLE
}

/// Vendor-flavored boilerplate appended to some implications.
pub fn vendor_boilerplate(vendor: Vendor) -> &'static str {
    match vendor {
        Vendor::Intel => {
            "Intel has not observed this erratum in any commercially available software."
        }
        Vendor::Amd => "AMD is not aware of customer impact at this time.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugpool::build_pool;
    use crate::sampler::sample_profile;

    fn first_bugs(n: usize) -> Vec<(BugSeed, BugProfile)> {
        let spec = CorpusSpec::scaled(0.1);
        let mut rng = CorpusRng::seed_from_u64(spec.seed);
        let pool = build_pool(&spec, &mut rng);
        pool.into_iter()
            .take(n)
            .map(|b| {
                let p = sample_profile(&spec, &b, &mut rng);
                (b, p)
            })
            .collect()
    }

    #[test]
    fn rendering_is_deterministic_per_bug() {
        let spec = CorpusSpec::scaled(0.1);
        for (bug, profile) in first_bugs(20) {
            let a = render_bug_text(&spec, &bug, &profile, 0, 0);
            let b = render_bug_text(&spec, &bug, &profile, 0, 0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn variant_changes_title_only_slightly() {
        let spec = CorpusSpec::scaled(0.1);
        for (bug, profile) in first_bugs(20) {
            let a = render_bug_text(&spec, &bug, &profile, 0, 0);
            let b = render_bug_text(&spec, &bug, &profile, 1, 0);
            assert_ne!(a.title, b.title);
            // Same description: still recognizably the same bug.
            assert_eq!(a.description, b.description);
            let sim = rememberr_textkit::title_similarity(&a.title, &b.title);
            assert!(sim > 0.5, "{sim}: {:?} vs {:?}", a.title, b.title);
        }
    }

    #[test]
    fn complex_bugs_carry_the_preamble() {
        let spec = CorpusSpec::scaled(0.2);
        let mut rng = CorpusRng::seed_from_u64(spec.seed);
        let pool = build_pool(&spec, &mut rng);
        let mut saw_complex = false;
        for bug in &pool {
            let profile = sample_profile(&spec, bug, &mut rng);
            let text = render_bug_text(&spec, bug, &profile, 0, 0);
            if profile.annotation.complex_conditions {
                saw_complex = true;
                assert!(text.description.contains(complex_conditions_marker()));
            }
        }
        assert!(saw_complex, "corpus should contain complex-condition bugs");
    }

    #[test]
    fn concrete_strings_parallel_categories() {
        let spec = CorpusSpec::scaled(0.1);
        for (bug, profile) in first_bugs(30) {
            let text = render_bug_text(&spec, &bug, &profile, 0, 0);
            if !profile.annotation.has_no_clear_trigger() {
                assert_eq!(
                    text.concrete_triggers.len(),
                    profile.annotation.triggers.len()
                );
            }
            assert_eq!(
                text.concrete_contexts.len(),
                profile.annotation.contexts.len()
            );
            assert_eq!(
                text.concrete_effects.len(),
                profile.annotation.effects.len()
            );
        }
    }

    #[test]
    fn msr_references_render_with_addresses() {
        let spec = CorpusSpec::scaled(0.3);
        let mut rng = CorpusRng::seed_from_u64(spec.seed);
        let pool = build_pool(&spec, &mut rng);
        let mut saw_msr = false;
        for bug in &pool {
            let profile = sample_profile(&spec, bug, &mut rng);
            if let Some(msr) = profile.annotation.msrs.first() {
                let text = render_bug_text(&spec, bug, &profile, 0, 0);
                assert!(text.description.contains(msr.name.text()));
                assert!(text.description.contains("MSR 0x"));
                saw_msr = true;
            }
        }
        assert!(saw_msr);
    }

    #[test]
    fn join_clauses_shapes() {
        assert_eq!(join_clauses(&[]), "");
        assert_eq!(join_clauses(&["a".into()]), "a");
        assert_eq!(join_clauses(&["a".into(), "b".into()]), "a while b");
        assert_eq!(
            join_clauses(&["a".into(), "b".into(), "c".into()]),
            "a, b, in combination with c"
        );
    }

    #[test]
    fn phrase_banks_cover_all_categories() {
        for &t in Trigger::ALL {
            assert!(!trigger_title(t, 0).is_empty());
            assert!(!trigger_clause(t, 1).is_empty());
        }
        for &c in Context::ALL {
            assert!(!context_clause(c, 0).is_empty());
        }
        for &e in Effect::ALL {
            assert!(!effect_title(e, 0).is_empty());
            assert!(!effect_implication(e, 1).is_empty());
        }
    }
}
