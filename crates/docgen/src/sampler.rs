//! Sampling of ground-truth annotations, workarounds and fix statuses.
//!
//! The weights below encode the frequency profiles the paper reports:
//!
//! * Figure 10 — `Trg_CFG_wrg`, `Trg_POW_tht` and `Trg_POW_pwc` dominate;
//! * Figure 11 — ~49% of errata with clear triggers need two or more, and
//!   14.4% have no clear trigger;
//! * Figure 12 — specific trigger pairs correlate (debug x VM transitions,
//!   PCIe/DRAM x power-state changes, MSR configuration x throttling);
//! * Figure 13 — memory-boundary triggers are absent from the two latest
//!   Intel generations;
//! * Figures 14-16 — trigger-class shares are similar across vendors except
//!   for external stimuli (AMD-heavy) and specific features (Intel-heavy);
//! * Figure 17 — virtual-machine-guest is the dominant context;
//! * Figure 18 — corrupted registers and hangs are the dominant effects;
//! * Figure 19 — machine-check status registers witness most MSR-observable
//!   bugs, followed by IBS registers and performance counters;
//! * Figures 6/7 — workaround mix and (rare) fixes.

use rand::Rng;
use rememberr_model::{
    Annotation, Context, Design, Effect, FixStatus, MsrName, MsrRef, Trigger, TriggerClass, Vendor,
    WorkaroundCategory,
};
use serde::{Deserialize, Serialize};

use crate::bugpool::BugSeed;
use crate::rng::CorpusRng;
use crate::spec::CorpusSpec;

/// Ground-truth labels for one bug.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugProfile {
    /// The true annotation (concrete strings are filled by the text
    /// renderer, which derives them from the same categories).
    pub annotation: Annotation,
    /// True workaround category.
    pub workaround: WorkaroundCategory,
    /// True fix status.
    pub fix: FixStatus,
}

/// Marginal weight of a trigger for a vendor.
pub(crate) fn trigger_weight(vendor: Vendor, t: Trigger) -> f64 {
    use Trigger::*;
    let base = match t {
        CacheLineBoundary => 1.0,
        PageBoundary => 1.2,
        MemoryMapBoundary => 0.6,
        MemoryMapped => 2.0,
        Atomic => 1.0,
        Fence => 1.2,
        SegmentMode => 0.8,
        PageTableWalk => 1.8,
        NestedTranslation => 1.2,
        Flush => 1.4,
        Speculative => 1.6,
        CounterOverflow => 1.4,
        TimerEvent => 1.2,
        MachineCheck => 1.6,
        IllegalInstruction => 0.8,
        ResumeFromSmm => 1.6,
        VmTransition => 3.4,
        Paging => 2.2,
        VmConfig => 2.8,
        ConfigRegister => 9.0,
        PowerStateChange => 6.5,
        Throttling => 7.0,
        Reset => 2.6,
        Pcie => 3.0,
        Usb => 1.2,
        Dram => 2.6,
        Iommu => 1.4,
        SystemBus => 1.8,
        FloatingPoint => 1.6,
        Debug => 2.6,
        Cpuid => 1.0,
        Monitoring => 1.0,
        Tracing => 2.2,
        CustomFeature => 3.0,
    };
    // Vendor skews (Figures 15 and 16): Intel overrepresents tracing and
    // custom features; AMD overrepresents system-bus (HyperTransport),
    // IOMMU and DRAM stimuli.
    let skew = match (vendor, t) {
        (Vendor::Intel, Tracing) => 1.4,
        (Vendor::Intel, CustomFeature) => 1.3,
        (Vendor::Intel, Usb) => 1.2,
        (Vendor::Intel, SystemBus) => 0.45,
        (Vendor::Amd, Tracing) => 0.4,
        (Vendor::Amd, CustomFeature) => 0.65,
        (Vendor::Amd, SystemBus) => 2.6,
        (Vendor::Amd, Iommu) => 1.5,
        (Vendor::Amd, Dram) => 1.25,
        (Vendor::Amd, Pcie) => 0.9,
        _ => 1.0,
    };
    base * skew
}

/// Correlated trigger pairs (Figure 12): when one member is already chosen,
/// the partner is preferentially added.
pub(crate) const TRIGGER_AFFINITY: &[(Trigger, Trigger, f64)] = &[
    (Trigger::Debug, Trigger::VmTransition, 3.0),
    (Trigger::Pcie, Trigger::PowerStateChange, 2.5),
    (Trigger::Dram, Trigger::PowerStateChange, 2.0),
    (Trigger::ConfigRegister, Trigger::Throttling, 3.0),
    (Trigger::ConfigRegister, Trigger::PowerStateChange, 2.5),
    (Trigger::VmConfig, Trigger::VmTransition, 2.5),
    (Trigger::Paging, Trigger::PageTableWalk, 2.0),
    (Trigger::MachineCheck, Trigger::ConfigRegister, 1.5),
    (Trigger::Reset, Trigger::Pcie, 2.0),
    (Trigger::Speculative, Trigger::Flush, 1.5),
    (Trigger::Monitoring, Trigger::PowerStateChange, 1.5),
    (Trigger::TimerEvent, Trigger::PowerStateChange, 1.2),
];

fn context_weight(c: Context) -> f64 {
    use Context::*;
    match c {
        Boot => 1.6,
        VmGuest => 3.5,
        RealMode => 0.9,
        Hypervisor => 1.4,
        Smm => 1.8,
        SecurityFeature => 1.2,
        SingleCore => 0.7,
        Package => 0.6,
        Temperature => 0.5,
        Voltage => 0.4,
    }
}

fn effect_weight(e: Effect) -> f64 {
    use Effect::*;
    match e {
        Unpredictable => 3.0,
        Hang => 3.2,
        Crash => 1.2,
        BootFailure => 0.8,
        MachineCheck => 2.4,
        Uncorrectable => 1.0,
        SpuriousFault => 1.8,
        MissingFault => 1.0,
        WrongFaultId => 0.8,
        PerfCounter => 1.8,
        MsrValue => 3.6,
        Pcie => 1.4,
        Usb => 0.8,
        Multimedia => 0.9,
        Dram => 1.2,
        Power => 1.0,
    }
}

fn msr_weight(vendor: Vendor, m: MsrName) -> f64 {
    use MsrName::*;
    if !m.available_on(vendor) {
        return 0.0;
    }
    match m {
        McStatus => 5.0,
        McAddr => 2.5,
        McMisc => 0.8,
        McgStatus => 1.5,
        IbsFetchCtl | IbsOpCtl | IbsOpData => 2.2,
        PerfCtr => 2.0,
        PerfEvtSel => 1.2,
        FixedCtr => 0.8,
        Aperf | Mperf => 0.8,
        PStateStatus => 1.2,
        ThermStatus => 1.0,
        SmiCount => 0.6,
        DebugCtl => 0.8,
        LastBranchRecord => 0.7,
        _ => 0.3,
    }
}

fn weighted_pick<T: Copy>(items: &[T], weight: impl Fn(T) -> f64, rng: &mut CorpusRng) -> T {
    let total: f64 = items.iter().map(|&i| weight(i)).sum();
    debug_assert!(total > 0.0, "all weights zero");
    let mut draw = rng.random_range(0.0..total);
    for &item in items {
        let w = weight(item);
        if draw < w {
            return item;
        }
        draw -= w;
    }
    *items.last().expect("non-empty items")
}

fn pick_count(weights: &[f64], rng: &mut CorpusRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut draw = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

/// Samples the ground-truth profile of one bug.
pub fn sample_profile(spec: &CorpusSpec, bug: &BugSeed, rng: &mut CorpusRng) -> BugProfile {
    let vendor = bug.vendor;
    // Figure 13: no memory-boundary triggers in the two latest Intel
    // generations — bugs listed there must avoid the MBR class.
    let exclude_mbr = bug
        .affected
        .iter()
        .any(|d| matches!(d, Design::Intel11 | Design::Intel12));
    let candidates: Vec<Trigger> = Trigger::ALL
        .iter()
        .copied()
        .filter(|t| !(exclude_mbr && t.class() == TriggerClass::Mbr))
        .collect();

    let mut annotation = Annotation::new();

    // Triggers (conjunctive).
    if !rng.random_bool(spec.no_clear_trigger_rate) {
        let count = 1 + pick_count(&spec.trigger_count_weights, rng);
        while annotation.triggers.len() < count {
            let chosen: Vec<Trigger> = annotation.triggers.iter().collect();
            let pick = if !chosen.is_empty() && rng.random_bool(0.5) {
                // Prefer an affinity partner of an already-chosen trigger.
                let partners: Vec<(Trigger, f64)> = TRIGGER_AFFINITY
                    .iter()
                    .filter_map(|&(a, b, s)| {
                        if chosen.contains(&a) && !annotation.triggers.contains(b) {
                            Some((b, s))
                        } else if chosen.contains(&b) && !annotation.triggers.contains(a) {
                            Some((a, s))
                        } else {
                            None
                        }
                    })
                    .filter(|(t, _)| candidates.contains(t))
                    .collect();
                if partners.is_empty() {
                    weighted_pick(&candidates, |t| trigger_weight(vendor, t), rng)
                } else {
                    let items: Vec<Trigger> = partners.iter().map(|(t, _)| *t).collect();
                    weighted_pick(
                        &items,
                        |t| {
                            partners
                                .iter()
                                .find(|(p, _)| *p == t)
                                .map_or(1.0, |(_, s)| *s)
                        },
                        rng,
                    )
                }
            } else {
                weighted_pick(&candidates, |t| trigger_weight(vendor, t), rng)
            };
            annotation.triggers.insert(pick);
        }
    }
    if rng.random_bool(spec.complex_conditions_rate.get(vendor)) {
        annotation.complex_conditions = true;
    }

    // Contexts (disjunctive; may be empty = "any context").
    let ctx_count = pick_count(&[0.55, 0.35, 0.10], rng);
    while annotation.contexts.len() < ctx_count {
        annotation
            .contexts
            .insert(weighted_pick(Context::ALL, context_weight, rng));
    }

    // Effects (disjunctive; at least one — an unobservable bug is no bug).
    let eff_count = 1 + pick_count(&[0.6, 0.3, 0.1], rng);
    while annotation.effects.len() < eff_count {
        annotation
            .effects
            .insert(weighted_pick(Effect::ALL, effect_weight, rng));
    }

    // MSR witnesses (Figure 19): attached when the effect set contains a
    // register corruption or machine-check style effect.
    let msr_prone = annotation.effects.contains(Effect::MsrValue)
        || annotation.effects.contains(Effect::MachineCheck)
        || annotation.effects.contains(Effect::PerfCounter);
    if msr_prone && rng.random_bool(0.5) {
        let n = 1 + usize::from(rng.random_bool(0.25));
        while annotation.msrs.len() < n {
            let name = weighted_pick(&MsrName::ALL, |m| msr_weight(vendor, m), rng);
            if annotation.msrs.iter().all(|r| r.name != name) {
                annotation.msrs.push(MsrRef::canonical(name));
            }
        }
    }

    // Workaround (Figure 6).
    let workaround = {
        let u: f64 = rng.random_range(0.0..1.0);
        let none_rate = spec.no_workaround_rate.get(vendor);
        if u < none_rate {
            WorkaroundCategory::None
        } else if u < none_rate + 0.004 {
            WorkaroundCategory::DocumentationFix
        } else {
            let rest: f64 = (u - none_rate - 0.004) / (1.0 - none_rate - 0.004);
            if rest < 0.35 {
                WorkaroundCategory::Bios
            } else if rest < 0.65 {
                WorkaroundCategory::Software
            } else if rest < 0.87 {
                WorkaroundCategory::Absent
            } else {
                WorkaroundCategory::Peripherals
            }
        }
    };

    // Fix status (Figure 7): rarely fixed; weak upward trend in recent Intel
    // generations.
    let recent_intel = bug
        .affected
        .iter()
        .any(|d| matches!(d, Design::Intel10 | Design::Intel11 | Design::Intel12));
    let fix_prob = if recent_intel { 0.22 } else { 0.06 };
    let fix = if workaround == WorkaroundCategory::DocumentationFix {
        FixStatus::DocumentationChange
    } else if rng.random_bool(fix_prob) {
        FixStatus::Fixed
    } else if rng.random_bool(0.03) {
        FixStatus::FixPlanned
    } else {
        FixStatus::NoFixPlanned
    };

    BugProfile {
        annotation,
        workaround,
        fix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugpool::build_pool;
    use rand::SeedableRng;
    use rememberr_model::EffectSet;

    fn profiles() -> Vec<(BugSeed, BugProfile)> {
        let spec = CorpusSpec::paper();
        let mut rng = CorpusRng::seed_from_u64(spec.seed);
        let pool = build_pool(&spec, &mut rng);
        pool.into_iter()
            .map(|bug| {
                let p = sample_profile(&spec, &bug, &mut rng);
                (bug, p)
            })
            .collect()
    }

    #[test]
    fn every_bug_has_an_effect() {
        for (_, p) in profiles() {
            assert!(!p.annotation.effects.is_empty());
        }
    }

    #[test]
    fn no_clear_trigger_rate_matches_spec() {
        let all = profiles();
        let none = all
            .iter()
            .filter(|(_, p)| p.annotation.has_no_clear_trigger())
            .count();
        let rate = none as f64 / all.len() as f64;
        assert!((0.10..0.19).contains(&rate), "{rate}");
    }

    #[test]
    fn about_half_of_clear_trigger_errata_need_two_or_more() {
        let all = profiles();
        let clear: Vec<_> = all
            .iter()
            .filter(|(_, p)| !p.annotation.has_no_clear_trigger())
            .collect();
        let multi = clear
            .iter()
            .filter(|(_, p)| p.annotation.complexity() >= 2)
            .count();
        let rate = multi as f64 / clear.len() as f64;
        assert!((0.42..0.56).contains(&rate), "{rate}");
    }

    #[test]
    fn config_register_and_power_dominate_triggers() {
        let all = profiles();
        let mut counts = vec![0usize; Trigger::ALL.len()];
        for (_, p) in &all {
            for t in p.annotation.triggers.iter() {
                counts[t.index()] += 1;
            }
        }
        let top3: Vec<Trigger> = {
            let mut order: Vec<usize> = (0..counts.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
            order[..3].iter().map(|&i| Trigger::ALL[i]).collect()
        };
        assert!(top3.contains(&Trigger::ConfigRegister), "{top3:?}");
        assert!(top3.contains(&Trigger::Throttling), "{top3:?}");
        assert!(top3.contains(&Trigger::PowerStateChange), "{top3:?}");
    }

    #[test]
    fn vm_guest_is_most_frequent_context() {
        let all = profiles();
        let mut counts = vec![0usize; Context::ALL.len()];
        for (_, p) in &all {
            for c in p.annotation.contexts.iter() {
                counts[c.index()] += 1;
            }
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[Context::VmGuest.index()], max);
    }

    #[test]
    fn corrupted_registers_and_hangs_dominate_effects() {
        let all = profiles();
        let mut counts = vec![0usize; Effect::ALL.len()];
        for (_, p) in &all {
            for e in p.annotation.effects.iter() {
                counts[e.index()] += 1;
            }
        }
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let top3: Vec<Effect> = order[..3].iter().map(|&i| Effect::ALL[i]).collect();
        assert!(top3.contains(&Effect::MsrValue), "{top3:?}");
        assert!(top3.contains(&Effect::Hang), "{top3:?}");
    }

    #[test]
    fn mc_registers_witness_seven_to_nine_percent_of_unique_errata() {
        // Figure 19 / O13: MCx_STATUS and MCx_ADDR witness a bug in 7.1% to
        // 8.5% of all unique errata.
        let all = profiles();
        let with_mc = all
            .iter()
            .filter(|(_, p)| {
                p.annotation
                    .msrs
                    .iter()
                    .any(|m| matches!(m.name, MsrName::McStatus | MsrName::McAddr))
            })
            .count();
        let rate = with_mc as f64 / all.len() as f64;
        assert!((0.055..0.11).contains(&rate), "{rate}");
    }

    #[test]
    fn msr_vendor_consistency() {
        for (bug, p) in profiles() {
            for m in &p.annotation.msrs {
                assert!(
                    m.name.available_on(bug.vendor),
                    "{:?} sampled for {}",
                    m.name,
                    bug.vendor
                );
            }
        }
    }

    #[test]
    fn no_workaround_rates_match_paper() {
        let all = profiles();
        for vendor in Vendor::ALL {
            let of_vendor: Vec<_> = all.iter().filter(|(b, _)| b.vendor == vendor).collect();
            let none = of_vendor
                .iter()
                .filter(|(_, p)| p.workaround == WorkaroundCategory::None)
                .count();
            let rate = none as f64 / of_vendor.len() as f64;
            let target = CorpusSpec::paper().no_workaround_rate.get(vendor);
            assert!((rate - target).abs() < 0.06, "{vendor}: {rate} vs {target}");
        }
    }

    #[test]
    fn bugs_are_rarely_fixed() {
        let all = profiles();
        let fixed = all
            .iter()
            .filter(|(_, p)| p.fix == FixStatus::Fixed)
            .count();
        let rate = fixed as f64 / all.len() as f64;
        assert!(rate < 0.2, "{rate}");
        assert!(rate > 0.02, "{rate}");
    }

    #[test]
    fn latest_intel_generations_have_no_mbr_triggers() {
        for (bug, p) in profiles() {
            if bug
                .affected
                .iter()
                .any(|d| matches!(d, Design::Intel11 | Design::Intel12))
            {
                assert!(
                    !p.annotation.trigger_classes().contains(&TriggerClass::Mbr),
                    "MBR trigger listed in a gen 11/12 document"
                );
            }
        }
    }

    #[test]
    fn affinity_pairs_are_overrepresented() {
        let all = profiles();
        // debug x vmt should co-occur far more often than debug x fpu.
        let co = |a: Trigger, b: Trigger| {
            all.iter()
                .filter(|(_, p)| {
                    p.annotation.triggers.contains(a) && p.annotation.triggers.contains(b)
                })
                .count()
        };
        assert!(
            co(Trigger::Debug, Trigger::VmTransition) > co(Trigger::Debug, Trigger::FloatingPoint),
        );
        assert!(
            co(Trigger::ConfigRegister, Trigger::Throttling)
                > co(Trigger::ConfigRegister, Trigger::Usb)
        );
    }

    #[test]
    fn complex_condition_rates_follow_vendor() {
        let all = profiles();
        let rate = |v: Vendor| {
            let of: Vec<_> = all.iter().filter(|(b, _)| b.vendor == v).collect();
            of.iter()
                .filter(|(_, p)| p.annotation.complex_conditions)
                .count() as f64
                / of.len() as f64
        };
        assert!(rate(Vendor::Amd) > rate(Vendor::Intel));
    }

    #[test]
    fn detectability_uses_effect_sets() {
        // Smoke-check the model glue: a full watch-set detects everything
        // whose triggers are covered.
        let all = profiles();
        let full_effects = EffectSet::full();
        for (_, p) in all.iter().take(50) {
            assert!(p
                .annotation
                .detectable_by(&p.annotation.triggers, &full_effects));
        }
    }
}
