//! Top-level corpus generation facade.

use rememberr_model::ErrataDocument;

use crate::assemble::{assemble, AssembledCorpus};
use crate::render::{render_document, RenderedDocument};
use crate::spec::CorpusSpec;
use crate::truth::GroundTruth;

/// A complete synthetic corpus: rendered page streams, the structured
/// documents they were rendered from, and ground truth.
///
/// # Examples
///
/// ```
/// use rememberr_docgen::{CorpusSpec, SyntheticCorpus};
///
/// let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.02));
/// assert_eq!(corpus.rendered.len(), 28);
/// assert_eq!(corpus.structured.len(), 28);
/// assert!(corpus.truth.grand_total() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The specification the corpus was generated from.
    pub spec: CorpusSpec,
    /// Rendered page streams, one per design, in [`rememberr_model::Design::ALL`] order.
    pub rendered: Vec<RenderedDocument>,
    /// The structured documents (what a perfect extraction would recover).
    pub structured: Vec<ErrataDocument>,
    /// Ground truth for evaluation.
    pub truth: GroundTruth,
}

impl SyntheticCorpus {
    /// Generates the corpus for a specification.
    ///
    /// Generation is deterministic: the same spec (including seed) yields a
    /// byte-identical corpus.
    ///
    /// # Panics
    ///
    /// Panics if the specification fails [`CorpusSpec::validate`]; use
    /// [`SyntheticCorpus::try_generate`] to handle invalid specs gracefully.
    pub fn generate(spec: &CorpusSpec) -> Self {
        Self::try_generate(spec).expect("invalid corpus specification")
    }

    /// Like [`SyntheticCorpus::generate`], but surfaces specification
    /// errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated spec invariant.
    pub fn try_generate(spec: &CorpusSpec) -> Result<Self, crate::spec::SpecError> {
        let _span = rememberr_obs::span!("docgen.generate");
        spec.validate()?;
        let AssembledCorpus { documents, truth } = {
            let _span = rememberr_obs::span!("docgen.assemble");
            assemble(spec)
        };
        // Rendering is pure per document (all randomness happened during
        // assembly), so documents fan out across workers; par_map returns
        // them in input order, keeping `rendered` aligned with `structured`.
        let rendered: Vec<_> = {
            let _span = rememberr_obs::span!("docgen.render");
            rememberr_par::par_map(&documents, |doc| render_document(doc, &truth.defects))
        };
        rememberr_obs::count("docgen.documents_rendered", rendered.len() as u64);
        rememberr_obs::count(
            "docgen.errata_planted",
            documents.iter().map(|d| d.len() as u64).sum(),
        );
        Ok(Self {
            spec: spec.clone(),
            rendered,
            structured: documents,
            truth,
        })
    }

    /// Generates the full paper-calibrated corpus (2,563 errata).
    pub fn paper() -> Self {
        Self::generate(&CorpusSpec::paper())
    }

    /// Total number of erratum entries across all documents.
    pub fn total_errata(&self) -> usize {
        self.structured.iter().map(|d| d.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rememberr_model::{Design, Vendor};

    #[test]
    fn try_generate_rejects_invalid_specs() {
        let mut spec = CorpusSpec::scaled(0.05);
        spec.intel_propagation = -0.5;
        assert!(SyntheticCorpus::try_generate(&spec).is_err());
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = CorpusSpec::scaled(0.03);
        let a = SyntheticCorpus::generate(&spec);
        let b = SyntheticCorpus::generate(&spec);
        assert_eq!(a.rendered, b.rendered);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn rendered_and_structured_align() {
        let corpus = SyntheticCorpus::generate(&CorpusSpec::scaled(0.03));
        for (rendered, structured) in corpus.rendered.iter().zip(&corpus.structured) {
            assert_eq!(rendered.design, structured.design);
        }
        assert_eq!(
            corpus
                .structured
                .iter()
                .map(|d| d.design)
                .collect::<Vec<_>>(),
            Design::ALL.to_vec()
        );
    }

    #[test]
    fn paper_scale_totals() {
        // Generating the full corpus is fast enough for a unit test.
        let corpus = SyntheticCorpus::paper();
        assert_eq!(corpus.total_errata(), 2_563);
        assert_eq!(corpus.truth.unique_count(Vendor::Intel), 743);
        assert_eq!(corpus.truth.unique_count(Vendor::Amd), 385);
    }
}
