//! The bug pool: which unique bugs exist and which designs each affects.
//!
//! This module realizes the heredity structure of Section IV-B2:
//! microarchitectural block reuse makes bugs propagate across Intel
//! generations (Desktop/Mobile documents share the vast majority of bugs;
//! generations 6-10 share a salient block of 104 bugs; 6 bugs span Core 1
//! to Core 10; one Core 2 erratum resurfaces 11 generations of documents
//! later), while AMD families — distinct microarchitectures by definition —
//! share far less.

use crate::rng::CorpusRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use rememberr_model::{Design, UniqueKey, Vendor};
use serde::{Deserialize, Serialize};

use crate::spec::CorpusSpec;

/// One unique bug and the documents that list it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugSeed {
    /// Ground-truth unique key.
    pub key: UniqueKey,
    /// Vendor whose designs the bug affects.
    pub vendor: Vendor,
    /// Affected designs, sorted by canonical design index; each design's
    /// document lists the bug exactly once (intra-document duplicates are
    /// injected later as defects).
    pub affected: Vec<Design>,
    /// The design on which the bug was *first discovered*. Usually the
    /// earliest affected design; for backward-latent bugs, a later one.
    pub discovery: Design,
}

impl BugSeed {
    /// Number of documents listing this bug.
    pub fn occurrence_count(&self) -> usize {
        self.affected.len()
    }

    /// True if the discovery design is not the earliest affected design
    /// (the bug will surface backward-latent confirmations).
    pub fn is_backward_discovery(&self) -> bool {
        self.affected.first().is_some_and(|d| *d != self.discovery)
    }
}

/// Intel document groups used by the heredity constraints.
const INTEL_GEN6_TO_10: [Design; 4] = [
    Design::Intel6,
    Design::Intel7_8,
    Design::Intel8_9,
    Design::Intel10,
];

const INTEL_CORE1_TO_CORE10: [Design; 14] = [
    Design::Intel1D,
    Design::Intel1M,
    Design::Intel2D,
    Design::Intel2M,
    Design::Intel3D,
    Design::Intel3M,
    Design::Intel4D,
    Design::Intel4M,
    Design::Intel5D,
    Design::Intel5M,
    Design::Intel6,
    Design::Intel7_8,
    Design::Intel8_9,
    Design::Intel10,
];

/// Desktop/Mobile sibling of a split-document Intel design, if any.
fn sibling(design: Design) -> Option<Design> {
    use Design::*;
    Some(match design {
        Intel1D => Intel1M,
        Intel1M => Intel1D,
        Intel2D => Intel2M,
        Intel2M => Intel2D,
        Intel3D => Intel3M,
        Intel3M => Intel3D,
        Intel4D => Intel4M,
        Intel4M => Intel4D,
        Intel5D => Intel5M,
        Intel5M => Intel5D,
        _ => return None,
    })
}

/// Next Intel document in generation order (Desktop track for split gens).
fn intel_successor(design: Design) -> Option<Design> {
    use Design::*;
    Some(match design {
        Intel1D | Intel1M => Intel2D,
        Intel2D | Intel2M => Intel3D,
        Intel3D | Intel3M => Intel4D,
        Intel4D | Intel4M => Intel5D,
        Intel5D | Intel5M => Intel6,
        Intel6 => Intel7_8,
        Intel7_8 => Intel8_9,
        Intel8_9 => Intel10,
        Intel10 => Intel11,
        Intel11 => Intel12,
        _ => return None,
    })
}

/// AMD microarchitectural lineages: propagation only follows these chains.
const AMD_CHAINS: [&[Design]; 5] = [
    &[Design::Amd10h, Design::Amd11h],
    &[Design::Amd12h],
    &[Design::Amd14h, Design::Amd16h],
    &[
        Design::Amd15h00,
        Design::Amd15h10,
        Design::Amd15h30,
        Design::Amd15h70,
    ],
    &[Design::Amd17h00, Design::Amd17h30, Design::Amd19h],
];

/// Successor within the AMD lineage chains.
fn amd_successor(design: Design) -> Option<Design> {
    for chain in AMD_CHAINS {
        if let Some(pos) = chain.iter().position(|d| *d == design) {
            return chain.get(pos + 1).copied();
        }
    }
    None
}

/// True if `affected` would violate an exclusivity constraint reserved for
/// the deterministic special bugs (exactly 104 bugs cover all of gens 6-10).
fn violates_reserved_coverage(affected: &[Design]) -> bool {
    INTEL_GEN6_TO_10.iter().all(|d| affected.contains(d))
}

/// Builds the complete bug pool for both vendors.
///
/// The pool is exact: unique-bug counts match the spec per vendor, and the
/// total occurrence count equals the vendor total minus the entries reserved
/// for intra-document duplicate injection (which reuse existing bugs).
pub fn build_pool(spec: &CorpusSpec, rng: &mut CorpusRng) -> Vec<BugSeed> {
    let mut pool = Vec::with_capacity(spec.intel_unique + spec.amd_unique);
    let mut next_key = 1u32;
    let mut key = || {
        let k = UniqueKey(next_key);
        next_key += 1;
        k
    };

    // ---- Intel: deterministic special bugs -------------------------------
    let core1_to_10 = spec.core1_to_core10.min(spec.gen6_to_10_shared);
    for _ in 0..core1_to_10 {
        pool.push(BugSeed {
            key: key(),
            vendor: Vendor::Intel,
            affected: INTEL_CORE1_TO_CORE10.to_vec(),
            discovery: Design::Intel1D,
        });
    }
    // The Core 2 erratum resurfacing in Core 12, 11 document-generations on.
    let longevity_bug = spec.intel_unique > core1_to_10 + spec.gen6_to_10_shared;
    if longevity_bug {
        pool.push(BugSeed {
            key: key(),
            vendor: Vendor::Intel,
            affected: vec![
                Design::Intel2D,
                Design::Intel2M,
                Design::Intel6,
                Design::Intel12,
            ],
            discovery: Design::Intel2D,
        });
    }
    // Bugs covering exactly generations 6-10 (the rest of the 104).
    let block_bugs = spec.gen6_to_10_shared.saturating_sub(core1_to_10);
    for _ in 0..block_bugs {
        pool.push(BugSeed {
            key: key(),
            vendor: Vendor::Intel,
            affected: INTEL_GEN6_TO_10.to_vec(),
            discovery: Design::Intel6,
        });
    }

    // ---- Intel: organic bugs ---------------------------------------------
    let special = pool.len();
    let organic = spec.intel_unique.saturating_sub(special);
    let intel_docs: Vec<Design> = Design::intel().collect();
    let weights: Vec<f64> = intel_docs
        .iter()
        .map(|d| spec.document_weight(*d))
        .collect();
    for _ in 0..organic {
        let intro = weighted_choice(&intel_docs, &weights, rng);
        let affected = grow_intel(spec, intro, rng);
        pool.push(BugSeed {
            key: key(),
            vendor: Vendor::Intel,
            affected,
            discovery: intro,
        });
    }

    // ---- AMD bugs ----------------------------------------------------------
    let amd_docs: Vec<Design> = Design::amd().collect();
    let amd_weights: Vec<f64> = amd_docs.iter().map(|d| spec.document_weight(*d)).collect();
    for _ in 0..spec.amd_unique {
        let intro = weighted_choice(&amd_docs, &amd_weights, rng);
        let mut affected = vec![intro];
        let mut cursor = intro;
        while let Some(next) = amd_successor(cursor) {
            if !rng.random_bool(spec.amd_propagation) {
                break;
            }
            affected.push(next);
            cursor = next;
        }
        affected.sort_by_key(|d| d.index());
        pool.push(BugSeed {
            key: key(),
            vendor: Vendor::Amd,
            affected,
            discovery: intro,
        });
    }

    // ---- Repair occurrence totals to exactness ----------------------------
    // Intra-document duplicate entries are reserved out of the Intel total.
    let intel_target = spec
        .intel_total
        .saturating_sub(spec.defects.intra_doc_duplicate_pairs)
        .max(spec.intel_unique);
    repair_totals(&mut pool, Vendor::Intel, intel_target, special, spec, rng);
    repair_totals(&mut pool, Vendor::Amd, spec.amd_total, 0, spec, rng);

    // ---- Backward-latent discoveries --------------------------------------
    assign_backward_discoveries(&mut pool, spec, rng);

    pool
}

/// Grows an Intel affected-set from an introduction document.
fn grow_intel(spec: &CorpusSpec, intro: Design, rng: &mut CorpusRng) -> Vec<Design> {
    let mut affected = vec![intro];
    if let Some(sib) = sibling(intro) {
        if rng.random_bool(spec.desktop_mobile_share) {
            affected.push(sib);
        }
    }
    let mut cursor = intro;
    while let Some(next) = intel_successor(cursor) {
        if !rng.random_bool(spec.intel_propagation) {
            break;
        }
        affected.push(next);
        if let Some(sib) = sibling(next) {
            if rng.random_bool(spec.desktop_mobile_share) {
                affected.push(sib);
            }
        }
        cursor = next;
        // Keep the 104-bug block exact: organic bugs must not cover all of
        // generations 6-10.
        if violates_reserved_coverage(&affected) {
            affected.pop();
            break;
        }
    }
    affected.sort_by_key(|d| d.index());
    affected.dedup();
    affected
}

fn weighted_choice(items: &[Design], weights: &[f64], rng: &mut CorpusRng) -> Design {
    let total: f64 = weights.iter().sum();
    let mut draw = rng.random_range(0.0..total);
    for (item, w) in items.iter().zip(weights) {
        if draw < *w {
            return *item;
        }
        draw -= w;
    }
    *items.last().expect("non-empty item list")
}

/// Adds or removes propagations on organic bugs until the vendor's
/// occurrence total is exact.
fn repair_totals(
    pool: &mut [BugSeed],
    vendor: Vendor,
    target: usize,
    protected_prefix: usize,
    _spec: &CorpusSpec,
    rng: &mut CorpusRng,
) {
    let indices: Vec<usize> = pool
        .iter()
        .enumerate()
        .filter(|(i, b)| b.vendor == vendor && (vendor == Vendor::Amd || *i >= protected_prefix))
        .map(|(i, _)| i)
        .collect();
    assert!(!indices.is_empty(), "no adjustable bugs for {vendor}");

    let current = |pool: &[BugSeed]| -> usize {
        pool.iter()
            .filter(|b| b.vendor == vendor)
            .map(|b| b.occurrence_count())
            .sum()
    };

    let mut total = current(pool);
    let mut stall = 0usize;
    while total != target {
        let &i = indices.choose(rng).expect("non-empty indices");
        let bug = &mut pool[i];
        if total < target {
            // Extend: add the successor of the last affected doc, or a
            // missing Desktop/Mobile sibling.
            let added = extend_bug(bug, vendor);
            if added {
                total += 1;
                stall = 0;
            } else {
                stall += 1;
            }
        } else {
            // Shrink: drop the last doc of a multi-doc bug.
            if bug.affected.len() > 1 {
                let dropped = bug.affected.pop().expect("len > 1");
                if bug.discovery == dropped {
                    bug.discovery = bug.affected[0];
                }
                total -= 1;
                stall = 0;
            } else {
                stall += 1;
            }
        }
        assert!(
            stall < 1_000_000,
            "repair loop stalled: total {total}, target {target}"
        );
    }
}

/// Tries to extend a bug by one more document; returns success.
fn extend_bug(bug: &mut BugSeed, vendor: Vendor) -> bool {
    // Prefer filling in a missing sibling.
    if vendor == Vendor::Intel {
        for d in bug.affected.clone() {
            if let Some(sib) = sibling(d) {
                if !bug.affected.contains(&sib) {
                    bug.affected.push(sib);
                    bug.affected.sort_by_key(|x| x.index());
                    if violates_reserved_coverage(&bug.affected) {
                        bug.affected.retain(|x| *x != sib);
                        continue;
                    }
                    return true;
                }
            }
        }
    }
    let last = *bug.affected.last().expect("non-empty affected");
    let next = match vendor {
        Vendor::Intel => intel_successor(last),
        Vendor::Amd => amd_successor(last),
    };
    if let Some(next) = next {
        if !bug.affected.contains(&next) {
            bug.affected.push(next);
            bug.affected.sort_by_key(|x| x.index());
            if vendor == Vendor::Intel && violates_reserved_coverage(&bug.affected) {
                bug.affected.retain(|x| *x != next);
                return false;
            }
            return true;
        }
    }
    false
}

/// Flips a fraction of multi-document bugs to backward discovery.
fn assign_backward_discoveries(pool: &mut [BugSeed], spec: &CorpusSpec, rng: &mut CorpusRng) {
    for bug in pool.iter_mut() {
        if bug.affected.len() >= 2 && rng.random_bool(spec.backward_latent_fraction) {
            // Discover on a strictly later affected design.
            let later = &bug.affected[1..];
            bug.discovery = *later.choose(rng).expect("len >= 2");
        } else {
            bug.discovery = bug.affected[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool(spec: &CorpusSpec) -> Vec<BugSeed> {
        let mut rng = CorpusRng::seed_from_u64(spec.seed);
        build_pool(spec, &mut rng)
    }

    #[test]
    fn paper_pool_has_exact_unique_counts() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        let intel = p.iter().filter(|b| b.vendor == Vendor::Intel).count();
        let amd = p.iter().filter(|b| b.vendor == Vendor::Amd).count();
        assert_eq!(intel, 743);
        assert_eq!(amd, 385);
    }

    #[test]
    fn paper_pool_has_exact_occurrence_totals() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        let count = |v: Vendor| -> usize {
            p.iter()
                .filter(|b| b.vendor == v)
                .map(|b| b.occurrence_count())
                .sum()
        };
        // 11 entries are reserved for intra-document duplicate injection.
        assert_eq!(count(Vendor::Intel), 2_057 - 11);
        assert_eq!(count(Vendor::Amd), 506);
    }

    #[test]
    fn exactly_104_bugs_cover_all_generations_6_to_10() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        let covered = p
            .iter()
            .filter(|b| INTEL_GEN6_TO_10.iter().all(|d| b.affected.contains(d)))
            .count();
        assert_eq!(covered, 104);
    }

    #[test]
    fn six_bugs_span_core1_to_core10() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        let spanning = p
            .iter()
            .filter(|b| {
                b.affected.contains(&Design::Intel1D) && b.affected.contains(&Design::Intel10)
            })
            .count();
        assert_eq!(spanning, 6);
    }

    #[test]
    fn core2_longevity_bug_exists() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        assert!(p.iter().any(|b| {
            b.affected.contains(&Design::Intel2D) && b.affected.contains(&Design::Intel12)
        }));
    }

    #[test]
    fn amd_respects_lineage_chains() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        for bug in p.iter().filter(|b| b.vendor == Vendor::Amd) {
            // Every affected design must lie in a single chain.
            let in_one_chain = AMD_CHAINS
                .iter()
                .any(|chain| bug.affected.iter().all(|d| chain.contains(d)));
            assert!(in_one_chain, "bug {:?} crosses chains", bug.affected);
        }
    }

    #[test]
    fn amd_shares_less_than_intel() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        let avg = |v: Vendor| {
            let bugs: Vec<_> = p.iter().filter(|b| b.vendor == v).collect();
            bugs.iter().map(|b| b.occurrence_count()).sum::<usize>() as f64 / bugs.len() as f64
        };
        assert!(avg(Vendor::Intel) > avg(Vendor::Amd));
    }

    #[test]
    fn discovery_is_affected_design() {
        let spec = CorpusSpec::paper();
        for bug in pool(&spec) {
            assert!(bug.affected.contains(&bug.discovery));
            // Affected list is sorted and unique.
            let mut sorted = bug.affected.clone();
            sorted.sort_by_key(|d| d.index());
            sorted.dedup();
            assert_eq!(sorted, bug.affected);
            // All designs belong to the bug's vendor.
            assert!(bug.affected.iter().all(|d| d.vendor() == bug.vendor));
        }
    }

    #[test]
    fn some_backward_discoveries_exist() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        let backward = p.iter().filter(|b| b.is_backward_discovery()).count();
        assert!(backward > 0);
        let multi = p.iter().filter(|b| b.affected.len() >= 2).count();
        let fraction = backward as f64 / multi as f64;
        assert!((0.08..0.25).contains(&fraction), "{fraction}");
    }

    #[test]
    fn keys_are_unique_and_dense() {
        let spec = CorpusSpec::paper();
        let p = pool(&spec);
        let mut keys: Vec<u32> = p.iter().map(|b| b.key.value()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), p.len());
        assert_eq!(*keys.first().unwrap(), 1);
        assert_eq!(*keys.last().unwrap(), p.len() as u32);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = CorpusSpec::paper();
        assert_eq!(pool(&spec), pool(&spec));
        let mut other = CorpusSpec::paper();
        other.seed = 999;
        assert_ne!(pool(&spec), pool(&other));
    }

    #[test]
    fn scaled_pool_remains_exact() {
        let spec = CorpusSpec::scaled(0.08);
        let p = pool(&spec);
        let intel: usize = p
            .iter()
            .filter(|b| b.vendor == Vendor::Intel)
            .map(|b| b.occurrence_count())
            .sum();
        let expected = spec.intel_total - spec.defects.intra_doc_duplicate_pairs;
        assert_eq!(intel, expected.max(spec.intel_unique));
    }
}
