//! Revision schedules and disclosure-date assignment.
//!
//! Figure 2 of the paper shows concave cumulative disclosure curves with
//! Intel updating documents far more often than AMD. Both properties come
//! out of this module: revision counts derive from the document references
//! (see [`CorpusSpec::revision_count`]), revision spacing stretches over the
//! document's maintenance window, and discovery delays are exponential, so
//! later periods yield fewer new errata.

use rand::Rng;
use rememberr_model::{Date, Design};

use crate::rng::CorpusRng;
use crate::spec::CorpusSpec;

/// Maintenance window after release during which a document is updated.
const MAINTENANCE_DAYS: i64 = 8 * 365;

/// The revision dates of one errata document. Revision `i + 1` (1-based)
/// was released at `dates[i]`; revision 1 is the design's release date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevisionSchedule {
    /// The design the document covers.
    pub design: Design,
    /// Revision dates in ascending order; `dates[0]` is the release date.
    pub dates: Vec<Date>,
}

impl RevisionSchedule {
    /// Builds the schedule for a design.
    ///
    /// Revision dates follow `release + span * (i / (n-1))^1.35`: early
    /// revisions come quickly (many bugs surface just after launch), later
    /// revisions spread out — the concavity of Figure 2.
    pub fn build(spec: &CorpusSpec, design: Design) -> Self {
        let release = design.release_date();
        let end_days = (spec.snapshot - release).clamp(0, MAINTENANCE_DAYS);
        let n = spec.revision_count(design).max(1) as usize;
        let mut dates = Vec::with_capacity(n);
        if n == 1 {
            dates.push(release);
        } else {
            for i in 0..n {
                let frac = (i as f64 / (n - 1) as f64).powf(1.35);
                dates.push(release.add_days((end_days as f64 * frac).round() as i64));
            }
        }
        Self { design, dates }
    }

    /// Number of revisions.
    pub fn len(&self) -> usize {
        self.dates.len()
    }

    /// True if the schedule has no revisions (never happens for built
    /// schedules; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.dates.is_empty()
    }

    /// Snaps a raw disclosure date to the first revision at or after it.
    ///
    /// Dates before the release snap to revision 1; dates after the last
    /// revision snap to the last revision (the document is no longer
    /// updated, so late confirmations land in the final revision).
    ///
    /// Returns the 1-based revision number and its date.
    pub fn snap(&self, raw: Date) -> (u32, Date) {
        for (i, &d) in self.dates.iter().enumerate() {
            if d >= raw {
                return ((i + 1) as u32, d);
            }
        }
        let last = self.dates.len();
        (
            (last) as u32,
            *self.dates.last().expect("non-empty schedule"),
        )
    }
}

/// Samples an exponential delay with the given mean, in days.
pub fn exponential_days(mean: f64, rng: &mut CorpusRng) -> i64 {
    let u: f64 = rng.random_range(0.0..1.0);
    (-mean * (1.0 - u).ln()).round() as i64
}

/// Raw (pre-snap) disclosure dates of a bug across its affected designs.
///
/// * On the discovery design the bug surfaces `Exp(discovery_mean_days)`
///   after that design's release.
/// * Designs released *after* the discovery date list the bug immediately
///   (their release revision) or shortly after — this is what makes most
///   shared bugs "known before the release of the subsequent generation"
///   (Observation O4).
/// * Designs released *before* the discovery (backward confirmation) list
///   it after an extra confirmation lag; confirmations of pre-2014
///   discoveries are pushed toward the 2014-2016 window, reproducing the
///   salient backward-latent bump around 2015 (Figure 5).
pub fn raw_disclosure_dates(
    spec: &CorpusSpec,
    affected: &[Design],
    discovery: Design,
    rng: &mut CorpusRng,
) -> Vec<(Design, Date)> {
    let disc_release = discovery.release_date();
    let delay = exponential_days(spec.discovery_mean_days, rng);
    let mut disc_date = disc_release.add_days(delay);
    if disc_date > spec.snapshot {
        disc_date = spec.snapshot;
    }

    affected
        .iter()
        .map(|&design| {
            let date = if design == discovery {
                disc_date
            } else if design.release_date() >= disc_date {
                // Forward propagation into a design released later: usually
                // already listed at that design's release.
                let lag = exponential_days(90.0, rng);
                let candidate = disc_date.add_days(lag);
                if candidate > design.release_date() {
                    candidate
                } else {
                    design.release_date()
                }
            } else if design.release_date() >= disc_release {
                // Sibling/contemporary design: small confirmation lag.
                disc_date.add_days(exponential_days(120.0, rng))
            } else {
                // Backward confirmation on an older design.
                let mut candidate = disc_date.add_days(exponential_days(300.0, rng));
                let bump_start = Date::new(2014, 6, 1).expect("valid date");
                if disc_date < bump_start {
                    let bumped = bump_start.add_days(exponential_days(365.0, rng));
                    if bumped > candidate {
                        candidate = bumped;
                    }
                }
                candidate
            };
            let date = if date > spec.snapshot {
                spec.snapshot
            } else {
                date
            };
            (design, date)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_starts_at_release_and_is_sorted() {
        let spec = CorpusSpec::paper();
        for design in Design::ALL {
            let s = RevisionSchedule::build(&spec, design);
            assert!(!s.is_empty());
            assert_eq!(s.dates[0], design.release_date());
            for pair in s.dates.windows(2) {
                assert!(pair[0] <= pair[1], "{design}: unsorted schedule");
            }
            assert!(*s.dates.last().unwrap() <= spec.snapshot);
            assert_eq!(s.len() as u32, spec.revision_count(design));
        }
    }

    #[test]
    fn revision_spacing_stretches_over_time() {
        let spec = CorpusSpec::paper();
        let s = RevisionSchedule::build(&spec, Design::Intel1D);
        let n = s.dates.len();
        assert!(n >= 10);
        let first_gap = s.dates[1] - s.dates[0];
        let last_gap = s.dates[n - 1] - s.dates[n - 2];
        assert!(
            last_gap > first_gap,
            "gaps should grow: first {first_gap}, last {last_gap}"
        );
    }

    #[test]
    fn snap_behaviour() {
        let spec = CorpusSpec::paper();
        let s = RevisionSchedule::build(&spec, Design::Intel6);
        // Before release: revision 1.
        let (rev, date) = s.snap(Date::new(2014, 1, 1).unwrap());
        assert_eq!(rev, 1);
        assert_eq!(date, s.dates[0]);
        // After the last revision: last revision.
        let (rev, date) = s.snap(Date::new(2030, 1, 1).unwrap());
        assert_eq!(rev as usize, s.dates.len());
        assert_eq!(date, *s.dates.last().unwrap());
        // In between: the snapped date is >= the raw date.
        let raw = Date::new(2017, 3, 3).unwrap();
        let (_, date) = s.snap(raw);
        assert!(date >= raw);
    }

    #[test]
    fn exponential_days_has_requested_mean() {
        let mut rng = CorpusRng::seed_from_u64(1);
        let n = 20_000;
        let sum: i64 = (0..n).map(|_| exponential_days(480.0, &mut rng)).sum();
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 480.0).abs() < 20.0, "{mean}");
    }

    #[test]
    fn forward_bugs_are_listed_at_or_after_later_design_release() {
        let spec = CorpusSpec::paper();
        let mut rng = CorpusRng::seed_from_u64(3);
        for _ in 0..200 {
            let affected = [Design::Intel6, Design::Intel7_8, Design::Intel8_9];
            let dates = raw_disclosure_dates(&spec, &affected, Design::Intel6, &mut rng);
            for (design, date) in &dates {
                assert!(*date <= spec.snapshot);
                if *design == Design::Intel6 {
                    assert!(*date >= design.release_date());
                }
            }
        }
    }

    #[test]
    fn backward_confirmations_come_after_discovery() {
        let spec = CorpusSpec::paper();
        let mut rng = CorpusRng::seed_from_u64(4);
        let mut saw_backward = 0;
        for _ in 0..300 {
            let affected = [Design::Intel2D, Design::Intel6];
            let dates = raw_disclosure_dates(&spec, &affected, Design::Intel6, &mut rng);
            let d_old = dates.iter().find(|(d, _)| *d == Design::Intel2D).unwrap().1;
            let d_new = dates.iter().find(|(d, _)| *d == Design::Intel6).unwrap().1;
            if d_old > d_new {
                saw_backward += 1;
            }
        }
        // The confirmation lag is positive, so almost every trial should be
        // backward (ties can occur at the snapshot clamp).
        assert!(saw_backward > 250, "{saw_backward}");
    }

    #[test]
    fn most_forward_shared_bugs_known_before_next_release() {
        // Observation O4: discovery on the earlier design usually predates
        // the later design's release, so the later document lists the bug at
        // its release revision.
        let spec = CorpusSpec::paper();
        let mut rng = CorpusRng::seed_from_u64(5);
        let mut at_release = 0;
        let trials = 300;
        for _ in 0..trials {
            let affected = [Design::Intel6, Design::Intel7_8];
            let dates = raw_disclosure_dates(&spec, &affected, Design::Intel6, &mut rng);
            let later = dates
                .iter()
                .find(|(d, _)| *d == Design::Intel7_8)
                .unwrap()
                .1;
            if later == Design::Intel7_8.release_date() {
                at_release += 1;
            }
        }
        assert!(at_release > trials / 2, "{at_release}/{trials}");
    }
}
